//! The HTTP client and the Snowflake proxy (paper §5.3.5).
//!
//! "We realize our client as an HTTP proxy that enhances a browser with
//! Snowflake authorization and server document-authentication services.
//! Like any proxy, it forwards each HTTP request from the browser to a
//! server.  When a reply is '401 Unauthorized' and requires Snowflake
//! authorization, the proxy uses its Prover to find a suitable proof,
//! rewrites the request with an Authorization header, and retries."

use snowflake_core::sync::LockExt;
use crate::auth;
use crate::mac::{ClientMacSession, MAC_SESSION_PATH};
use crate::message::{HttpRequest, HttpResponse};
use std::sync::Mutex;
use snowflake_core::{HashAlg, Principal, Proof, Tag, Time, Validity, VerifyCtx};
use snowflake_prover::Prover;
use snowflake_sexpr::Sexp;
use std::collections::HashMap;
use std::io::{self, BufReader, Read, Write};
use std::sync::Arc;

/// A byte stream an HTTP client can speak over.
pub trait ClientStream: Read + Write + Send {}
impl<T: Read + Write + Send> ClientStream for T {}

/// A simple HTTP client over one connection.
pub struct HttpClient {
    stream: Box<dyn ClientStream>,
}

impl HttpClient {
    /// Wraps a connected stream.
    pub fn new(stream: Box<dyn ClientStream>) -> HttpClient {
        HttpClient { stream }
    }

    /// Sends a request and reads the response.
    pub fn send(&mut self, req: &HttpRequest) -> io::Result<HttpResponse> {
        req.write_to(&mut self.stream)?;
        let mut reader = BufReader::new(&mut self.stream);
        HttpResponse::read_from(&mut reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"))
    }
}

/// Errors from the Snowflake proxy.
#[derive(Debug)]
pub enum ProxyError {
    /// Transport failure.
    Io(io::Error),
    /// The Prover could not produce the demanded proof.
    NoProof {
        /// The demanded issuer.
        issuer: Principal,
        /// The demanded minimum restriction set.
        tag: Tag,
    },
    /// The server rejected the proof we sent.
    Rejected(String),
    /// Protocol-level surprise.
    Protocol(String),
}

impl std::fmt::Display for ProxyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProxyError::Io(e) => write!(f, "proxy i/o error: {e}"),
            ProxyError::NoProof { issuer, tag } => {
                write!(
                    f,
                    "no proof of authority over {} re {:?}",
                    issuer.describe(),
                    tag
                )
            }
            ProxyError::Rejected(m) => write!(f, "server rejected authorization: {m}"),
            ProxyError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ProxyError {}

impl From<io::Error> for ProxyError {
    fn from(e: io::Error) -> Self {
        ProxyError::Io(e)
    }
}

/// The client-side Snowflake engine: answers challenges with proofs,
/// maintains MAC sessions, and verifies document authentication.
pub struct SnowflakeProxy {
    prover: Arc<Prover>,
    hash_alg: HashAlg,
    /// MAC sessions keyed by the issuer they were established with.
    mac_sessions: Mutex<HashMap<Principal, ClientMacSession>>,
    /// The identity principal the user acts as (substituted for the `?`
    /// pseudo-principal in gateway challenges).
    identity: Mutex<Option<Principal>>,
    clock: fn() -> Time,
    rng: Mutex<Box<dyn FnMut(&mut [u8]) + Send>>,
}

impl SnowflakeProxy {
    /// Creates a proxy backed by `prover`, with wall-clock time and OS
    /// entropy.
    pub fn new(prover: Arc<Prover>) -> SnowflakeProxy {
        Self::with_clock(prover, Time::now, Box::new(snowflake_crypto::rand_bytes))
    }

    /// Creates a proxy with injected clock and entropy.
    pub fn with_clock(
        prover: Arc<Prover>,
        clock: fn() -> Time,
        rng: Box<dyn FnMut(&mut [u8]) + Send>,
    ) -> SnowflakeProxy {
        SnowflakeProxy {
            prover,
            hash_alg: HashAlg::Sha256,
            mac_sessions: Mutex::new(HashMap::new()),
            identity: Mutex::new(None),
            clock,
            rng: Mutex::new(rng),
        }
    }

    /// Sets the identity principal substituted for `?` in gateway
    /// challenges.
    pub fn set_identity(&self, identity: Principal) {
        *self.identity.plock() = Some(identity);
    }

    /// The Prover backing this proxy.
    pub fn prover(&self) -> &Arc<Prover> {
        &self.prover
    }

    /// Executes a request, handling the Snowflake challenge protocol.
    ///
    /// MAC sessions are used when one exists for the target issuer;
    /// otherwise the request is retried with a signed proof on a 401.
    pub fn execute(
        &self,
        client: &mut HttpClient,
        mut req: HttpRequest,
    ) -> Result<HttpResponse, ProxyError> {
        // Keep connections alive across the challenge round trip.
        req.set_header("Connection", "keep-alive");

        let first = client.send(&req)?;
        let Some((issuer, min_tag)) = auth::parse_challenge(&first) else {
            return Ok(first);
        };

        // Gateway challenge (§6.3): the gateway names itself as the quoter
        // and the client substitutes its identity for the `?`
        // pseudo-principal, delegating to "gateway quoting client".
        if let Some(quoter) = auth::parse_quoter(&first) {
            return self.answer_gateway_challenge(client, req, &issuer, &min_tag, quoter);
        }

        // A live MAC session for this issuer authorizes cheaply (§5.3.1).
        if let Some(session) = self.mac_sessions.plock().get(&issuer).cloned() {
            if session.validity.contains((self.clock)()) {
                let hash = auth::request_hash(&req, self.hash_alg);
                req.set_header(auth::MAC_ID_HEADER, &session.id_header());
                req.set_header(auth::MAC_HEADER, &session.authenticate(&hash));
                let resp = client.send(&req)?;
                if resp.status != 401 && resp.status != 403 {
                    return Ok(resp);
                }
                req.remove_header(auth::MAC_ID_HEADER);
                req.remove_header(auth::MAC_HEADER);
            }
        }

        // Sign the retry: the proof's subject is the hash of the retried
        // request, less the Authorization header.
        let retry = self.sign_request(req, &issuer, &min_tag)?;
        let resp = client.send(&retry)?;
        if resp.status == 401 || resp.status == 403 {
            return Err(ProxyError::Rejected(
                String::from_utf8_lossy(&resp.body).into_owned(),
            ));
        }
        Ok(resp)
    }

    /// Answers a gateway's `G|? ⇒ S` challenge: delegates authority over
    /// `issuer` to "gateway quoting me", and signs the retried request so
    /// the gateway can check `R ⇒ C`.
    fn answer_gateway_challenge(
        &self,
        client: &mut HttpClient,
        mut req: HttpRequest,
        issuer: &Principal,
        min_tag: &Tag,
        quoter: Principal,
    ) -> Result<HttpResponse, ProxyError> {
        let identity =
            self.identity.plock().clone().ok_or_else(|| {
                ProxyError::Protocol("gateway challenge but no identity set".into())
            })?;
        let now = (self.clock)();

        // The delegation G|C ⇒ S the gateway needs.
        let g_quoting_c = Principal::quoting(quoter, identity.clone());
        let delegation = self
            .prover
            .complete_proof(
                &g_quoting_c,
                issuer,
                min_tag,
                Validity::until(now.plus(3600)),
                now,
            )
            .ok_or_else(|| ProxyError::NoProof {
                issuer: issuer.clone(),
                tag: min_tag.clone(),
            })?;
        auth::attach_proof(&mut req, &delegation);

        // The signed copy of the original request, showing R ⇒ C.
        req.remove_header(auth::CLIENT_PROOF_HEADER);
        let r_principal = auth::request_principal(&req, self.hash_alg);
        let client_proof = self
            .prover
            .delegate(
                &r_principal,
                &identity,
                Tag::Star,
                Validity::until(now.plus(300)),
                false,
            )
            .ok_or_else(|| {
                ProxyError::Protocol("identity principal is not controlled by prover".into())
            })?;
        auth::attach_client_proof(&mut req, &client_proof);

        let resp = client.send(&req)?;
        if resp.status == 401 || resp.status == 403 {
            return Err(ProxyError::Rejected(
                String::from_utf8_lossy(&resp.body).into_owned(),
            ));
        }
        Ok(resp)
    }

    /// Attaches a proof to `req` for `issuer`/`tag` (exposed for benches).
    pub fn sign_request(
        &self,
        mut req: HttpRequest,
        issuer: &Principal,
        min_tag: &Tag,
    ) -> Result<HttpRequest, ProxyError> {
        req.remove_header("Authorization");
        let subject = auth::request_principal(&req, self.hash_alg);
        let now = (self.clock)();
        let proof = self
            .prover
            .complete_proof(
                &subject,
                issuer,
                min_tag,
                Validity::until(now.plus(300)),
                now,
            )
            .ok_or_else(|| ProxyError::NoProof {
                issuer: issuer.clone(),
                tag: min_tag.clone(),
            })?;
        auth::attach_proof(&mut req, &proof);
        Ok(req)
    }

    /// Establishes a MAC session with the service behind `client`.
    ///
    /// Sends a Snowflake-authorized POST to the well-known MAC path; on
    /// success later [`SnowflakeProxy::execute`] calls authenticate with the
    /// cheap HMAC instead of a public-key signature.
    pub fn establish_mac_session(
        &self,
        client: &mut HttpClient,
        issuer: &Principal,
        tag: &Tag,
    ) -> Result<(), ProxyError> {
        let (body, dh) = {
            let mut rng = self.rng.plock();
            ClientMacSession::request_body(&mut **rng)
        };
        let mut req = HttpRequest::post(MAC_SESSION_PATH, body);
        req.set_header("Connection", "keep-alive");
        let signed = self.sign_request(req, issuer, tag)?;
        let resp = client.send(&signed)?;
        if resp.status != 200 {
            return Err(ProxyError::Rejected(format!(
                "MAC establishment failed: {} {}",
                resp.status, resp.reason
            )));
        }
        let now = (self.clock)();
        let session = ClientMacSession::from_grant(&resp.body, &dh, Validity::until(now.plus(300)))
            .map_err(ProxyError::Protocol)?;
        self.mac_sessions.plock().insert(issuer.clone(), session);
        Ok(())
    }

    /// Does the proxy hold a MAC session for `issuer`?
    pub fn has_mac_session(&self, issuer: &Principal) -> bool {
        self.mac_sessions.plock().contains_key(issuer)
    }

    /// Attaches MAC headers to a request using the session for `issuer`,
    /// without any challenge round trip (benchmarks measure this as the
    /// steady-state MAC-protocol cost).
    pub fn mac_sign(&self, mut req: HttpRequest, issuer: &Principal) -> Option<HttpRequest> {
        let session = self.mac_sessions.plock().get(issuer).cloned()?;
        let hash = auth::request_hash(&req, self.hash_alg);
        req.set_header(auth::MAC_ID_HEADER, &session.id_header());
        req.set_header(auth::MAC_HEADER, &session.authenticate(&hash));
        Some(req)
    }

    /// Verifies a response's document-authentication proof (§5.3.3).
    pub fn verify_document(
        &self,
        resp: &HttpResponse,
        expected_issuer: &Principal,
    ) -> Result<(), String> {
        let ctx = VerifyCtx::at((self.clock)());
        crate::server::verify_document(resp, expected_issuer, &ctx)
    }

    /// Generates the shareable delegation link of §5.3.5: "a link inside
    /// the snippet names the destination page and carries both the
    /// delegation from the user as well as the proof the user needed to
    /// access the page."
    pub fn make_delegation_link(
        &self,
        url: &str,
        recipient: &Principal,
        issuer: &Principal,
        tag: &Tag,
        validity: Validity,
    ) -> Result<Sexp, ProxyError> {
        let now = (self.clock)();
        // The recipient is a user who must be able to extend the authority
        // to their own request hashes, so the hop carries the propagate bit.
        let proof = self
            .prover
            .complete_proof_delegable(recipient, issuer, tag, validity, now, true)
            .ok_or_else(|| ProxyError::NoProof {
                issuer: issuer.clone(),
                tag: tag.clone(),
            })?;
        Ok(Sexp::tagged(
            "sf-link",
            vec![
                Sexp::tagged("url", vec![Sexp::from(url)]),
                Sexp::tagged("proof", vec![proof.to_sexp()]),
            ],
        ))
    }

    /// Imports a delegation link: digests the carried proofs into the
    /// Prover and returns the destination URL.
    pub fn import_delegation_link(&self, link: &Sexp) -> Result<String, ProxyError> {
        if link.tag_name() != Some("sf-link") {
            return Err(ProxyError::Protocol("expected (sf-link …)".into()));
        }
        let url = link
            .find_value("url")
            .and_then(Sexp::as_str)
            .ok_or_else(|| ProxyError::Protocol("sf-link missing url".into()))?
            .to_string();
        let proof_sexp = link
            .find_value("proof")
            .ok_or_else(|| ProxyError::Protocol("sf-link missing proof".into()))?;
        let proof = Proof::from_sexp(proof_sexp)
            .map_err(|e| ProxyError::Protocol(format!("sf-link bad proof: {e}")))?;
        self.prover.add_proof(proof);
        Ok(url)
    }
}
