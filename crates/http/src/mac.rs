//! The signed-request MAC optimization (paper §5.3.1).
//!
//! "The signed request protocol … is rather slow, since it incurs a
//! public-key signature for every request.  We implemented a more efficient
//! protocol that amortizes the public-key operation by having the server
//! send an encrypted, secret message authentication code (MAC) to the
//! client.  The client then authorizes messages by sending a hash of
//! ⟨message, MAC⟩.  The protocol is represented in the end-to-end
//! authorization chain by representing the MAC as a principal."
//!
//! Establishment: the client POSTs a Diffie–Hellman share to
//! [`MAC_SESSION_PATH`] under ordinary Snowflake (signed-request)
//! authorization.  The server mints a 32-byte secret, wraps it under the
//! DH-derived key, and records the session grant
//! `Mac(H(secret)) =T⇒ issuer` — where `T` and the validity come from the
//! *verified establishment proof*, so the MAC principal holds exactly the
//! authority the client demonstrated, no more.

use snowflake_core::sync::LockExt;
use std::sync::Mutex;
use snowflake_bigint::Ubig;
use snowflake_core::{Delegation, HashVal, Principal, Proof, Tag, Time, Validity};
use snowflake_crypto::chacha20::ChaCha20;
use snowflake_crypto::hmac::{ct_eq, derive_key, hmac_sha256};
use snowflake_crypto::{DhSecret, Group};
use snowflake_sexpr::{b64_decode, b64_encode, Sexp};
use std::collections::HashMap;

/// The well-known path MAC sessions are established at.
pub const MAC_SESSION_PATH: &str = "/.sf/mac-session";

/// One live MAC session on the server.
pub struct MacSession {
    secret: [u8; 32],
    /// The authority this MAC principal carries (from the establishment
    /// proof's verified conclusion).
    pub grant: Delegation,
    /// The establishment proof, retained for end-to-end audit trails.
    pub establishment: Proof,
}

/// Server-side store of MAC sessions, keyed by MAC id (`H(secret)`).
#[derive(Default)]
pub struct MacSessionStore {
    sessions: Mutex<HashMap<HashVal, MacSession>>,
}

impl MacSessionStore {
    /// Creates an empty store.
    pub fn new() -> MacSessionStore {
        MacSessionStore::default()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.plock().len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.sessions.plock().is_empty()
    }

    /// Handles an establishment request body, returning the grant body.
    ///
    /// `proof` must already be verified by the caller;
    /// `proven` is its conclusion (the authority the MAC inherits).
    pub fn establish(
        &self,
        body: &[u8],
        proven: Delegation,
        establishment: Proof,
        rand_bytes: &mut dyn FnMut(&mut [u8]),
    ) -> Result<Vec<u8>, String> {
        let req = Sexp::parse(body).map_err(|e| format!("bad mac-request: {e}"))?;
        if req.tag_name() != Some("mac-request") {
            return Err("expected (mac-request …)".into());
        }
        let client_share = req
            .find_value("dh")
            .and_then(Sexp::as_atom)
            .ok_or("mac-request missing dh share")?;

        let group = Group::test512();
        let dh = DhSecret::generate(group, rand_bytes);
        let shared = dh
            .agree(&Ubig::from_bytes_be(client_share))
            .ok_or("invalid client DH share")?;

        let mut secret = [0u8; 32];
        rand_bytes(&mut secret);
        let mac_id = HashVal::of(&secret);

        // Wrap the secret under the DH-derived key.
        let wrap_key = derive_key(&shared, b"sf-mac-wrap");
        let mut enc = secret.to_vec();
        ChaCha20::new(&wrap_key, &[0u8; 12]).apply(&mut enc);

        // Record the session: the MAC principal carries the authority the
        // establishment proof demonstrated.
        let grant = Delegation {
            subject: Principal::Mac(mac_id.clone()),
            issuer: proven.issuer.clone(),
            tag: proven.tag.clone(),
            validity: proven.validity,
            delegable: false,
        };
        self.sessions.plock().insert(
            mac_id.clone(),
            MacSession {
                secret,
                grant,
                establishment,
            },
        );

        let reply = Sexp::tagged(
            "mac-grant",
            vec![
                Sexp::tagged("dh", vec![Sexp::atom(dh.public.to_bytes_be())]),
                Sexp::tagged("enc", vec![Sexp::atom(enc)]),
                Sexp::tagged("mac-id", vec![mac_id.to_sexp()]),
            ],
        );
        Ok(reply.canonical())
    }

    /// Verifies the MAC headers of a request.
    ///
    /// Returns the speaker principal (`Mac(id)`) and the session grant when
    /// `request_hash` is correctly authenticated, the grant covers
    /// `request_tag`, and the session is still valid at `now`.
    pub fn verify(
        &self,
        mac_id: &HashVal,
        presented_mac: &[u8],
        request_hash: &HashVal,
        request_tag: &Tag,
        now: Time,
    ) -> Result<(Principal, Delegation), String> {
        let sessions = self.sessions.plock();
        let session = sessions.get(mac_id).ok_or("unknown MAC session")?;
        let expect = hmac_sha256(&session.secret, &request_hash.bytes);
        if !ct_eq(&expect, presented_mac) {
            return Err("MAC verification failed".into());
        }
        if !session.grant.tag.permits(request_tag) {
            return Err("MAC session does not cover this request".into());
        }
        if !session.grant.validity.contains(now) {
            return Err("MAC session expired".into());
        }
        Ok((Principal::Mac(mac_id.clone()), session.grant.clone()))
    }

    /// The audit trail for a session: the establishment proof.
    pub fn audit(&self, mac_id: &HashVal) -> Option<String> {
        self.sessions
            .plock()
            .get(mac_id)
            .map(|s| s.establishment.audit_trail())
    }
}

/// Client-side state of one MAC session.
#[derive(Clone)]
pub struct ClientMacSession {
    /// The session id (`H(secret)`).
    pub mac_id: HashVal,
    secret: [u8; 32],
    /// The window the session covers.
    pub validity: Validity,
}

impl ClientMacSession {
    /// Builds the establishment request body and the DH secret to keep.
    pub fn request_body(rand_bytes: &mut dyn FnMut(&mut [u8])) -> (Vec<u8>, DhSecret) {
        let dh = DhSecret::generate(Group::test512(), rand_bytes);
        let body = Sexp::tagged(
            "mac-request",
            vec![Sexp::tagged(
                "dh",
                vec![Sexp::atom(dh.public.to_bytes_be())],
            )],
        )
        .canonical();
        (body, dh)
    }

    /// Completes establishment from the server's grant body.
    pub fn from_grant(
        grant_body: &[u8],
        dh: &DhSecret,
        validity: Validity,
    ) -> Result<ClientMacSession, String> {
        let grant = Sexp::parse(grant_body).map_err(|e| format!("bad mac-grant: {e}"))?;
        if grant.tag_name() != Some("mac-grant") {
            return Err("expected (mac-grant …)".into());
        }
        let server_share = grant
            .find_value("dh")
            .and_then(Sexp::as_atom)
            .ok_or("mac-grant missing dh")?;
        let enc = grant
            .find_value("enc")
            .and_then(Sexp::as_atom)
            .ok_or("mac-grant missing enc")?;
        let mac_id = HashVal::from_sexp(
            grant
                .find_value("mac-id")
                .ok_or("mac-grant missing mac-id")?,
        )
        .map_err(|e| format!("bad mac-id: {e}"))?;

        let shared = dh
            .agree(&Ubig::from_bytes_be(server_share))
            .ok_or("invalid server DH share")?;
        let wrap_key = derive_key(&shared, b"sf-mac-wrap");
        let mut secret_bytes = enc.to_vec();
        ChaCha20::new(&wrap_key, &[0u8; 12]).apply(&mut secret_bytes);
        let secret: [u8; 32] = secret_bytes
            .try_into()
            .map_err(|_| "wrapped secret has wrong length")?;
        // Integrity check: the id must be the hash of the secret.
        if HashVal::of(&secret) != mac_id {
            return Err("mac-id does not match unwrapped secret".into());
        }
        Ok(ClientMacSession {
            mac_id,
            secret,
            validity,
        })
    }

    /// Computes the `Sf-Mac` header value for a request hash.
    pub fn authenticate(&self, request_hash: &HashVal) -> String {
        b64_encode(&hmac_sha256(&self.secret, &request_hash.bytes))
    }

    /// The `Sf-Mac-Id` header value.
    pub fn id_header(&self) -> String {
        self.mac_id.to_sexp().transport()
    }
}

/// Decodes an `Sf-Mac` header back to MAC bytes.
pub fn decode_mac_header(value: &str) -> Option<Vec<u8>> {
    b64_decode(value.as_bytes())
}

/// Decodes an `Sf-Mac-Id` header back to a hash.
pub fn decode_mac_id_header(value: &str) -> Option<HashVal> {
    let sexp = Sexp::parse(value.as_bytes()).ok()?;
    HashVal::from_sexp(&sexp).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowflake_crypto::DetRng;

    fn det(seed: &str) -> impl FnMut(&mut [u8]) {
        let mut r = DetRng::new(seed.as_bytes());
        move |b: &mut [u8]| r.fill(b)
    }

    fn proven() -> (Delegation, Proof) {
        let d = Delegation {
            subject: Principal::message(b"establishment request"),
            issuer: Principal::message(b"service issuer"),
            tag: Tag::named("web", vec![Tag::named("method", vec![Tag::atom("GET")])]),
            validity: Validity::until(Time(1_000)),
            delegable: false,
        };
        (
            d.clone(),
            Proof::Assumption {
                stmt: d,
                authority: "test".into(),
            },
        )
    }

    #[test]
    fn establish_and_verify() {
        let store = MacSessionStore::new();
        let mut crng = det("client");
        let mut srng = det("server");
        let (body, dh) = ClientMacSession::request_body(&mut crng);
        let (grant, proof) = proven();
        let reply = store.establish(&body, grant, proof, &mut srng).unwrap();
        let session =
            ClientMacSession::from_grant(&reply, &dh, Validity::until(Time(1_000))).unwrap();
        assert_eq!(store.len(), 1);

        let req_hash = HashVal::of(b"GET /inbox");
        let mac = session.authenticate(&req_hash);
        let mac_bytes = decode_mac_header(&mac).unwrap();
        let (speaker, grant) = store
            .verify(
                &session.mac_id,
                &mac_bytes,
                &req_hash,
                &Tag::named("web", vec![Tag::named("method", vec![Tag::atom("GET")])]),
                Time(500),
            )
            .unwrap();
        assert_eq!(speaker, Principal::Mac(session.mac_id.clone()));
        assert_eq!(grant.subject, speaker);
        // The audit trail is available.
        assert!(store.audit(&session.mac_id).is_some());
    }

    #[test]
    fn wrong_mac_rejected() {
        let store = MacSessionStore::new();
        let mut crng = det("c2");
        let mut srng = det("s2");
        let (body, dh) = ClientMacSession::request_body(&mut crng);
        let (grant, proof) = proven();
        let reply = store.establish(&body, grant, proof, &mut srng).unwrap();
        let session = ClientMacSession::from_grant(&reply, &dh, Validity::always()).unwrap();

        let h1 = HashVal::of(b"request one");
        let h2 = HashVal::of(b"request two");
        let mac_for_h1 = decode_mac_header(&session.authenticate(&h1)).unwrap();
        // MAC for h1 presented with h2: rejected.
        assert!(store
            .verify(&session.mac_id, &mac_for_h1, &h2, &Tag::Star, Time(0))
            .is_err());
        // Unknown session id.
        assert!(store
            .verify(
                &HashVal::of(b"ghost"),
                &mac_for_h1,
                &h1,
                &Tag::Star,
                Time(0)
            )
            .is_err());
    }

    #[test]
    fn mac_session_respects_tag_and_expiry() {
        let store = MacSessionStore::new();
        let mut crng = det("c3");
        let mut srng = det("s3");
        let (body, dh) = ClientMacSession::request_body(&mut crng);
        let (grant, proof) = proven(); // grants only (web (method GET)), until t=1000
        let reply = store.establish(&body, grant, proof, &mut srng).unwrap();
        let session =
            ClientMacSession::from_grant(&reply, &dh, Validity::until(Time(1_000))).unwrap();

        let h = HashVal::of(b"r");
        let mac = decode_mac_header(&session.authenticate(&h)).unwrap();
        // Outside the granted tag.
        let post = Tag::named("web", vec![Tag::named("method", vec![Tag::atom("POST")])]);
        assert!(store
            .verify(&session.mac_id, &mac, &h, &post, Time(500))
            .is_err());
        // Expired.
        let get = Tag::named("web", vec![Tag::named("method", vec![Tag::atom("GET")])]);
        assert!(store
            .verify(&session.mac_id, &mac, &h, &get, Time(2_000))
            .is_err());
        // In-window, in-tag.
        assert!(store
            .verify(&session.mac_id, &mac, &h, &get, Time(500))
            .is_ok());
    }

    #[test]
    fn tampered_grant_rejected_by_client() {
        let store = MacSessionStore::new();
        let mut crng = det("c4");
        let mut srng = det("s4");
        let (body, dh) = ClientMacSession::request_body(&mut crng);
        let (grant, proof) = proven();
        let reply = store.establish(&body, grant, proof, &mut srng).unwrap();
        // Flip a byte of the wrapped secret.
        let mut tampered = reply.clone();
        let pos = tampered.len() / 2;
        tampered[pos] ^= 0x40;
        let result = ClientMacSession::from_grant(&tampered, &dh, Validity::always());
        assert!(
            result.is_err(),
            "tampering must be detected via the mac-id hash"
        );
    }
}
