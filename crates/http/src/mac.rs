//! The signed-request MAC optimization (paper §5.3.1).
//!
//! "The signed request protocol … is rather slow, since it incurs a
//! public-key signature for every request.  We implemented a more efficient
//! protocol that amortizes the public-key operation by having the server
//! send an encrypted, secret message authentication code (MAC) to the
//! client.  The client then authorizes messages by sending a hash of
//! ⟨message, MAC⟩.  The protocol is represented in the end-to-end
//! authorization chain by representing the MAC as a principal."
//!
//! Establishment: the client POSTs a Diffie–Hellman share to
//! [`MAC_SESSION_PATH`] under ordinary Snowflake (signed-request)
//! authorization.  The server mints a 32-byte secret, wraps it under the
//! DH-derived key, and records the session grant
//! `Mac(H(secret)) =T⇒ issuer` — where `T` and the validity come from the
//! *verified establishment proof*, so the MAC principal holds exactly the
//! authority the client demonstrated, no more.

use snowflake_core::sync::LockExt;
use std::sync::Mutex;
use snowflake_bigint::Ubig;
use snowflake_core::{Delegation, HashVal, Principal, Proof, Tag, Time, Validity};
use snowflake_crypto::chacha20::ChaCha20;
use snowflake_crypto::hmac::{ct_eq, derive_key, hmac_sha256};
use snowflake_crypto::{DhSecret, Group};
use snowflake_sexpr::{b64_decode, b64_encode, Sexp};
use std::collections::HashMap;
use std::sync::Arc;

/// The well-known path MAC sessions are established at.
pub const MAC_SESSION_PATH: &str = "/.sf/mac-session";

/// Default shard count: enough that concurrent verifies on disjoint
/// sessions almost never collide on a lock, small enough to stay cheap.
pub const DEFAULT_MAC_SHARDS: usize = 16;

/// One live MAC session on the server.
pub struct MacSession {
    secret: [u8; 32],
    /// The authority this MAC principal carries (from the establishment
    /// proof's verified conclusion).  Behind an `Arc` so `verify` can take
    /// a reference out of the shard with a refcount bump and do every
    /// check outside the lock.
    pub grant: Arc<Delegation>,
    /// Hashes of the certificates the establishment proof chain depended
    /// on — the session's revocation provenance.  A revocation push evicts
    /// exactly the sessions whose provenance names the revoked certificate
    /// ([`MacSessionStore::evict_by_cert`]).
    pub certs: Arc<[HashVal]>,
    /// The establishment proof, retained for end-to-end audit trails.
    pub establishment: Proof,
}

/// Server-side store of MAC sessions, keyed by MAC id (`H(secret)`).
///
/// Sessions are spread over N independently locked shards (the MAC id is
/// already a cryptographic hash, so its leading bytes pick the shard
/// uniformly).  `verify` copies the 32-byte secret out of the shard and
/// computes the HMAC *outside* any lock, so one slow verify cannot stall
/// establishment or verifies of other sessions.
pub struct MacSessionStore {
    shards: Box<[Mutex<HashMap<HashVal, MacSession>>]>,
    /// Bumped by [`MacSessionStore::evict_by_cert`] *before* it sweeps the
    /// shards.  [`MacSessionStore::establish_at_epoch`] re-reads it under
    /// the shard lock: an eviction racing an establishment either sees the
    /// new session in its sweep, or forces the establishment to refuse —
    /// a session verified against pre-revocation state can never slip in
    /// behind the sweep.
    invalidation_epoch: std::sync::atomic::AtomicU64,
}

impl Default for MacSessionStore {
    fn default() -> MacSessionStore {
        MacSessionStore::with_shards(DEFAULT_MAC_SHARDS)
    }
}

impl MacSessionStore {
    /// Creates an empty store with the default shard count.
    pub fn new() -> MacSessionStore {
        MacSessionStore::default()
    }

    /// Creates an empty store with `n` shards (`n ≥ 1`).
    pub fn with_shards(n: usize) -> MacSessionStore {
        let shards: Vec<Mutex<HashMap<HashVal, MacSession>>> =
            (0..n.max(1)).map(|_| Mutex::new(HashMap::new())).collect();
        MacSessionStore {
            shards: shards.into_boxed_slice(),
            invalidation_epoch: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The current invalidation epoch.  Callers that verify an
    /// establishment proof read this *before* verifying and pass it to
    /// [`MacSessionStore::establish_at_epoch`], so a revocation landing
    /// between verification and insertion refuses the session instead of
    /// resurrecting it.
    pub fn invalidation_epoch(&self) -> u64 {
        self.invalidation_epoch
            .load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Number of shards the store spreads sessions over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, mac_id: &HashVal) -> &Mutex<HashMap<HashVal, MacSession>> {
        // The id is itself a hash; fold its bytes for the shard index so
        // every byte contributes regardless of digest length.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in &mac_id.bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.plock().len()).sum()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.plock().is_empty())
    }

    /// Removes every session whose validity window has closed before
    /// `now`, returning how many were reclaimed.  Long-running servers
    /// otherwise accumulate one dead entry per establishment forever.
    pub fn evict_expired(&self, now: Time) -> usize {
        let mut evicted = 0;
        for shard in self.shards.iter() {
            let mut sessions = shard.plock();
            let before = sessions.len();
            sessions.retain(|_, s| !expired(&s.grant, now));
            evicted += before - sessions.len();
        }
        evicted
    }

    /// Removes every session whose establishment proof chain depended on
    /// the certificate with this hash, returning how many were evicted.
    ///
    /// This is the MAC store's arm of revocation push: a session minted
    /// from a since-revoked delegation must stop authorizing immediately,
    /// without flushing unrelated sessions or restarting the server.
    pub fn evict_by_cert(&self, cert_hash: &HashVal) -> usize {
        // Bump the epoch before sweeping: any establishment that read the
        // old epoch and locks its shard after this sweep passed it will
        // see the new value (the shard Mutex orders the two) and refuse.
        self.invalidation_epoch
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let mut evicted = 0;
        for shard in self.shards.iter() {
            let mut sessions = shard.plock();
            let before = sessions.len();
            sessions.retain(|_, s| !s.certs.contains(cert_hash));
            evicted += before - sessions.len();
        }
        evicted
    }

    /// Handles an establishment request body, returning the grant body.
    ///
    /// `proof` must already be verified by the caller;
    /// `proven` is its conclusion (the authority the MAC inherits).
    /// Establishment also sweeps expired sessions from the shard the new
    /// session lands in, so steady establishment traffic keeps the store
    /// from leaking.
    pub fn establish(
        &self,
        body: &[u8],
        proven: Delegation,
        establishment: Proof,
        now: Time,
        rand_bytes: &mut dyn FnMut(&mut [u8]),
    ) -> Result<Vec<u8>, String> {
        let epoch = self.invalidation_epoch();
        self.establish_at_epoch(body, proven, establishment, now, rand_bytes, epoch)
    }

    /// Like [`MacSessionStore::establish`], refusing when the store's
    /// invalidation epoch has moved past `verified_at_epoch` (read before
    /// the caller verified the establishment proof): the proof was checked
    /// against revocation state that a push has since superseded, so the
    /// session must not be created from it.
    pub fn establish_at_epoch(
        &self,
        body: &[u8],
        proven: Delegation,
        establishment: Proof,
        now: Time,
        rand_bytes: &mut dyn FnMut(&mut [u8]),
        verified_at_epoch: u64,
    ) -> Result<Vec<u8>, String> {
        let req = Sexp::parse(body).map_err(|e| format!("bad mac-request: {e}"))?;
        if req.tag_name() != Some("mac-request") {
            return Err("expected (mac-request …)".into());
        }
        let client_share = req
            .find_value("dh")
            .and_then(Sexp::as_atom)
            .ok_or("mac-request missing dh share")?;

        let group = Group::test512();
        let dh = DhSecret::generate(group, rand_bytes);
        let shared = dh
            .agree(&Ubig::from_bytes_be(client_share))
            .ok_or("invalid client DH share")?;

        let mut secret = [0u8; 32];
        rand_bytes(&mut secret);
        let mac_id = HashVal::of(&secret);

        // Wrap the secret under the DH-derived key.
        let wrap_key = derive_key(&shared, b"sf-mac-wrap");
        let mut enc = secret.to_vec();
        ChaCha20::new(&wrap_key, &[0u8; 12]).apply(&mut enc);

        // Record the session: the MAC principal carries the authority the
        // establishment proof demonstrated.
        let grant = Arc::new(Delegation {
            subject: Principal::Mac(mac_id.clone()),
            issuer: proven.issuer.clone(),
            tag: proven.tag.clone(),
            validity: proven.validity,
            delegable: false,
        });
        {
            let certs: Arc<[HashVal]> = establishment.cert_hashes().into();
            let mut sessions = self.shard(&mac_id).plock();
            // The shard Mutex orders this load against a racing
            // `evict_by_cert`'s bump: either the sweep sees this session,
            // or this check sees the sweep.
            if self.invalidation_epoch() != verified_at_epoch {
                return Err("a revocation landed since the establishment proof \
                            was verified; re-verify and retry"
                    .into());
            }
            sessions.retain(|_, s| !expired(&s.grant, now));
            sessions.insert(
                mac_id.clone(),
                MacSession {
                    secret,
                    grant,
                    certs,
                    establishment,
                },
            );
        }

        let reply = Sexp::tagged(
            "mac-grant",
            vec![
                Sexp::tagged("dh", vec![Sexp::atom(dh.public.to_bytes_be())]),
                Sexp::tagged("enc", vec![Sexp::atom(enc)]),
                Sexp::tagged("mac-id", vec![mac_id.to_sexp()]),
            ],
        );
        Ok(reply.canonical())
    }

    /// Verifies the MAC headers of a request.
    ///
    /// Returns the speaker principal (`Mac(id)`) and the session grant when
    /// `request_hash` is correctly authenticated, the grant covers
    /// `request_tag`, and the session is still valid at `now`.
    ///
    /// The shard lock is held only long enough to copy the 32-byte secret
    /// and bump the grant's refcount; the HMAC and the tag/validity checks
    /// run lock-free, so verifies on disjoint sessions proceed fully in
    /// parallel and never stall establishment.
    pub fn verify(
        &self,
        mac_id: &HashVal,
        presented_mac: &[u8],
        request_hash: &HashVal,
        request_tag: &Tag,
        now: Time,
    ) -> Result<(Principal, Delegation), String> {
        let (secret, grant) = {
            let sessions = self.shard(mac_id).plock();
            let session = sessions.get(mac_id).ok_or("unknown MAC session")?;
            (session.secret, Arc::clone(&session.grant))
        };
        let expect = hmac_sha256(&secret, &request_hash.bytes);
        if !ct_eq(&expect, presented_mac) {
            return Err("MAC verification failed".into());
        }
        if !grant.tag.permits(request_tag) {
            return Err("MAC session does not cover this request".into());
        }
        if !grant.validity.contains(now) {
            return Err("MAC session expired".into());
        }
        Ok((Principal::Mac(mac_id.clone()), (*grant).clone()))
    }

    /// The audit trail for a session: the establishment proof.
    pub fn audit(&self, mac_id: &HashVal) -> Option<String> {
        self.shard(mac_id)
            .plock()
            .get(mac_id)
            .map(|s| s.establishment.audit_trail())
    }
}

/// A session is dead once its validity window has closed; windows that
/// merely have not opened yet are kept.
fn expired(grant: &Delegation, now: Time) -> bool {
    grant.validity.not_after.is_some_and(|t| t < now)
}

/// Client-side state of one MAC session.
#[derive(Clone)]
pub struct ClientMacSession {
    /// The session id (`H(secret)`).
    pub mac_id: HashVal,
    secret: [u8; 32],
    /// The window the session covers.
    pub validity: Validity,
}

impl ClientMacSession {
    /// Builds the establishment request body and the DH secret to keep.
    pub fn request_body(rand_bytes: &mut dyn FnMut(&mut [u8])) -> (Vec<u8>, DhSecret) {
        let dh = DhSecret::generate(Group::test512(), rand_bytes);
        let body = Sexp::tagged(
            "mac-request",
            vec![Sexp::tagged(
                "dh",
                vec![Sexp::atom(dh.public.to_bytes_be())],
            )],
        )
        .canonical();
        (body, dh)
    }

    /// Completes establishment from the server's grant body.
    pub fn from_grant(
        grant_body: &[u8],
        dh: &DhSecret,
        validity: Validity,
    ) -> Result<ClientMacSession, String> {
        let grant = Sexp::parse(grant_body).map_err(|e| format!("bad mac-grant: {e}"))?;
        if grant.tag_name() != Some("mac-grant") {
            return Err("expected (mac-grant …)".into());
        }
        let server_share = grant
            .find_value("dh")
            .and_then(Sexp::as_atom)
            .ok_or("mac-grant missing dh")?;
        let enc = grant
            .find_value("enc")
            .and_then(Sexp::as_atom)
            .ok_or("mac-grant missing enc")?;
        let mac_id = HashVal::from_sexp(
            grant
                .find_value("mac-id")
                .ok_or("mac-grant missing mac-id")?,
        )
        .map_err(|e| format!("bad mac-id: {e}"))?;

        let shared = dh
            .agree(&Ubig::from_bytes_be(server_share))
            .ok_or("invalid server DH share")?;
        let wrap_key = derive_key(&shared, b"sf-mac-wrap");
        let mut secret_bytes = enc.to_vec();
        ChaCha20::new(&wrap_key, &[0u8; 12]).apply(&mut secret_bytes);
        let secret: [u8; 32] = secret_bytes
            .try_into()
            .map_err(|_| "wrapped secret has wrong length")?;
        // Integrity check: the id must be the hash of the secret.
        if HashVal::of(&secret) != mac_id {
            return Err("mac-id does not match unwrapped secret".into());
        }
        Ok(ClientMacSession {
            mac_id,
            secret,
            validity,
        })
    }

    /// Computes the `Sf-Mac` header value for a request hash.
    pub fn authenticate(&self, request_hash: &HashVal) -> String {
        b64_encode(&hmac_sha256(&self.secret, &request_hash.bytes))
    }

    /// The `Sf-Mac-Id` header value.
    pub fn id_header(&self) -> String {
        self.mac_id.to_sexp().transport()
    }
}

/// Decodes an `Sf-Mac` header back to MAC bytes.
pub fn decode_mac_header(value: &str) -> Option<Vec<u8>> {
    b64_decode(value.as_bytes())
}

/// Decodes an `Sf-Mac-Id` header back to a hash.
pub fn decode_mac_id_header(value: &str) -> Option<HashVal> {
    let sexp = Sexp::parse(value.as_bytes()).ok()?;
    HashVal::from_sexp(&sexp).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowflake_crypto::DetRng;

    fn det(seed: &str) -> impl FnMut(&mut [u8]) {
        let mut r = DetRng::new(seed.as_bytes());
        move |b: &mut [u8]| r.fill(b)
    }

    fn proven() -> (Delegation, Proof) {
        let d = Delegation {
            subject: Principal::message(b"establishment request"),
            issuer: Principal::message(b"service issuer"),
            tag: Tag::named("web", vec![Tag::named("method", vec![Tag::atom("GET")])]),
            validity: Validity::until(Time(1_000)),
            delegable: false,
        };
        (
            d.clone(),
            Proof::Assumption {
                stmt: d,
                authority: "test".into(),
            },
        )
    }

    #[test]
    fn establish_and_verify() {
        let store = MacSessionStore::new();
        let mut crng = det("client");
        let mut srng = det("server");
        let (body, dh) = ClientMacSession::request_body(&mut crng);
        let (grant, proof) = proven();
        let reply = store.establish(&body, grant, proof, Time(0), &mut srng).unwrap();
        let session =
            ClientMacSession::from_grant(&reply, &dh, Validity::until(Time(1_000))).unwrap();
        assert_eq!(store.len(), 1);

        let req_hash = HashVal::of(b"GET /inbox");
        let mac = session.authenticate(&req_hash);
        let mac_bytes = decode_mac_header(&mac).unwrap();
        let (speaker, grant) = store
            .verify(
                &session.mac_id,
                &mac_bytes,
                &req_hash,
                &Tag::named("web", vec![Tag::named("method", vec![Tag::atom("GET")])]),
                Time(500),
            )
            .unwrap();
        assert_eq!(speaker, Principal::Mac(session.mac_id.clone()));
        assert_eq!(grant.subject, speaker);
        // The audit trail is available.
        assert!(store.audit(&session.mac_id).is_some());
    }

    #[test]
    fn wrong_mac_rejected() {
        let store = MacSessionStore::new();
        let mut crng = det("c2");
        let mut srng = det("s2");
        let (body, dh) = ClientMacSession::request_body(&mut crng);
        let (grant, proof) = proven();
        let reply = store.establish(&body, grant, proof, Time(0), &mut srng).unwrap();
        let session = ClientMacSession::from_grant(&reply, &dh, Validity::always()).unwrap();

        let h1 = HashVal::of(b"request one");
        let h2 = HashVal::of(b"request two");
        let mac_for_h1 = decode_mac_header(&session.authenticate(&h1)).unwrap();
        // MAC for h1 presented with h2: rejected.
        assert!(store
            .verify(&session.mac_id, &mac_for_h1, &h2, &Tag::Star, Time(0))
            .is_err());
        // Unknown session id.
        assert!(store
            .verify(
                &HashVal::of(b"ghost"),
                &mac_for_h1,
                &h1,
                &Tag::Star,
                Time(0)
            )
            .is_err());
    }

    #[test]
    fn mac_session_respects_tag_and_expiry() {
        let store = MacSessionStore::new();
        let mut crng = det("c3");
        let mut srng = det("s3");
        let (body, dh) = ClientMacSession::request_body(&mut crng);
        let (grant, proof) = proven(); // grants only (web (method GET)), until t=1000
        let reply = store.establish(&body, grant, proof, Time(0), &mut srng).unwrap();
        let session =
            ClientMacSession::from_grant(&reply, &dh, Validity::until(Time(1_000))).unwrap();

        let h = HashVal::of(b"r");
        let mac = decode_mac_header(&session.authenticate(&h)).unwrap();
        // Outside the granted tag.
        let post = Tag::named("web", vec![Tag::named("method", vec![Tag::atom("POST")])]);
        assert!(store
            .verify(&session.mac_id, &mac, &h, &post, Time(500))
            .is_err());
        // Expired.
        let get = Tag::named("web", vec![Tag::named("method", vec![Tag::atom("GET")])]);
        assert!(store
            .verify(&session.mac_id, &mac, &h, &get, Time(2_000))
            .is_err());
        // In-window, in-tag.
        assert!(store
            .verify(&session.mac_id, &mac, &h, &get, Time(500))
            .is_ok());
    }

    fn proven_until(t: Time) -> (Delegation, Proof) {
        let d = Delegation {
            subject: Principal::message(b"establishment request"),
            issuer: Principal::message(b"service issuer"),
            tag: Tag::Star,
            validity: Validity::until(t),
            delegable: false,
        };
        (
            d.clone(),
            Proof::Assumption {
                stmt: d,
                authority: "test".into(),
            },
        )
    }

    /// Expired sessions are reclaimed by the explicit sweep — a
    /// long-running server must not leak one entry per establishment.
    #[test]
    fn evict_expired_reclaims_dead_sessions() {
        let store = MacSessionStore::new();
        let mut srng = det("evict-server");
        for i in 0..8 {
            let mut crng = det(&format!("evict-client-{i}"));
            let (body, _dh) = ClientMacSession::request_body(&mut crng);
            // Half the sessions die at t=100, half live until t=10_000.
            let (grant, proof) = proven_until(Time(if i % 2 == 0 { 100 } else { 10_000 }));
            store
                .establish(&body, grant, proof, Time(0), &mut srng)
                .unwrap();
        }
        assert_eq!(store.len(), 8);
        // Nothing has expired yet.
        assert_eq!(store.evict_expired(Time(50)), 0);
        assert_eq!(store.len(), 8);
        // The short-lived half is reclaimed.
        assert_eq!(store.evict_expired(Time(500)), 4);
        assert_eq!(store.len(), 4);
        // Eventually everything is.
        assert_eq!(store.evict_expired(Time(20_000)), 4);
        assert!(store.is_empty());
    }

    /// Establishment itself sweeps the shard it lands in, so steady
    /// traffic bounds the store without anyone calling `evict_expired`.
    #[test]
    fn establish_sweeps_expired_sessions() {
        // One shard so every establishment sweeps every session.
        let store = MacSessionStore::with_shards(1);
        let mut srng = det("sweep-server");
        let mut crng = det("sweep-client-a");
        let (body, _dh) = ClientMacSession::request_body(&mut crng);
        let (grant, proof) = proven_until(Time(100));
        store
            .establish(&body, grant, proof, Time(0), &mut srng)
            .unwrap();
        assert_eq!(store.len(), 1);

        // A later establishment (past the first session's expiry) replaces
        // rather than accumulates.
        let mut crng = det("sweep-client-b");
        let (body, _dh) = ClientMacSession::request_body(&mut crng);
        let (grant, proof) = proven_until(Time(10_000));
        store
            .establish(&body, grant, proof, Time(500), &mut srng)
            .unwrap();
        assert_eq!(store.len(), 1, "the expired session was swept");
    }

    /// Sessions spread across shards, and verifies on disjoint sessions
    /// run concurrently from many threads.
    #[test]
    fn concurrent_verify_across_shards() {
        let store = std::sync::Arc::new(MacSessionStore::new());
        let mut srng = det("shard-server");
        let mut sessions = Vec::new();
        for i in 0..32 {
            let mut crng = det(&format!("shard-client-{i}"));
            let (body, dh) = ClientMacSession::request_body(&mut crng);
            let (grant, proof) = proven_until(Time(1_000_000));
            let reply = store
                .establish(&body, grant, proof, Time(0), &mut srng)
                .unwrap();
            sessions
                .push(ClientMacSession::from_grant(&reply, &dh, Validity::always()).unwrap());
        }
        // With 32 random ids over 16 shards, more than one shard must be
        // populated (the ids are hashes; all colliding would mean the
        // shard function ignores them).
        let populated = (0..store.shard_count())
            .filter(|&i| !store.shards[i].plock().is_empty())
            .count();
        assert!(populated > 1, "sessions all landed in one shard");

        let threads: Vec<_> = sessions
            .chunks(8)
            .map(|chunk| {
                let store = std::sync::Arc::clone(&store);
                let chunk: Vec<ClientMacSession> = chunk.to_vec();
                std::thread::spawn(move || {
                    for s in &chunk {
                        for r in 0..16u32 {
                            let h = HashVal::of(&r.to_be_bytes());
                            let mac = decode_mac_header(&s.authenticate(&h)).unwrap();
                            store
                                .verify(&s.mac_id, &mac, &h, &Tag::Star, Time(500))
                                .expect("verify under contention");
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    /// An establishment whose proof was verified before a revocation push
    /// landed must be refused: the epoch handshake closes the
    /// verify-then-insert window that eviction alone cannot see.
    #[test]
    fn establishment_refused_when_revocation_raced_verification() {
        let store = MacSessionStore::new();
        let mut srng = det("race-server");

        // Caller reads the epoch, verifies the proof… and a push lands.
        let epoch = store.invalidation_epoch();
        store.evict_by_cert(&HashVal::of(b"some revoked cert"));

        let mut crng = det("race-client");
        let (body, _dh) = ClientMacSession::request_body(&mut crng);
        let (grant, proof) = proven();
        let refused = store.establish_at_epoch(&body, grant, proof, Time(0), &mut srng, epoch);
        assert!(refused.is_err(), "stale-epoch establishment must refuse");
        assert!(store.is_empty());

        // Re-verifying (reading the fresh epoch) succeeds.
        let epoch = store.invalidation_epoch();
        let mut crng = det("race-client-2");
        let (body, _dh) = ClientMacSession::request_body(&mut crng);
        let (grant, proof) = proven();
        store
            .establish_at_epoch(&body, grant, proof, Time(0), &mut srng, epoch)
            .unwrap();
        assert_eq!(store.len(), 1);
    }

    /// Sessions record the certificates their establishment chain used,
    /// and revoking one evicts exactly the dependent sessions.
    #[test]
    fn evict_by_cert_targets_dependent_sessions() {
        use snowflake_crypto::{Group, KeyPair};

        let store = MacSessionStore::new();
        let mut srng = det("cert-evict-server");
        let mut krng = det("cert-evict-key");
        let owner = KeyPair::generate(Group::test512(), &mut krng);

        // Session A: established through a signed-certificate chain.
        let delegation = Delegation {
            subject: Principal::message(b"establishment A"),
            issuer: Principal::key(&owner.public),
            tag: Tag::Star,
            validity: Validity::until(Time(10_000)),
            delegable: false,
        };
        let cert = snowflake_core::Certificate::issue(&owner, delegation.clone(), &mut krng);
        let cert_hash = cert.hash();
        let mut crng = det("cert-evict-client-a");
        let (body, _dh) = ClientMacSession::request_body(&mut crng);
        store
            .establish(
                &body,
                delegation,
                Proof::signed_cert(cert),
                Time(0),
                &mut srng,
            )
            .unwrap();

        // Session B: established through an assumption (no certificates).
        let (grant, proof) = proven();
        let mut crng = det("cert-evict-client-b");
        let (body, dh_b) = ClientMacSession::request_body(&mut crng);
        let reply = store.establish(&body, grant, proof, Time(0), &mut srng).unwrap();
        let session_b = ClientMacSession::from_grant(&reply, &dh_b, Validity::always()).unwrap();

        assert_eq!(store.len(), 2);
        // Revoking an unrelated certificate evicts nothing.
        assert_eq!(store.evict_by_cert(&HashVal::of(b"unrelated")), 0);
        // Revoking the establishment certificate evicts only session A.
        assert_eq!(store.evict_by_cert(&cert_hash), 1);
        assert_eq!(store.len(), 1);
        let h = HashVal::of(b"r");
        let mac = decode_mac_header(&session_b.authenticate(&h)).unwrap();
        assert!(store
            .verify(
                &session_b.mac_id,
                &mac,
                &h,
                &Tag::named("web", vec![Tag::named("method", vec![Tag::atom("GET")])]),
                Time(500)
            )
            .is_ok());
    }

    #[test]
    fn tampered_grant_rejected_by_client() {
        let store = MacSessionStore::new();
        let mut crng = det("c4");
        let mut srng = det("s4");
        let (body, dh) = ClientMacSession::request_body(&mut crng);
        let (grant, proof) = proven();
        let reply = store.establish(&body, grant, proof, Time(0), &mut srng).unwrap();
        // Flip a byte of the wrapped secret.
        let mut tampered = reply.clone();
        let pos = tampered.len() / 2;
        tampered[pos] ^= 0x40;
        let result = ClientMacSession::from_grant(&tampered, &dh, Validity::always());
        assert!(
            result.is_err(),
            "tampering must be detected via the mac-id hash"
        );
    }
}
