//! The `GET /metrics` exporter surface.
//!
//! The metrics plane is a serving surface like any other: it rides the
//! reactor (bounded frames, counted sheds), and every scrape is itself
//! an audited decision on the `metrics` surface — an operator reading
//! the counters leaves the same tamper-evident trail as a client
//! reading a document.
//!
//! [`MetricsEndpoint`] is a [`Handler`] serving the Prometheus text
//! exposition format from one consistent point-in-time snapshot
//! ([`Registry::render`]); [`serve_metrics`] is the one-call production
//! shape: a dedicated [`HttpServer`] on the reactor whose sheds, audit
//! events, and request latency all land under `surface="metrics"`.

use crate::message::{HttpRequest, HttpResponse};
use crate::server::{Handler, HttpServer};
use snowflake_core::audit::{AuditEmitter, Decision, DecisionEvent, EmitterSlot};
use snowflake_core::Time;
use snowflake_metrics::Registry;
use std::sync::Arc;

/// The content type Prometheus scrapers expect.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// The path the exporter serves.
pub const METRICS_PATH: &str = "/metrics";

/// A [`Handler`] rendering a [`Registry`] as the Prometheus text
/// exposition format.  GET only; every scrape (and every refused
/// method) is audited on the `metrics` surface.
pub struct MetricsEndpoint {
    registry: &'static Registry,
    audit: EmitterSlot,
    clock: fn() -> Time,
}

impl MetricsEndpoint {
    /// An endpoint over the process-global registry with wall-clock
    /// audit timestamps.
    pub fn new() -> Arc<MetricsEndpoint> {
        Self::with_clock(Time::now)
    }

    /// An endpoint with an injected clock (tests).
    pub fn with_clock(clock: fn() -> Time) -> Arc<MetricsEndpoint> {
        Self::with_registry(snowflake_metrics::global(), clock)
    }

    /// An endpoint over an explicit registry (tests render private
    /// registries; production uses [`snowflake_metrics::global`]).
    pub fn with_registry(registry: &'static Registry, clock: fn() -> Time) -> Arc<MetricsEndpoint> {
        Arc::new(MetricsEndpoint {
            registry,
            audit: EmitterSlot::new(),
            clock,
        })
    }

    /// Attaches an audit emitter; every scrape decision goes through it
    /// (`surface: metrics`).
    pub fn set_audit_emitter(&self, emitter: Arc<dyn AuditEmitter>) {
        self.audit.set(emitter);
    }
}

impl Handler for MetricsEndpoint {
    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        if req.method != "GET" {
            self.audit.emit_with(|| {
                DecisionEvent::new(
                    (self.clock)(),
                    "metrics",
                    Decision::Deny,
                    METRICS_PATH,
                    &req.method,
                    "method not allowed",
                )
            });
            return HttpResponse::status(405, "Method Not Allowed", "GET only");
        }
        let body = self.registry.render();
        self.audit.emit_with(|| {
            DecisionEvent::new(
                (self.clock)(),
                "metrics",
                Decision::Grant,
                METRICS_PATH,
                "GET",
                &format!("scrape served ({} bytes)", body.len()),
            )
        });
        HttpResponse::ok(METRICS_CONTENT_TYPE, body.into_bytes())
    }
}

/// Attaches a dedicated metrics [`HttpServer`] to the runtime's reactor:
/// `GET /metrics` on `listener` serves the process-global registry, with
/// reactor-level sheds counted and audited under `surface="metrics"`
/// like every other serving surface.  Returns the listener handle and
/// the endpoint (so callers can attach an audit emitter).
pub fn serve_metrics(
    listener: std::net::TcpListener,
    runtime: &Arc<snowflake_runtime::ServerRuntime>,
    clock: fn() -> Time,
) -> std::io::Result<(snowflake_runtime::ListenerHandle, Arc<MetricsEndpoint>)> {
    let endpoint = MetricsEndpoint::with_clock(clock);
    let server = HttpServer::with_surface("metrics", clock);
    server.route(METRICS_PATH, Arc::clone(&endpoint) as Arc<dyn Handler>);
    let handle = server.attach_to_reactor(listener, runtime)?;
    Ok((handle, endpoint))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_clock() -> Time {
        Time(42)
    }

    #[test]
    fn get_renders_the_global_registry() {
        snowflake_metrics::request_histogram("metrics-unit-test").record_ns(1_000);
        let ep = MetricsEndpoint::with_clock(fixed_clock);
        let req = HttpRequest::get(METRICS_PATH);
        let resp = ep.handle(&req);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("Content-Type"), Some(METRICS_CONTENT_TYPE));
        let body = String::from_utf8(resp.body.clone()).unwrap();
        assert!(
            body.contains("sf_request_duration_seconds_count{surface=\"metrics-unit-test\"}"),
            "{body}"
        );
    }

    #[test]
    fn non_get_is_refused_and_audited() {
        let ep = MetricsEndpoint::with_clock(fixed_clock);
        let events: Arc<std::sync::Mutex<Vec<DecisionEvent>>> = Arc::default();
        struct Cap(Arc<std::sync::Mutex<Vec<DecisionEvent>>>);
        impl AuditEmitter for Cap {
            fn emit(&self, e: DecisionEvent) {
                self.0.lock().unwrap().push(e);
            }
        }
        ep.set_audit_emitter(Arc::new(Cap(Arc::clone(&events))));
        let mut req = HttpRequest::get(METRICS_PATH);
        req.method = "POST".into();
        let resp = ep.handle(&req);
        assert_eq!(resp.status, 405);
        let events = events.lock().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].surface, "metrics");
        assert_eq!(events[0].decision, Decision::Deny);
    }
}
