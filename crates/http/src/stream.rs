//! Byte-stream plumbing for HTTP.
//!
//! HTTP is a byte-stream protocol; Snowflake channels are frame-based.
//! [`MemStream`] gives tests an in-memory connected stream pair, and
//! [`ChannelStream`] adapts any [`AuthChannel`] into a byte stream so HTTP
//! can run over the secure channel (the SSL-like configurations of
//! Figure 8).

use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
use snowflake_channel::AuthChannel;
use std::io::{self, Read, Write};

/// One end of an in-memory duplex byte stream.
pub struct MemStream {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    pending: Vec<u8>,
    offset: usize,
}

/// Creates a connected pair of in-memory byte streams.
pub fn duplex() -> (MemStream, MemStream) {
    let (atx, arx) = unbounded();
    let (btx, brx) = unbounded();
    (
        MemStream {
            tx: atx,
            rx: brx,
            pending: Vec::new(),
            offset: 0,
        },
        MemStream {
            tx: btx,
            rx: arx,
            pending: Vec::new(),
            offset: 0,
        },
    )
}

impl Read for MemStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.offset >= self.pending.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.pending = chunk;
                    self.offset = 0;
                }
                // Peer closed: EOF.
                Err(_) => return Ok(0),
            }
        }
        let available = &self.pending[self.offset..];
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        self.offset += n;
        Ok(n)
    }
}

impl Write for MemStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Adapts a frame-based channel into a byte stream.
///
/// Writes buffer until [`flush`](Write::flush), which emits one frame; reads
/// drain one frame at a time.  HTTP code always flushes after a complete
/// message, so framing boundaries align with messages.
pub struct ChannelStream {
    channel: Box<dyn AuthChannel>,
    write_buf: Vec<u8>,
    read_buf: Vec<u8>,
    read_off: usize,
}

impl ChannelStream {
    /// Wraps an authenticated channel.
    pub fn new(channel: Box<dyn AuthChannel>) -> ChannelStream {
        ChannelStream {
            channel,
            write_buf: Vec::new(),
            read_buf: Vec::new(),
            read_off: 0,
        }
    }

    /// Access to the underlying channel (for peer identity queries).
    pub fn channel(&self) -> &dyn AuthChannel {
        self.channel.as_ref()
    }
}

impl Read for ChannelStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.read_off >= self.read_buf.len() {
            match self.channel.recv() {
                Ok(frame) => {
                    self.read_buf = frame;
                    self.read_off = 0;
                }
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(0),
                Err(e) => return Err(e),
            }
        }
        let available = &self.read_buf[self.read_off..];
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        self.read_off += n;
        Ok(n)
    }
}

impl Write for ChannelStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.write_buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if !self.write_buf.is_empty() {
            let frame = std::mem::take(&mut self.write_buf);
            self.channel.send(&frame)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{HttpRequest, HttpResponse};
    use snowflake_channel::{PipeTransport, SecureChannel};
    use snowflake_crypto::{DetRng, Group, KeyPair};
    use std::io::BufReader;

    #[test]
    fn mem_stream_carries_http() {
        let (mut c, mut s) = duplex();
        let t = std::thread::spawn(move || {
            let mut req_buf = BufReader::new(&mut s);
            let req = HttpRequest::read_from(&mut req_buf).unwrap().unwrap();
            assert_eq!(req.path, "/hello");
            HttpResponse::ok("text/plain", b"hi".to_vec())
                .write_to(&mut s)
                .unwrap();
        });
        HttpRequest::get("/hello").write_to(&mut c).unwrap();
        let resp = HttpResponse::read_from(&mut BufReader::new(&mut c))
            .unwrap()
            .unwrap();
        assert_eq!(resp.body, b"hi");
        t.join().unwrap();
    }

    #[test]
    fn channel_stream_carries_http_over_secure_channel() {
        let mut rng_k = DetRng::new(b"k");
        let server_key = KeyPair::generate(Group::test512(), &mut |b| rng_k.fill(b));
        let server_key2 = server_key.clone();
        let (ct, st) = PipeTransport::pair();
        let t = std::thread::spawn(move || {
            let mut rng = DetRng::new(b"s");
            let ch = SecureChannel::server(Box::new(st), &server_key2, None, &mut |b| rng.fill(b))
                .unwrap();
            let mut stream = ChannelStream::new(Box::new(ch));
            let req = {
                let mut r = BufReader::new(&mut stream);
                HttpRequest::read_from(&mut r).unwrap().unwrap()
            };
            assert_eq!(req.path, "/secure");
            HttpResponse::ok("text/plain", b"over ssl-like".to_vec())
                .write_to(&mut stream)
                .unwrap();
        });
        let mut rng = DetRng::new(b"c");
        let ch = SecureChannel::client(Box::new(ct), None, None, &mut |b| rng.fill(b)).unwrap();
        let mut stream = ChannelStream::new(Box::new(ch));
        HttpRequest::get("/secure").write_to(&mut stream).unwrap();
        let resp = {
            let mut r = BufReader::new(&mut stream);
            HttpResponse::read_from(&mut r).unwrap().unwrap()
        };
        assert_eq!(resp.body, b"over ssl-like");
        t.join().unwrap();
    }

    #[test]
    fn mem_stream_eof_on_close() {
        let (mut c, s) = duplex();
        drop(s);
        let mut buf = [0u8; 8];
        assert_eq!(c.read(&mut buf).unwrap(), 0);
    }
}
