//! Byte-stream plumbing for HTTP.
//!
//! HTTP is a byte-stream protocol; Snowflake channels are frame-based.
//! [`MemStream`] gives tests an in-memory connected stream pair, and
//! [`ChannelStream`] adapts any [`AuthChannel`] into a byte stream so HTTP
//! can run over the secure channel (the SSL-like configurations of
//! Figure 8).

use std::sync::mpsc::{channel as unbounded, sync_channel, Receiver, Sender, SyncSender};
use snowflake_channel::AuthChannel;
use std::io::{self, Read, Write};

/// Default chunk capacity for [`bounded_duplex`]: deep enough for HTTP
/// message bursts, shallow enough that a stalled reader stalls its writer
/// instead of growing an unbounded buffer.
pub const DEFAULT_STREAM_CAPACITY: usize = 64;

/// The writing half of a memory stream: bounded (production) or
/// unbounded (tests).
enum StreamTx {
    Unbounded(Sender<Vec<u8>>),
    Bounded(SyncSender<Vec<u8>>),
}

/// One end of an in-memory duplex byte stream.
///
/// Production code uses [`bounded_duplex`], whose writes block once
/// `capacity` chunks are in flight (backpressure, like a full TCP send
/// window).  The unbounded [`duplex`] exists only for tests.
pub struct MemStream {
    tx: StreamTx,
    rx: Receiver<Vec<u8>>,
    pending: Vec<u8>,
    offset: usize,
}

fn mem_stream(tx: StreamTx, rx: Receiver<Vec<u8>>) -> MemStream {
    MemStream {
        tx,
        rx,
        pending: Vec::new(),
        offset: 0,
    }
}

/// Creates a connected pair of **unbounded** in-memory byte streams.
///
/// Tests only: nothing limits how far a writer can run ahead of a stalled
/// reader.  Serving paths use [`bounded_duplex`].
pub fn duplex() -> (MemStream, MemStream) {
    let (atx, arx) = unbounded();
    let (btx, brx) = unbounded();
    (
        mem_stream(StreamTx::Unbounded(atx), brx),
        mem_stream(StreamTx::Unbounded(btx), arx),
    )
}

/// Creates a connected pair of **bounded** in-memory byte streams: at
/// most `capacity` written chunks may be in flight per direction, after
/// which `write` blocks until the reader drains (backpressure).
pub fn bounded_duplex(capacity: usize) -> (MemStream, MemStream) {
    let capacity = capacity.max(1);
    let (atx, arx) = sync_channel(capacity);
    let (btx, brx) = sync_channel(capacity);
    (
        mem_stream(StreamTx::Bounded(atx), brx),
        mem_stream(StreamTx::Bounded(btx), arx),
    )
}

impl Read for MemStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.offset >= self.pending.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.pending = chunk;
                    self.offset = 0;
                }
                // Peer closed: EOF.
                Err(_) => return Ok(0),
            }
        }
        let available = &self.pending[self.offset..];
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        self.offset += n;
        Ok(n)
    }
}

impl Write for MemStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let result = match &self.tx {
            StreamTx::Unbounded(tx) => tx.send(buf.to_vec()).map_err(|_| ()),
            // Blocks while the stream is at capacity: a slow reader slows
            // its writer instead of growing an unbounded buffer.
            StreamTx::Bounded(tx) => tx.send(buf.to_vec()).map_err(|_| ()),
        };
        result.map_err(|()| io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Adapts a frame-based channel into a byte stream.
///
/// Writes buffer until [`flush`](Write::flush), which emits one frame; reads
/// drain one frame at a time.  HTTP code always flushes after a complete
/// message, so framing boundaries align with messages.
pub struct ChannelStream {
    channel: Box<dyn AuthChannel>,
    write_buf: Vec<u8>,
    read_buf: Vec<u8>,
    read_off: usize,
}

impl ChannelStream {
    /// Wraps an authenticated channel.
    pub fn new(channel: Box<dyn AuthChannel>) -> ChannelStream {
        ChannelStream {
            channel,
            write_buf: Vec::new(),
            read_buf: Vec::new(),
            read_off: 0,
        }
    }

    /// Access to the underlying channel (for peer identity queries).
    pub fn channel(&self) -> &dyn AuthChannel {
        self.channel.as_ref()
    }
}

impl Read for ChannelStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.read_off >= self.read_buf.len() {
            match self.channel.recv() {
                Ok(frame) => {
                    self.read_buf = frame;
                    self.read_off = 0;
                }
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(0),
                Err(e) => return Err(e),
            }
        }
        let available = &self.read_buf[self.read_off..];
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        self.read_off += n;
        Ok(n)
    }
}

impl Write for ChannelStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.write_buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if !self.write_buf.is_empty() {
            let frame = std::mem::take(&mut self.write_buf);
            self.channel.send(&frame)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{HttpRequest, HttpResponse};
    use snowflake_channel::{PipeTransport, SecureChannel};
    use snowflake_crypto::{DetRng, Group, KeyPair};
    use std::io::BufReader;

    #[test]
    fn mem_stream_carries_http() {
        let (mut c, mut s) = duplex();
        let t = std::thread::spawn(move || {
            let mut req_buf = BufReader::new(&mut s);
            let req = HttpRequest::read_from(&mut req_buf).unwrap().unwrap();
            assert_eq!(req.path, "/hello");
            HttpResponse::ok("text/plain", b"hi".to_vec())
                .write_to(&mut s)
                .unwrap();
        });
        HttpRequest::get("/hello").write_to(&mut c).unwrap();
        let resp = HttpResponse::read_from(&mut BufReader::new(&mut c))
            .unwrap()
            .unwrap();
        assert_eq!(resp.body, b"hi");
        t.join().unwrap();
    }

    #[test]
    fn channel_stream_carries_http_over_secure_channel() {
        let mut rng_k = DetRng::new(b"k");
        let server_key = KeyPair::generate(Group::test512(), &mut |b| rng_k.fill(b));
        let server_key2 = server_key.clone();
        let (ct, st) = PipeTransport::pair();
        let t = std::thread::spawn(move || {
            let mut rng = DetRng::new(b"s");
            let ch = SecureChannel::server(Box::new(st), &server_key2, None, &mut |b| rng.fill(b))
                .unwrap();
            let mut stream = ChannelStream::new(Box::new(ch));
            let req = {
                let mut r = BufReader::new(&mut stream);
                HttpRequest::read_from(&mut r).unwrap().unwrap()
            };
            assert_eq!(req.path, "/secure");
            HttpResponse::ok("text/plain", b"over ssl-like".to_vec())
                .write_to(&mut stream)
                .unwrap();
        });
        let mut rng = DetRng::new(b"c");
        let ch = SecureChannel::client(Box::new(ct), None, None, &mut |b| rng.fill(b)).unwrap();
        let mut stream = ChannelStream::new(Box::new(ch));
        HttpRequest::get("/secure").write_to(&mut stream).unwrap();
        let resp = {
            let mut r = BufReader::new(&mut stream);
            HttpResponse::read_from(&mut r).unwrap().unwrap()
        };
        assert_eq!(resp.body, b"over ssl-like");
        t.join().unwrap();
    }

    #[test]
    fn mem_stream_eof_on_close() {
        let (mut c, s) = duplex();
        drop(s);
        let mut buf = [0u8; 8];
        assert_eq!(c.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn bounded_stream_carries_http() {
        let (mut c, mut s) = bounded_duplex(4);
        let t = std::thread::spawn(move || {
            let mut req_buf = BufReader::new(&mut s);
            let req = HttpRequest::read_from(&mut req_buf).unwrap().unwrap();
            assert_eq!(req.path, "/bounded");
            HttpResponse::ok("text/plain", b"ok".to_vec())
                .write_to(&mut s)
                .unwrap();
        });
        HttpRequest::get("/bounded").write_to(&mut c).unwrap();
        let resp = HttpResponse::read_from(&mut BufReader::new(&mut c))
            .unwrap()
            .unwrap();
        assert_eq!(resp.body, b"ok");
        t.join().unwrap();
    }

    #[test]
    fn bounded_stream_write_blocks_at_capacity() {
        let (mut c, mut s) = bounded_duplex(1);
        c.write_all(b"one").unwrap();
        let writer = std::thread::spawn(move || {
            c.write_all(b"two").unwrap();
            c
        });
        // The second chunk cannot land until the reader drains the first.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!writer.is_finished(), "write must block while the stream is full");
        let mut buf = [0u8; 3];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"one");
        writer.join().unwrap();
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"two");
    }
}
