//! The Snowflake Authorization HTTP method (paper §5.3, Figure 5), plus
//! Basic and Digest for comparison.
//!
//! "In our new method, called Snowflake Authorization, the parameters
//! embedded in the server's `WWW-Authenticate` challenge are the issuer
//! that the client needs to speak for and the minimum restriction set that
//! the delegation must allow.  The `Authorization` header in the client's
//! second request simply includes a Snowflake proof that the request speaks
//! for the required issuer regarding the specified restriction set.  The
//! subject of the proof is a hash of the request, less the Authorization
//! header."

use crate::mac::{self, MacSessionStore};
use crate::message::{HttpRequest, HttpResponse};
use snowflake_core::{Delegation, HashAlg, HashVal, Principal, Tag, Time};
use snowflake_crypto::hmac::ct_eq;
use snowflake_crypto::md5;
use snowflake_sexpr::{b64_decode, b64_encode, hex_encode, Sexp};

/// The authentication scheme token in `WWW-Authenticate` / `Authorization`.
pub const WWW_AUTH_SNOWFLAKE: &str = "SnowflakeProof";

/// The request header naming a MAC session (`H(secret)`, transport form).
pub const MAC_ID_HEADER: &str = "Sf-Mac-Id";

/// The request header carrying `HMAC-SHA256(secret, request-hash)`.
pub const MAC_HEADER: &str = "Sf-Mac";

/// Authorizes a request by its MAC headers against a session store
/// (§5.3.1's amortized path).
///
/// Returns `None` when the request carries no MAC headers (the caller
/// falls through to the signed-request path), otherwise the store's
/// verdict: the speaker principal and session grant, or why the MAC was
/// rejected.  The HMAC itself is computed outside the store's shard locks,
/// so this path scales across connections.
pub fn authorize_mac(
    store: &MacSessionStore,
    req: &HttpRequest,
    request_tag: &Tag,
    alg: HashAlg,
    now: Time,
) -> Option<Result<(Principal, Delegation), String>> {
    let id_header = req.header(MAC_ID_HEADER)?;
    let mac_header = req.header(MAC_HEADER)?;
    let Some(mac_id) = mac::decode_mac_id_header(id_header) else {
        return Some(Err("bad Sf-Mac-Id".into()));
    };
    let Some(mac_bytes) = mac::decode_mac_header(mac_header) else {
        return Some(Err("bad Sf-Mac".into()));
    };
    let hash = request_hash(req, alg);
    Some(store.verify(&mac_id, &mac_bytes, &hash, request_tag, now))
}

/// Canonicalizes a request for hashing: the request *less* the
/// `Authorization` header (and the MAC headers added after hashing), as an
/// S-expression.
///
/// Headers are sorted so intermediaries that reorder them do not break the
/// hash.
pub fn request_canonical(req: &HttpRequest) -> Sexp {
    let mut headers: Vec<(String, String)> = req
        .headers
        .iter()
        .filter(|(n, _)| {
            !n.eq_ignore_ascii_case("authorization")
                && !n.eq_ignore_ascii_case(MAC_HEADER)
                && !n.eq_ignore_ascii_case(MAC_ID_HEADER)
                && !n.eq_ignore_ascii_case(CLIENT_PROOF_HEADER)
                // Derivable from the body; serializers add it implicitly.
                && !n.eq_ignore_ascii_case("content-length")
        })
        .cloned()
        .collect();
    headers.sort();
    let header_sexps: Vec<Sexp> = headers
        .into_iter()
        .map(|(n, v)| Sexp::list(vec![Sexp::from(n.to_ascii_lowercase()), Sexp::from(v)]))
        .collect();
    Sexp::tagged(
        "http-request",
        vec![
            Sexp::tagged("method", vec![Sexp::from(req.method.as_str())]),
            Sexp::tagged("path", vec![Sexp::from(req.path.as_str())]),
            Sexp::tagged("headers", header_sexps),
            Sexp::tagged("body", vec![Sexp::atom(req.body.clone())]),
        ],
    )
}

/// The hash of a request (less its Authorization header).
pub fn request_hash(req: &HttpRequest, alg: HashAlg) -> HashVal {
    HashVal::digest(alg, &request_canonical(req).canonical())
}

/// The request embodied as a principal: `Message(H(request))`.
pub fn request_principal(req: &HttpRequest, alg: HashAlg) -> Principal {
    Principal::Message(request_hash(req, alg))
}

/// Builds the `401 Unauthorized` Snowflake challenge of Figure 5.
pub fn challenge(issuer: &Principal, min_tag: &Tag) -> HttpResponse {
    let mut resp = HttpResponse::status(401, "UNAUTHORIZED", "authorization required");
    resp.set_header("WWW-Authenticate", WWW_AUTH_SNOWFLAKE);
    // The paper sends the issuer as an SPKI hash form and the tag in
    // advanced form; we use the transport encoding for header safety.
    resp.set_header("Sf-ServiceIssuer", &issuer.to_sexp().transport());
    resp.set_header("Sf-MinimumTag", &min_tag.to_sexp().transport());
    resp
}

/// Parses a Snowflake challenge from a 401 response.
pub fn parse_challenge(resp: &HttpResponse) -> Option<(Principal, Tag)> {
    if resp.status != 401 {
        return None;
    }
    if resp.header("WWW-Authenticate")? != WWW_AUTH_SNOWFLAKE {
        return None;
    }
    let issuer_sexp = Sexp::parse(resp.header("Sf-ServiceIssuer")?.as_bytes()).ok()?;
    let issuer = Principal::from_sexp(&issuer_sexp).ok()?;
    let tag_sexp = Sexp::parse(resp.header("Sf-MinimumTag")?.as_bytes()).ok()?;
    let tag = Tag::parse(&tag_sexp).ok()?;
    Some((issuer, tag))
}

/// The challenge header naming the quoter principal for gateway flows
/// (§6.3): "in that response [the gateway] indicates it needs a proof that
/// `G|? =T⇒ S`" — this header carries `G`, and the client substitutes its
/// identity for the pseudo-principal `?`.
pub const QUOTER_HEADER: &str = "Sf-Quoter";

/// The request header carrying the signed copy of the original request
/// (`R ⇒ C`) in gateway flows.
pub const CLIENT_PROOF_HEADER: &str = "Sf-Client-Proof";

/// Adds the quoter principal to a gateway's challenge.
pub fn add_quoter(resp: &mut HttpResponse, quoter: &Principal) {
    resp.set_header(QUOTER_HEADER, &quoter.to_sexp().transport());
}

/// Reads the quoter principal from a gateway's challenge.
pub fn parse_quoter(resp: &HttpResponse) -> Option<Principal> {
    let sexp = Sexp::parse(resp.header(QUOTER_HEADER)?.as_bytes()).ok()?;
    Principal::from_sexp(&sexp).ok()
}

/// Attaches the client's signed-request proof (`R ⇒ C`).
pub fn attach_client_proof(req: &mut HttpRequest, proof: &snowflake_core::Proof) {
    req.set_header(CLIENT_PROOF_HEADER, &proof.to_sexp().transport());
}

/// Extracts the client's signed-request proof.
pub fn extract_client_proof(req: &HttpRequest) -> Option<snowflake_core::Proof> {
    let sexp = Sexp::parse(req.header(CLIENT_PROOF_HEADER)?.as_bytes()).ok()?;
    snowflake_core::Proof::from_sexp(&sexp).ok()
}

/// Attaches a Snowflake proof to a request.
pub fn attach_proof(req: &mut HttpRequest, proof: &snowflake_core::Proof) {
    req.set_header(
        "Authorization",
        &format!("{WWW_AUTH_SNOWFLAKE} {}", proof.to_sexp().transport()),
    );
}

/// Extracts a Snowflake proof from a request's Authorization header.
pub fn extract_proof(req: &HttpRequest) -> Option<snowflake_core::Proof> {
    let value = req.header("Authorization")?;
    let rest = value.strip_prefix(WWW_AUTH_SNOWFLAKE)?.trim_start();
    let sexp = Sexp::parse(rest.as_bytes()).ok()?;
    snowflake_core::Proof::from_sexp(&sexp).ok()
}

/// The standard web-request tag, mirroring Figure 5:
/// `(tag (web (method GET) (service …) (resourcePath …)))`.
pub fn web_tag(method: &str, service: &str, resource_path: &str) -> Tag {
    Tag::named(
        "web",
        vec![
            Tag::named("method", vec![Tag::atom(method)]),
            Tag::named("service", vec![Tag::atom(service)]),
            Tag::named("resourcePath", vec![Tag::atom(resource_path)]),
        ],
    )
}

// --- Basic and Digest authentication (RFC 2617), for comparison ---------

/// Builds a Basic `Authorization` header value.
pub fn basic_authorization(user: &str, password: &str) -> String {
    format!(
        "Basic {}",
        b64_encode(format!("{user}:{password}").as_bytes())
    )
}

/// Parses a Basic `Authorization` header into `(user, password)`.
pub fn parse_basic(value: &str) -> Option<(String, String)> {
    let b64 = value.strip_prefix("Basic ")?;
    let decoded = b64_decode(b64.as_bytes())?;
    let text = String::from_utf8(decoded).ok()?;
    let (user, pass) = text.split_once(':')?;
    Some((user.to_string(), pass.to_string()))
}

/// Computes the Digest response hash `H(H(A1) ‖ nonce ‖ H(A2))` (RFC 2617,
/// no qop, MD5 — the original scheme the paper cites).
pub fn digest_response(
    user: &str,
    realm: &str,
    password: &str,
    method: &str,
    uri: &str,
    nonce: &str,
) -> String {
    let ha1 = hex_encode(&md5(format!("{user}:{realm}:{password}").as_bytes()));
    let ha2 = hex_encode(&md5(format!("{method}:{uri}").as_bytes()));
    hex_encode(&md5(format!("{ha1}:{nonce}:{ha2}").as_bytes()))
}

/// Verifies a Digest response in constant time.
pub fn verify_digest(expected: &str, presented: &str) -> bool {
    ct_eq(expected.as_bytes(), presented.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_hash_excludes_authorization() {
        let mut a = HttpRequest::get("/inbox");
        a.set_header("Host", "h");
        let mut b = a.clone();
        b.set_header("Authorization", "SnowflakeProof {xyz}");
        assert_eq!(
            request_hash(&a, HashAlg::Sha256),
            request_hash(&b, HashAlg::Sha256)
        );
        // But the path and method matter.
        let c = HttpRequest::get("/outbox");
        assert_ne!(
            request_hash(&a, HashAlg::Sha256),
            request_hash(&c, HashAlg::Sha256)
        );
        let mut d = a.clone();
        d.method = "POST".into();
        assert_ne!(
            request_hash(&a, HashAlg::Sha256),
            request_hash(&d, HashAlg::Sha256)
        );
    }

    #[test]
    fn request_hash_stable_under_header_reorder() {
        let mut a = HttpRequest::get("/x");
        a.headers.push(("A".into(), "1".into()));
        a.headers.push(("B".into(), "2".into()));
        let mut b = HttpRequest::get("/x");
        b.headers.push(("B".into(), "2".into()));
        b.headers.push(("A".into(), "1".into()));
        assert_eq!(
            request_hash(&a, HashAlg::Sha256),
            request_hash(&b, HashAlg::Sha256)
        );
    }

    #[test]
    fn md5_flavor_matches_figure5() {
        // Figure 5 uses (hash md5 |…|); the md5 request principal has the
        // right algorithm and length.
        let req = HttpRequest::get("/");
        let h = request_hash(&req, HashAlg::Md5);
        assert_eq!(h.alg, HashAlg::Md5);
        assert_eq!(h.bytes.len(), 16);
    }

    #[test]
    fn challenge_roundtrip() {
        let issuer = Principal::message(b"service-issuer");
        let tag = web_tag("GET", "Jon's Protected Service", "");
        let resp = challenge(&issuer, &tag);
        assert_eq!(resp.status, 401);
        assert_eq!(resp.header("WWW-Authenticate"), Some(WWW_AUTH_SNOWFLAKE));
        let (i2, t2) = parse_challenge(&resp).unwrap();
        assert_eq!(i2, issuer);
        assert_eq!(t2, tag);
    }

    #[test]
    fn parse_challenge_rejects_wrong_status_or_scheme() {
        let issuer = Principal::message(b"i");
        let tag = web_tag("GET", "s", "");
        let mut ok = challenge(&issuer, &tag);
        ok.status = 403;
        assert!(parse_challenge(&ok).is_none());
        let mut wrong = challenge(&issuer, &tag);
        wrong.set_header("WWW-Authenticate", "Basic realm=x");
        assert!(parse_challenge(&wrong).is_none());
    }

    #[test]
    fn basic_roundtrip() {
        let h = basic_authorization("alice", "s3cret:with:colons");
        let (u, p) = parse_basic(&h).unwrap();
        assert_eq!(u, "alice");
        assert_eq!(p, "s3cret:with:colons");
        assert!(parse_basic("Bearer xyz").is_none());
    }

    #[test]
    fn digest_known_vector() {
        // RFC 2617 §3.5 example.
        let resp = digest_response(
            "Mufasa",
            "testrealm@host.com",
            "Circle Of Life",
            "GET",
            "/dir/index.html",
            "dcd98b7102dd2f0e8b11d0f600bfb0c093",
        );
        // RFC 2617's example uses qop=auth with cnonce; without qop the
        // value differs, so just pin the current computation for stability.
        assert_eq!(resp.len(), 32);
        assert!(verify_digest(&resp, &resp.clone()));
        assert!(!verify_digest(&resp, "0000"));
    }

    #[test]
    fn web_tag_shape_matches_figure5() {
        let t = web_tag("GET", "svc", "/inbox");
        let printed = t.to_sexp().advanced();
        assert!(printed.contains("(method GET)"), "{printed}");
        assert!(printed.contains("resourcePath"), "{printed}");
    }
}
