//! HTTP server, the `ProtectedServlet`, and server document authentication.
//!
//! "We implement the server side of the signed-requests protocol as an
//! abstract Java Servlet `ProtectedServlet`.  Concrete implementations
//! extend `ProtectedServlet` with a method that maps a request to an issuer
//! that controls the requested resource and to the minimum restriction set
//! required to authorize the request" (§5.3.4).
//!
//! "Notice that the server identifies only a single principal that controls
//! the resource, not an ACL … the client is responsible to know and exploit
//! its group memberships as represented in delegations."

use snowflake_core::sync::LockExt;
use crate::auth;
use crate::mac::{MacSessionStore, MAC_SESSION_PATH};
use crate::message::{HttpRequest, HttpResponse};
use std::sync::Mutex;
use snowflake_core::audit::{AuditEmitter, Decision, DecisionEvent, EmitterSlot};
use snowflake_core::{
    Certificate, ChainMemo, Delegation, HashAlg, HashVal, Principal, Proof, Tag, Time, Validity,
    VerifyCtx,
};
use snowflake_crypto::KeyPair;
use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::net::TcpListener;
use std::sync::Arc;

/// A route target.
pub trait Handler: Send + Sync {
    /// Produces a response for a request.
    fn handle(&self, req: &HttpRequest) -> HttpResponse;
}

impl<F> Handler for F
where
    F: Fn(&HttpRequest) -> HttpResponse + Send + Sync,
{
    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        self(req)
    }
}

/// A small routing HTTP server (the "framework" tier of the Figure 7
/// baselines; the minimal tier is in `snowflake-bench`).
pub struct HttpServer {
    routes: Mutex<Vec<(String, Arc<dyn Handler>)>>,
    /// Audit emitter for accept-path decisions (sheds); servlet-level
    /// grant/deny decisions are emitted by the servlets themselves.
    audit: EmitterSlot,
    /// Timestamps shed audit events (injected in tests, like every other
    /// decision point's clock).
    clock: fn() -> Time,
    /// The surface name this server sheds, audits, and measures under
    /// (`"http"` for application servers; the `/metrics` exporter runs a
    /// dedicated server under `"metrics"`).
    surface: &'static str,
    /// Request latency, recorded around every routed dispatch into the
    /// process-global `sf_request_duration_seconds{surface=...}` family.
    latency: Arc<snowflake_metrics::LatencyHistogram>,
}

impl Default for HttpServer {
    fn default() -> HttpServer {
        HttpServer {
            routes: Mutex::new(Vec::new()),
            audit: EmitterSlot::new(),
            clock: Time::now,
            surface: "http",
            latency: snowflake_metrics::request_histogram("http"),
        }
    }
}

impl HttpServer {
    /// Creates an empty server.
    pub fn new() -> Arc<HttpServer> {
        Arc::new(HttpServer::default())
    }

    /// Creates an empty server with an injected clock for its audit
    /// events (tests and benches).
    pub fn with_clock(clock: fn() -> Time) -> Arc<HttpServer> {
        Arc::new(HttpServer {
            clock,
            ..HttpServer::default()
        })
    }

    /// Creates an empty server shedding, auditing, and measuring under a
    /// dedicated surface name instead of `"http"` (the `/metrics`
    /// exporter rides the reactor under `"metrics"` this way).
    pub fn with_surface(surface: &'static str, clock: fn() -> Time) -> Arc<HttpServer> {
        Arc::new(HttpServer {
            clock,
            surface,
            latency: snowflake_metrics::request_histogram(surface),
            ..HttpServer::default()
        })
    }

    /// Attaches an audit emitter; accept-loop sheds are recorded through
    /// it (`surface: http`, `decision: shed`).
    pub fn set_audit_emitter(&self, emitter: Arc<dyn AuditEmitter>) {
        self.audit.set(emitter);
    }

    fn audit_shed(&self, detail: &str) {
        self.audit.emit_with(|| {
            DecisionEvent::new(
                (self.clock)(),
                self.surface,
                Decision::Shed,
                "tcp-accept",
                "connect",
                detail,
            )
        });
    }

    /// Mounts a handler at a path prefix (longest prefix wins).
    pub fn route(&self, prefix: &str, handler: Arc<dyn Handler>) {
        let mut routes = self.routes.plock();
        routes.push((prefix.to_string(), handler));
        routes.sort_by(|a, b| b.0.len().cmp(&a.0.len()));
    }

    /// Is a handler already mounted at exactly this prefix?
    pub fn has_route(&self, prefix: &str) -> bool {
        self.routes.plock().iter().any(|(p, _)| p == prefix)
    }

    /// Produces the response for one request (no I/O).
    pub fn respond(&self, req: &HttpRequest) -> HttpResponse {
        let start = std::time::Instant::now();
        // Resolve the handler and release the routes lock before dispatch:
        // handlers may be slow (gateway RMI round-trips) or panic, and
        // neither should stall or poison routing for other connections.
        let handler = {
            let routes = self.routes.plock();
            routes
                .iter()
                .find(|(prefix, _)| req.path.starts_with(prefix.as_str()))
                .map(|(_, h)| Arc::clone(h))
        };
        let resp = match handler {
            Some(h) => h.handle(req),
            None => HttpResponse::not_found(),
        };
        self.latency.record(start.elapsed());
        resp
    }

    /// Serves one connection (possibly multiple keep-alive requests).
    pub fn serve_stream<S: Read + Write>(&self, stream: &mut S) -> std::io::Result<()> {
        loop {
            let req = {
                let mut reader = BufReader::new(&mut *stream);
                match HttpRequest::read_from(&mut reader)? {
                    Some(r) => r,
                    None => return Ok(()),
                }
            };
            let keep = req.keep_alive();
            let mut resp = self.respond(&req);
            if keep {
                resp.set_header("Connection", "keep-alive");
            }
            resp.write_to(stream)?;
            if !keep {
                return Ok(());
            }
        }
    }

    /// Idle disconnect for reactor-parked TCP connections: a client that
    /// opens a connection and sends nothing (or parks a keep-alive
    /// session forever) is reaped by the reactor's timer wheel after
    /// this long without completing a request.
    pub const TCP_IDLE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

    /// The 503 a shed connection hears before the server hangs up.
    fn overloaded_response(detail: &str) -> HttpResponse {
        let mut resp = HttpResponse::status(503, "Service Unavailable", detail);
        resp.set_header("Retry-After", "1");
        resp.set_header("Connection", "close");
        resp
    }

    fn response_bytes(resp: &HttpResponse) -> Vec<u8> {
        let mut bytes = Vec::new();
        resp.write_to(&mut bytes).expect("serialize to Vec");
        bytes
    }

    /// Registers the listener on the runtime's connection reactor and
    /// returns without blocking.  The reactor owns the listener and
    /// every connection from here on:
    ///
    /// * keep-alive connections **park in the reactor** between
    ///   requests — they hold no worker, just their buffers;
    /// * a complete request frame is handed to the bounded pool via
    ///   `try_permit`; saturation sheds that one request with a `503`
    ///   (counted in the pool's drop counter and audited), the
    ///   connection closes after the reply;
    /// * reactor-level refusals (parked-connection cap, accepts during
    ///   drain) are answered with a `503`, audited, and counted in the
    ///   runtime's [shed ledger](snowflake_runtime::ShedLedger);
    /// * connections idle past the reactor's configured timeout are
    ///   reaped by its timer wheel;
    /// * shutdown drains: parked connections close, in-flight requests
    ///   complete and flush, then the listener closes.
    pub fn attach_to_reactor(
        self: &Arc<Self>,
        listener: TcpListener,
        runtime: &Arc<snowflake_runtime::ServerRuntime>,
    ) -> std::io::Result<snowflake_runtime::ListenerHandle> {
        let audit = Arc::clone(self);
        let surface = snowflake_runtime::Surface::new(self.surface)
            .with_on_shed(move |detail| audit.audit_shed(detail))
            .with_shed_reply(|detail| {
                let detail = if detail == "worker pool saturated" {
                    "server busy"
                } else {
                    detail
                };
                Self::response_bytes(&Self::overloaded_response(detail))
            });
        let server = Arc::clone(self);
        runtime.reactor().register_listener(
            listener,
            surface,
            Box::new(move || {
                snowflake_runtime::Accepted::Park(Box::new(HttpConnDriver {
                    server: Arc::clone(&server),
                }))
            }),
        )
    }

    /// Serves HTTP on `listener` via the runtime's connection reactor,
    /// blocking until the runtime shuts down and the reactor closes the
    /// listener — the production accept path.  See
    /// [`attach_to_reactor`](Self::attach_to_reactor) for the admission
    /// and drain semantics.
    pub fn serve_tcp(
        self: &Arc<Self>,
        listener: TcpListener,
        runtime: &Arc<snowflake_runtime::ServerRuntime>,
    ) -> std::io::Result<()> {
        let handle = self.attach_to_reactor(listener, runtime)?;
        handle.wait();
        Ok(())
    }
}

/// Scans buffered bytes for one complete HTTP/1.0 request frame:
/// header section terminated by `\r\n\r\n`, plus `Content-Length` body
/// bytes.  Enforces the same size caps as the blocking parser so a
/// hostile client cannot balloon the reactor's buffers.
fn scan_http_frame(buf: &[u8]) -> snowflake_runtime::FrameScan {
    use snowflake_runtime::FrameScan;
    let header_end = buf.windows(4).position(|w| w == b"\r\n\r\n");
    let Some(pos) = header_end else {
        return if buf.len() > crate::message::MAX_HEADER_BYTES {
            FrameScan::Invalid("header section too large")
        } else {
            FrameScan::Partial
        };
    };
    if pos > crate::message::MAX_HEADER_BYTES {
        return FrameScan::Invalid("header section too large");
    }
    let mut content_length: usize = 0;
    for line in buf[..pos].split(|&b| b == b'\n') {
        let Some(colon) = line.iter().position(|&b| b == b':') else {
            continue;
        };
        let name = &line[..colon];
        if name.eq_ignore_ascii_case(b"content-length") {
            let value = String::from_utf8_lossy(&line[colon + 1..]);
            match value.trim().parse() {
                Ok(n) => content_length = n,
                Err(_) => return FrameScan::Invalid("malformed Content-Length"),
            }
        }
    }
    if content_length > crate::message::MAX_BODY_BYTES {
        return FrameScan::Invalid("body too large");
    }
    let total = pos + 4 + content_length;
    if buf.len() >= total {
        FrameScan::Complete(total)
    } else {
        FrameScan::Partial
    }
}

/// The per-connection HTTP state machine the reactor parks: frames are
/// scanned on the reactor thread, parsed and answered on a pool worker.
struct HttpConnDriver {
    server: Arc<HttpServer>,
}

impl snowflake_runtime::ConnDriver for HttpConnDriver {
    fn scan(&mut self, buf: &[u8]) -> snowflake_runtime::FrameScan {
        scan_http_frame(buf)
    }

    fn handle(&mut self, frame: Vec<u8>) -> snowflake_runtime::ReadyOutcome {
        use snowflake_runtime::ReadyOutcome;
        let mut reader = &frame[..];
        let req = match HttpRequest::read_from(&mut reader) {
            Ok(Some(req)) => req,
            // The scanner only hands over complete frames, so a parse
            // failure is a malformed request, not a short read.
            Ok(None) | Err(_) => return ReadyOutcome::Close,
        };
        let keep = req.keep_alive();
        let mut resp = self.server.respond(&req);
        if keep {
            resp.set_header("Connection", "keep-alive");
            ReadyOutcome::Reply(HttpServer::response_bytes(&resp))
        } else {
            ReadyOutcome::ReplyClose(HttpServer::response_bytes(&resp))
        }
    }

    fn busy_reply(&mut self) -> Option<Vec<u8>> {
        Some(HttpServer::response_bytes(&HttpServer::overloaded_response(
            "server busy",
        )))
    }
}

/// A concrete Snowflake-protected service: issuer and restriction mapping
/// plus the implementation.
pub trait SnowflakeService: Send + Sync {
    /// The single principal that controls the requested resource.
    fn issuer(&self, req: &HttpRequest) -> Principal;

    /// The minimum restriction set required to authorize the request.
    fn min_tag(&self, req: &HttpRequest) -> Tag;

    /// The service implementation; `speaker` is the authorized principal
    /// (a `Message` hash for signed requests, a `Mac` for MAC sessions).
    fn serve(&self, req: &HttpRequest, speaker: &Principal) -> HttpResponse;
}

/// Upper bound (seconds) on a MAC session's lifetime at establishment.
const MAX_MAC_SESSION_LIFE: u64 = 3_600;

/// One verified identical-request entry: who spoke, until when the cached
/// conclusion holds, and which certificates the verified proof depended on
/// (so a revocation push can evict exactly the dependent entries).
struct VerifiedEntry {
    speaker: Principal,
    expiry: Time,
    certs: Arc<[HashVal]>,
}

/// The identical-request cache with an amortized expiry sweep: every entry
/// carries an expiry, so reclaiming lazily when the map doubles past its
/// last swept size keeps a long-running server from leaking one entry per
/// distinct request (the same leak class the MAC store sweeps for).
#[derive(Default)]
struct VerifiedCache {
    entries: HashMap<HashVal, VerifiedEntry>,
    sweep_at: usize,
}

impl VerifiedCache {
    fn insert(&mut self, hash: HashVal, entry: VerifiedEntry, now: Time) {
        self.entries.insert(hash, entry);
        if self.entries.len() >= self.sweep_at.max(64) {
            self.entries.retain(|_, e| e.expiry >= now);
            self.sweep_at = self.entries.len() * 2;
        }
    }
}

/// Counters exposed for the Table 1 cost breakdown.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServletStats {
    /// Requests answered via the identical-request cache.
    pub ident_hits: u64,
    /// Requests authorized by fresh proof verification.
    pub proof_verifications: u64,
    /// Requests authorized via MAC sessions.
    pub mac_hits: u64,
    /// Challenges issued.
    pub challenges: u64,
}

/// The abstract protected servlet: wraps a [`SnowflakeService`] with the
/// Snowflake Authorization protocol, MAC sessions, and the
/// identical-request cache.
pub struct ProtectedServlet<S: SnowflakeService> {
    service: S,
    hash_alg: HashAlg,
    /// Shared so several servlets (one per mounted app) can pool one
    /// sharded store: a MAC session established against any of them then
    /// authorizes requests wherever its grant's tag reaches.
    macs: Arc<MacSessionStore>,
    /// Verified identical requests: request hash → (speaker, expiry).
    verified: Mutex<VerifiedCache>,
    /// Bumped by `invalidate_cert` while holding the `verified` lock;
    /// `authorize_signed` re-reads it under the same lock before caching a
    /// verification, so a revocation push landing mid-verification cannot
    /// be resurrected by the subsequent cache insert.
    cache_epoch: std::sync::atomic::AtomicU64,
    stats: Mutex<ServletStats>,
    base_ctx: Mutex<VerifyCtx>,
    clock: fn() -> Time,
    rng: Mutex<Box<dyn FnMut(&mut [u8]) + Send>>,
    /// Audit emitter; every grant and deny this servlet decides goes
    /// through it (surfaces `http` and `http-mac`).
    audit: EmitterSlot,
    /// Request latency across both the MAC fast path and the
    /// signed-request path (`sf_request_duration_seconds{surface="servlet"}`).
    latency: Arc<snowflake_metrics::LatencyHistogram>,
}

impl<S: SnowflakeService> ProtectedServlet<S> {
    /// Wraps a service with wall-clock time and OS entropy.
    pub fn new(service: S) -> Arc<ProtectedServlet<S>> {
        Self::with_clock(service, Time::now, Box::new(snowflake_crypto::rand_bytes))
    }

    /// Wraps a service with injected clock and entropy (tests/benches).
    pub fn with_clock(
        service: S,
        clock: fn() -> Time,
        rng: Box<dyn FnMut(&mut [u8]) + Send>,
    ) -> Arc<ProtectedServlet<S>> {
        Self::with_store(service, clock, rng, Arc::new(MacSessionStore::new()))
    }

    /// Wraps a service around an existing (possibly shared) MAC session
    /// store.
    pub fn with_store(
        service: S,
        clock: fn() -> Time,
        rng: Box<dyn FnMut(&mut [u8]) + Send>,
        macs: Arc<MacSessionStore>,
    ) -> Arc<ProtectedServlet<S>> {
        Arc::new(ProtectedServlet {
            service,
            hash_alg: HashAlg::Sha256,
            macs,
            verified: Mutex::new(VerifiedCache::default()),
            cache_epoch: std::sync::atomic::AtomicU64::new(0),
            stats: Mutex::new(ServletStats::default()),
            // Every servlet verifies through a verified-chain memo by
            // default: re-presented proof chains (streams of distinct
            // requests under one delegation) skip the exponentiations.
            base_ctx: Mutex::new(
                VerifyCtx::at(clock()).with_chain_memo(Arc::new(ChainMemo::new(1024))),
            ),
            clock,
            rng: Mutex::new(rng),
            audit: EmitterSlot::new(),
            latency: snowflake_metrics::request_histogram("servlet"),
        })
    }

    /// Attaches an audit emitter recording this servlet's decisions.
    pub fn set_audit_emitter(&self, emitter: Arc<dyn AuditEmitter>) {
        self.audit.set(emitter);
    }

    /// Emits an audit event, building it only when an emitter is attached
    /// (the build closure may clone principals and provenance).
    fn audit(&self, build: impl FnOnce() -> DecisionEvent) {
        self.audit.emit_with(build);
    }

    /// The revocation epoch this servlet currently decides against.
    fn revocation_epoch(&self) -> u64 {
        self.base_ctx.plock().revocation_epoch()
    }

    /// The servlet's MAC session store (shared with other servlets when
    /// constructed via [`ProtectedServlet::with_store`]).
    pub fn mac_store(&self) -> &Arc<MacSessionStore> {
        &self.macs
    }

    /// Access to the shared verification context (e.g. to install CRLs).
    pub fn base_ctx(&self) -> std::sync::MutexGuard<'_, VerifyCtx> {
        self.base_ctx.plock()
    }

    /// Attaches a pluggable revocation source (e.g. a freshness agent) to
    /// every verification this servlet performs.  Sources answer from their
    /// own cache, so the request hot path never blocks on a fetch.
    pub fn set_revocation_source(&self, source: Arc<dyn snowflake_core::RevocationSource>) {
        self.base_ctx.plock().set_revocation_source(source);
    }

    /// Evicts every warm-cache entry that depended on the certificate with
    /// this hash — verified identical-request entries *and* MAC sessions in
    /// this servlet's (possibly shared) store — returning how many were
    /// dropped.  This is the servlet's arm of revocation push: after a
    /// revocation lands, no cached state keeps honoring the dead
    /// delegation, and no full-cache flush is needed.
    pub fn invalidate_cert(&self, cert_hash: &HashVal) -> usize {
        let mut dropped = 0;
        {
            let mut verified = self.verified.plock();
            // Bumped under the lock: an in-flight verification that read
            // the old epoch will re-check under this lock and skip caching.
            self.cache_epoch
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            let before = verified.entries.len();
            verified.entries.retain(|_, e| !e.certs.contains(cert_hash));
            dropped += before - verified.entries.len();
        }
        if let Some(memo) = self.base_ctx.plock().chain_memo() {
            dropped += memo.evict_cert(cert_hash);
        }
        dropped + self.macs.evict_by_cert(cert_hash)
    }

    /// The verified-chain memo every verification of this servlet consults
    /// (exposed for counters and shared wiring).
    pub fn chain_memo(&self) -> Option<Arc<ChainMemo>> {
        self.base_ctx.plock().chain_memo().cloned()
    }

    /// Current statistics.
    pub fn stats(&self) -> ServletStats {
        *self.stats.plock()
    }

    /// The verified-chain memo's counters — the operator-facing snapshot
    /// of this surface's memo hit ratio (zeroes if the memo was detached).
    pub fn memo_stats(&self) -> snowflake_core::MemoStats {
        self.chain_memo().map(|m| m.stats()).unwrap_or_default()
    }

    /// Registers scrape-time callbacks exposing [`ServletStats`] under
    /// `sf_servlet_*` (collector id `"servlet"`) plus the servlet's
    /// verified-chain memo under
    /// `sf_chain_memo_*{surface="servlet"}` — the same counters
    /// [`stats`](Self::stats) and [`memo_stats`](Self::memo_stats) read.
    pub fn register_metrics(self: &Arc<Self>, registry: &snowflake_metrics::Registry)
    where
        S: 'static,
    {
        use snowflake_metrics::Sample;
        registry.set_help(
            "sf_servlet_mac_hits_total",
            "Requests authorized via the cheap MAC fast path",
        );
        let servlet = Arc::downgrade(self);
        registry.register_collector(
            "servlet",
            Arc::new(move |out: &mut Vec<Sample>| {
                let Some(servlet) = servlet.upgrade() else { return };
                let s = servlet.stats();
                out.push(Sample::counter("sf_servlet_ident_hits_total", &[], s.ident_hits));
                out.push(Sample::counter(
                    "sf_servlet_proof_verifications_total",
                    &[],
                    s.proof_verifications,
                ));
                out.push(Sample::counter("sf_servlet_mac_hits_total", &[], s.mac_hits));
                out.push(Sample::counter("sf_servlet_challenges_total", &[], s.challenges));
            }),
        );
        if let Some(memo) = self.chain_memo() {
            memo.register_metrics(registry, "servlet");
        }
    }

    /// Clears the identical-request cache (benchmarks use this to force the
    /// full verification path).
    pub fn forget_verified(&self) {
        self.verified.plock().entries.clear();
    }

    /// The inner service.
    pub fn service(&self) -> &S {
        &self.service
    }

    fn authorize_signed(&self, req: &HttpRequest) -> Result<Principal, HttpResponse> {
        let issuer = self.service.issuer(req);
        let request_tag = self.service.min_tag(req);
        let now = (self.clock)();

        // Identical-request fast path *before* any proof parsing: an
        // already-verified request hash authorizes by lookup alone (the
        // cheapest bar of Figure 8's client-authorization group).
        //
        // Note the protocol's inherent replay property, shared with the
        // paper's design: the proven subject is *the message itself*, so a
        // byte-identical retransmission (by anyone) elicits the same
        // response while the cached conclusion is valid.  Confidential or
        // non-idempotent services should fold a client nonce or channel
        // binding into the request so distinct transactions hash apart.
        let default_hash = auth::request_hash(req, self.hash_alg);
        let ident_hit = {
            let verified = self.verified.plock();
            verified.entries.get(&default_hash).and_then(|entry| {
                (entry.expiry >= now).then(|| (entry.speaker.clone(), Arc::clone(&entry.certs)))
            })
        };
        if let Some((speaker, certs)) = ident_hit {
            self.stats.plock().ident_hits += 1;
            self.audit(|| {
                DecisionEvent::new(
                    now,
                    "http",
                    Decision::Grant,
                    &req.path,
                    &req.method,
                    "identical-request-cache",
                )
                .with_subject(speaker.clone())
                .with_certs(certs.to_vec())
                .with_epoch(self.revocation_epoch())
            });
            return Ok(speaker);
        }

        let Some(proof) = auth::extract_proof(req) else {
            self.stats.plock().challenges += 1;
            self.audit(|| {
                DecisionEvent::new(
                    now,
                    "http",
                    Decision::Deny,
                    &req.path,
                    &req.method,
                    "challenge: no proof presented",
                )
                .with_epoch(self.revocation_epoch())
            });
            return Err(auth::challenge(&issuer, &request_tag));
        };

        // The proof's subject tells us which hash algorithm the client used
        // (Figure 5 shows md5-flavored deployments).
        let alg = match proof.conclusion().subject {
            Principal::Message(ref h) => h.alg,
            _ => self.hash_alg,
        };
        let speaker = auth::request_principal(req, alg);

        // Re-check the cache under the proof's algorithm when it differs.
        let hash = if alg == self.hash_alg {
            default_hash
        } else {
            let h = auth::request_hash(req, alg);
            let hit = {
                let verified = self.verified.plock();
                verified.entries.get(&h).and_then(|entry| {
                    (entry.expiry >= now)
                        .then(|| (entry.speaker.clone(), Arc::clone(&entry.certs)))
                })
            };
            if let Some((speaker, certs)) = hit {
                self.stats.plock().ident_hits += 1;
                self.audit(|| {
                    DecisionEvent::new(
                        now,
                        "http",
                        Decision::Grant,
                        &req.path,
                        &req.method,
                        "identical-request-cache",
                    )
                    .with_subject(speaker.clone())
                    .with_certs(certs.to_vec())
                    .with_epoch(self.revocation_epoch())
                });
                return Ok(speaker);
            }
            h
        };

        let epoch = self.cache_epoch.load(std::sync::atomic::Ordering::SeqCst);
        let mut ctx = self.base_ctx.plock().clone();
        ctx.now = now;
        match ctx.authorize(&proof, &speaker, &issuer, &request_tag) {
            Ok(()) => {
                self.stats.plock().proof_verifications += 1;
                let expiry = match proof.conclusion().validity.not_after {
                    Some(t) => t.min(now.plus(300)),
                    None => now.plus(300),
                };
                {
                    // Skip caching when an invalidation landed while the
                    // proof was being verified: the verdict used
                    // pre-revocation state, and caching it would outlive
                    // the push.  (This request is still served — the same
                    // benign race exists for a request verified an
                    // instant before the revocation.)
                    let mut verified = self.verified.plock();
                    if self.cache_epoch.load(std::sync::atomic::Ordering::SeqCst) == epoch {
                        verified.insert(
                            hash,
                            VerifiedEntry {
                                speaker: speaker.clone(),
                                expiry,
                                certs: proof.cert_hashes().into(),
                            },
                            now,
                        );
                    }
                }
                self.audit(|| {
                    DecisionEvent::new(
                        now,
                        "http",
                        Decision::Grant,
                        &req.path,
                        &req.method,
                        "proof-verified",
                    )
                    .with_subject(speaker.clone())
                    .with_certs(proof.cert_hashes())
                    .with_epoch(ctx.revocation_epoch())
                });
                Ok(speaker)
            }
            Err(e) => {
                self.audit(|| {
                    DecisionEvent::new(
                        now,
                        "http",
                        Decision::Deny,
                        &req.path,
                        &req.method,
                        &format!("authorization failed: {e}"),
                    )
                    .with_subject(speaker.clone())
                    .with_certs(proof.cert_hashes())
                    .with_epoch(ctx.revocation_epoch())
                });
                Err(HttpResponse::forbidden(&format!(
                    "authorization failed: {e}"
                )))
            }
        }
    }

    fn try_mac(&self, req: &HttpRequest) -> Option<Result<Principal, HttpResponse>> {
        // Header-presence check before building the request tag: the vast
        // majority of non-MAC requests must pay nothing here.
        req.header(auth::MAC_ID_HEADER)?;
        let request_tag = self.service.min_tag(req);
        let result =
            auth::authorize_mac(&self.macs, req, &request_tag, self.hash_alg, (self.clock)())?;
        match result {
            Ok((speaker, grant)) => {
                // The grant names the issuer the establishment proof was
                // verified against; with a store shared across services it
                // must match *this* service's issuer, or a session from one
                // service would authorize requests another issuer controls.
                if grant.issuer != self.service.issuer(req) {
                    self.audit(|| {
                        DecisionEvent::new(
                            (self.clock)(),
                            "http-mac",
                            Decision::Deny,
                            &req.path,
                            &req.method,
                            "session speaks for a different issuer",
                        )
                        .with_subject(speaker.clone())
                        .with_epoch(self.revocation_epoch())
                    });
                    return Some(Err(HttpResponse::forbidden(
                        "MAC rejected: session speaks for a different issuer",
                    )));
                }
                self.stats.plock().mac_hits += 1;
                self.audit(|| {
                    DecisionEvent::new(
                        (self.clock)(),
                        "http-mac",
                        Decision::Grant,
                        &req.path,
                        &req.method,
                        "mac-session",
                    )
                    .with_subject(speaker.clone())
                    .with_epoch(self.revocation_epoch())
                });
                Some(Ok(speaker))
            }
            Err(e) => {
                self.audit(|| {
                    DecisionEvent::new(
                        (self.clock)(),
                        "http-mac",
                        Decision::Deny,
                        &req.path,
                        &req.method,
                        &format!("MAC rejected: {e}"),
                    )
                    .with_epoch(self.revocation_epoch())
                });
                Some(Err(HttpResponse::forbidden(&format!("MAC rejected: {e}"))))
            }
        }
    }

    /// Handles a POST to the well-known MAC establishment path.
    ///
    /// The proof is verified against the issuer *it names*, not this
    /// service's: one servlet routes the path for a whole (possibly
    /// multi-issuer) site, the session inherits exactly the authority the
    /// chain demonstrates, and `try_mac`'s per-request issuer check keeps
    /// a session from reaching services its issuer does not control.
    fn authorize_and_establish(&self, req: &HttpRequest) -> HttpResponse {
        let Some(proof) = auth::extract_proof(req) else {
            self.stats.plock().challenges += 1;
            self.audit(|| {
                DecisionEvent::new(
                    (self.clock)(),
                    "http-mac",
                    Decision::Deny,
                    &req.path,
                    "ESTABLISH",
                    "challenge: no establishment proof",
                )
                .with_epoch(self.revocation_epoch())
            });
            // Challenge with this service's issuer as a hint; the proof may
            // target any issuer the client can build a chain to.
            let resp = auth::challenge(&self.service.issuer(req), &self.service.min_tag(req));
            return resp;
        };
        let conclusion = proof.conclusion();
        // The proof's subject names the hash algorithm the client used.
        let alg = match conclusion.subject {
            Principal::Message(ref h) => h.alg,
            _ => self.hash_alg,
        };
        let speaker = auth::request_principal(req, alg);
        let now = (self.clock)();
        // Establishment is open to any provable chain, so sessions must be
        // bounded or strangers could grow the store with never-expiring
        // entries the sweeps cannot reclaim.  Real clients sign
        // establishment hops with short windows (the proxy uses 300 s).
        match conclusion.validity.not_after {
            Some(t) if t <= now.plus(MAX_MAC_SESSION_LIFE) => {}
            _ => {
                self.audit(|| {
                    DecisionEvent::new(
                        now,
                        "http-mac",
                        Decision::Deny,
                        &req.path,
                        "ESTABLISH",
                        "unbounded establishment validity",
                    )
                    .with_subject(speaker.clone())
                    .with_epoch(self.revocation_epoch())
                });
                return HttpResponse::forbidden(&format!(
                    "MAC establishment requires a validity bounded to {MAX_MAC_SESSION_LIFE} s"
                ));
            }
        }
        // Read the store's invalidation epoch before verifying: a
        // revocation push racing this establishment then refuses the
        // session instead of minting one from a superseded verdict.
        let store_epoch = self.macs.invalidation_epoch();
        let mut ctx = self.base_ctx.plock().clone();
        ctx.now = now;
        match ctx.authorize(&proof, &speaker, &conclusion.issuer, &conclusion.tag) {
            Ok(()) => {
                self.stats.plock().proof_verifications += 1;
                let certs = proof.cert_hashes();
                let established = {
                    let mut rng = self.rng.plock();
                    self.macs.establish_at_epoch(
                        &req.body,
                        conclusion,
                        proof,
                        now,
                        &mut **rng,
                        store_epoch,
                    )
                };
                match established {
                    Ok(reply) => {
                        self.audit(|| {
                            DecisionEvent::new(
                                now,
                                "http-mac",
                                Decision::Grant,
                                &req.path,
                                "ESTABLISH",
                                "session established",
                            )
                            .with_subject(speaker.clone())
                            .with_certs(certs.clone())
                            .with_epoch(ctx.revocation_epoch())
                        });
                        HttpResponse::ok("application/sexp", reply)
                    }
                    Err(e) => {
                        self.audit(|| {
                            DecisionEvent::new(
                                now,
                                "http-mac",
                                Decision::Deny,
                                &req.path,
                                "ESTABLISH",
                                &e,
                            )
                            .with_subject(speaker.clone())
                            .with_certs(certs.clone())
                            .with_epoch(ctx.revocation_epoch())
                        });
                        HttpResponse::forbidden(&e)
                    }
                }
            }
            Err(e) => {
                self.audit(|| {
                    DecisionEvent::new(
                        now,
                        "http-mac",
                        Decision::Deny,
                        &req.path,
                        "ESTABLISH",
                        &format!("authorization failed: {e}"),
                    )
                    .with_subject(speaker.clone())
                    .with_epoch(ctx.revocation_epoch())
                });
                HttpResponse::forbidden(&format!("authorization failed: {e}"))
            }
        }
    }
}

impl<S: SnowflakeService> Handler for ProtectedServlet<S> {
    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        let _timer = self.latency.start_timer();
        // MAC-authenticated fast path.
        if let Some(result) = self.try_mac(req) {
            return match result {
                Ok(speaker) => self.service.serve(req, &speaker),
                Err(resp) => resp,
            };
        }
        // MAC establishment is issuer-agnostic (see
        // `authorize_and_establish`); everything else takes the
        // signed-request path (possibly challenging first).
        if req.path == MAC_SESSION_PATH {
            return self.authorize_and_establish(req);
        }
        match self.authorize_signed(req) {
            Ok(speaker) => self.service.serve(req, &speaker),
            Err(resp) => resp,
        }
    }
}

/// Server document authentication (paper §5.3.3).
///
/// "The server includes with document headers a proof that the hash of the
/// document speaks for the server.  The client completes the proof chain
/// and determines whether the authentication is satisfactory."
pub struct DocumentAuthenticator {
    key: KeyPair,
    cache: Mutex<HashMap<HashVal, String>>,
    rng: Mutex<Box<dyn FnMut(&mut [u8]) + Send>>,
}

/// The response header carrying the document proof.
pub const DOCUMENT_PROOF_HEADER: &str = "Sf-Document-Proof";

impl DocumentAuthenticator {
    /// Creates an authenticator signing with `key`.
    pub fn new(key: KeyPair, rng: Box<dyn FnMut(&mut [u8]) + Send>) -> DocumentAuthenticator {
        DocumentAuthenticator {
            key,
            cache: Mutex::new(HashMap::new()),
            rng: Mutex::new(rng),
        }
    }

    /// The issuer principal documents are proven to speak for.
    pub fn issuer(&self) -> Principal {
        Principal::key(&self.key.public)
    }

    /// Attaches `Sf-Document-Proof` to a response, signing fresh or reusing
    /// the per-document cache ("cache" vs "sign" in Figure 8).
    pub fn attach(&self, resp: &mut HttpResponse, use_cache: bool) {
        let doc_hash = HashVal::of(&resp.body);
        if use_cache {
            if let Some(header) = self.cache.plock().get(&doc_hash) {
                resp.set_header(DOCUMENT_PROOF_HEADER, header);
                return;
            }
        }
        let delegation = Delegation {
            subject: Principal::Message(doc_hash.clone()),
            issuer: self.issuer(),
            tag: Tag::Star,
            validity: Validity::always(),
            delegable: false,
        };
        let cert = {
            let mut rng = self.rng.plock();
            Certificate::issue(&self.key, delegation, &mut **rng)
        };
        let header = Proof::signed_cert(cert).to_sexp().transport();
        self.cache.plock().insert(doc_hash, header.clone());
        resp.set_header(DOCUMENT_PROOF_HEADER, &header);
    }

    /// Drops the per-document proof cache.
    pub fn clear_cache(&self) {
        self.cache.plock().clear();
    }
}

/// Client-side verification of a document proof: checks that the response
/// body's hash speaks for `expected_issuer`.
pub fn verify_document(
    resp: &HttpResponse,
    expected_issuer: &Principal,
    ctx: &VerifyCtx,
) -> Result<(), String> {
    let header = resp
        .header(DOCUMENT_PROOF_HEADER)
        .ok_or("response carries no document proof")?;
    let sexp = snowflake_sexpr::Sexp::parse(header.as_bytes())
        .map_err(|e| format!("bad document proof: {e}"))?;
    let proof = Proof::from_sexp(&sexp).map_err(|e| format!("bad document proof: {e}"))?;
    let doc_principal = Principal::Message(HashVal::of(&resp.body));
    ctx.authorize(&proof, &doc_principal, expected_issuer, &Tag::Star)
        .map_err(|e| format!("document proof rejected: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowflake_crypto::{DetRng, Group};

    #[test]
    fn routing_longest_prefix() {
        let server = HttpServer::new();
        server.route(
            "/",
            Arc::new(|_req: &HttpRequest| HttpResponse::ok("t", b"root".to_vec())),
        );
        server.route(
            "/api",
            Arc::new(|_req: &HttpRequest| HttpResponse::ok("t", b"api".to_vec())),
        );
        assert_eq!(server.respond(&HttpRequest::get("/api/x")).body, b"api");
        assert_eq!(server.respond(&HttpRequest::get("/other")).body, b"root");
    }

    #[test]
    fn empty_server_404s() {
        let server = HttpServer::new();
        assert_eq!(server.respond(&HttpRequest::get("/x")).status, 404);
    }

    #[test]
    fn document_authentication_roundtrip() {
        let mut krng = DetRng::new(b"dockey");
        let key = KeyPair::generate(Group::test512(), &mut |b| krng.fill(b));
        let mut arng = DetRng::new(b"docsign");
        let auth = DocumentAuthenticator::new(key, Box::new(move |b| arng.fill(b)));
        let issuer = auth.issuer();

        let mut resp = HttpResponse::ok("text/html", b"<p>authentic</p>".to_vec());
        auth.attach(&mut resp, false);
        let ctx = VerifyCtx::at(Time(0));
        verify_document(&resp, &issuer, &ctx).unwrap();

        // Cached path produces the identical header.
        let header1 = resp.header(DOCUMENT_PROOF_HEADER).unwrap().to_string();
        let mut resp2 = HttpResponse::ok("text/html", b"<p>authentic</p>".to_vec());
        auth.attach(&mut resp2, true);
        assert_eq!(resp2.header(DOCUMENT_PROOF_HEADER), Some(header1.as_str()));

        // A tampered body fails verification.
        let mut tampered = resp.clone();
        tampered.body = b"<p>forged</p>".to_vec();
        assert!(verify_document(&tampered, &issuer, &ctx).is_err());

        // The wrong expected issuer fails.
        let other = Principal::message(b"other issuer");
        assert!(verify_document(&resp, &other, &ctx).is_err());
    }
}
