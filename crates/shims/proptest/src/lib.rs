//! In-tree, dependency-free shim for the [`proptest`] crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the *subset* of proptest's API its tests actually use:
//! [`Strategy`] with `prop_map`/`prop_recursive`/`boxed`, [`BoxedStrategy`],
//! `any::<T>()` for primitives, range and tuple strategies, a miniature
//! regex string strategy (character classes + `{m,n}` repetition),
//! [`collection::vec`], [`Just`], and the `proptest!`, `prop_oneof!`,
//! `prop_assert*!`, and `prop_assume!` macros.
//!
//! Generation is deterministic: each test function derives its RNG seed from
//! its own name, so failures reproduce across runs. The shim shrinks
//! nothing — a failing case reports its case number and message only.
//!
//! [`proptest`]: https://docs.rs/proptest

use std::marker::PhantomData;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator used for all value generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values of type [`Strategy::Value`].
///
/// Mirrors proptest's trait of the same name, minus shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: `branch` receives the strategy for the next
    /// level down and returns the strategy for composite values. `depth`
    /// bounds the recursion; the size-tuning parameters accepted by the
    /// real proptest are ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let b = branch(cur).boxed();
            let l = leaf.clone();
            cur = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                // Lean toward composites so deep shapes actually occur;
                // leaves still appear at every level.
                if rng.below(3) == 0 {
                    l.generate(rng)
                } else {
                    b.generate(rng)
                }
            }));
        }
        cur
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union over type-erased arms; backs the `prop_oneof!` macro.
pub fn union<T: 'static>(arms: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
    BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
        let mut pick = rng.below(total.max(1));
        for (w, s) in &arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        arms[0].1.generate(rng)
    }))
}

// ---------------------------------------------------------------------------
// Primitive strategies: any::<T>(), ranges, tuples, strings
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + rng.below(0x5f) as u8) as char
    }
}

/// Strategy for "any value of `T`"; see [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

/// The canonical strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo + r as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo + r as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:ident . $i:tt),+)),+ $(,)?) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

// --- miniature regex string strategy ---------------------------------------

enum RegexPiece {
    /// One element (literal or class) with a repetition count range.
    Rep { chars: Vec<char>, min: usize, max: usize },
}

fn parse_class(pat: &[char], mut i: usize) -> (Vec<char>, usize) {
    // `i` points just past '['.
    let mut set = Vec::new();
    while i < pat.len() && pat[i] != ']' {
        if i + 2 < pat.len() && pat[i + 1] == '-' && pat[i + 2] != ']' {
            let (lo, hi) = (pat[i], pat[i + 2]);
            assert!(lo <= hi, "bad class range in regex strategy");
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(pat[i]);
            i += 1;
        }
    }
    assert!(i < pat.len(), "unterminated [class] in regex strategy");
    (set, i + 1) // skip ']'
}

fn parse_repeat(pat: &[char], mut i: usize) -> (usize, usize, usize) {
    // `i` points at the char after an element; parses `{n}` / `{m,n}` if present.
    if i < pat.len() && pat[i] == '{' {
        i += 1;
        let mut first = String::new();
        while i < pat.len() && pat[i].is_ascii_digit() {
            first.push(pat[i]);
            i += 1;
        }
        let m: usize = first.parse().expect("bad {m,n} in regex strategy");
        let n = if i < pat.len() && pat[i] == ',' {
            i += 1;
            let mut second = String::new();
            while i < pat.len() && pat[i].is_ascii_digit() {
                second.push(pat[i]);
                i += 1;
            }
            second.parse().expect("bad {m,n} in regex strategy")
        } else {
            m
        };
        assert!(i < pat.len() && pat[i] == '}', "unterminated {{m,n}}");
        (m, n, i + 1)
    } else {
        (1, 1, i)
    }
}

fn parse_regex(pattern: &str) -> Vec<RegexPiece> {
    let pat: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < pat.len() {
        let (chars, next) = if pat[i] == '[' {
            parse_class(&pat, i + 1)
        } else {
            (vec![pat[i]], i + 1)
        };
        let (min, max, next) = parse_repeat(&pat, next);
        pieces.push(RegexPiece::Rep { chars, min, max });
        i = next;
    }
    pieces
}

/// String literals act as strategies generating matching strings, as in real
/// proptest. Supported subset: literal characters, `[a-zA-Z0-9_-]`-style
/// classes (ranges and literals, `-` literal when trailing), and `{n}` /
/// `{m,n}` repetition.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for RegexPiece::Rep { chars, min, max } in parse_regex(self) {
            assert!(!chars.is_empty(), "empty class in regex strategy");
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(chars[rng.below(chars.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max_exclusive: usize,
    }

    /// Vector of values from `elem` with length in `len` (end-exclusive).
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy {
            elem,
            min: len.start,
            max_exclusive: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.min + rng.below((self.max_exclusive - self.min) as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Why a single generated case did not pass.
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried, not failed.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            while __accepted < __cfg.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        __rejected += 1;
                        if __rejected > 16 * __cfg.cases + 256 {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({})",
                                stringify!($name), __rejected
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), __accepted, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} != {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} == {}\n  both: {:?}",
                stringify!($a), stringify!($b), __a
            )));
        }
    }};
}

/// Rejects the current case (retried with fresh inputs, not counted failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Picks one of several strategies (optionally `weight => strategy` arms).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::union(vec![$((($weight) as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::union(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, union,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::from_name("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
            let t = Strategy::generate(&"/[a-z0-9/]{0,4}", &mut rng);
            assert!(t.starts_with('/') && t.len() <= 5);
            let u = Strategy::generate(&"[A-Za-z][A-Za-z-]{0,10}", &mut rng);
            assert!(u.chars().next().unwrap().is_ascii_alphabetic());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..500 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(0u8..4), &mut rng);
            assert!(w < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn oneof_and_recursion_terminate(n in prop_oneof![Just(0u8), 1u8..10]) {
            prop_assert!(n < 10);
        }

        #[test]
        fn assume_rejects_without_failing(x in any::<u64>()) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
