//! In-tree, dependency-free shim for the [`criterion`] benchmark harness.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the subset of criterion's API the `snowflake-bench`
//! benches use: [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], `sample_size`, [`Bencher::iter`] and
//! [`Bencher::iter_batched`], plus the `criterion_group!`/`criterion_main!`
//! macros. Instead of criterion's statistical engine it reports the *minimum
//! batch mean* over a handful of batches — the same estimator
//! `snowflake_bench::time_it_stable` uses — printed one line per benchmark.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; accepted for API compatibility.
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark (`BenchmarkId::new("cold", 8)`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter into `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), param),
        }
    }
}

/// Drives the measured closure; handed to `bench_function` callbacks.
pub struct Bencher {
    samples: usize,
    result: Option<Duration>,
}

impl Bencher {
    /// Measures `f`, reporting the minimum batch mean.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm up and size the batch so one batch costs ~2 ms.
        black_box(f());
        let probe = Instant::now();
        black_box(f());
        let one = probe.elapsed().max(Duration::from_nanos(1));
        let per_batch = (Duration::from_millis(2).as_nanos() / one.as_nanos()).clamp(1, 10_000) as usize;
        let mut best = Duration::MAX;
        for _ in 0..self.samples.max(2) {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            best = best.min(start.elapsed() / per_batch as u32);
        }
        self.result = Some(best);
    }

    /// Measures `routine` alone, calling `setup` outside the timed region.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut best = Duration::MAX;
        for _ in 0..self.samples.max(2) {
            let mut total = Duration::ZERO;
            let iters = 8usize;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            best = best.min(total / iters as u32);
        }
        self.result = Some(best);
    }
}

fn report(group: &str, id: &str, result: Option<Duration>) {
    match result {
        Some(d) => println!("{group}/{id:<40} {:>12.3?}", d),
        None => println!("{group}/{id:<40} (no measurement)"),
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.clamp(2, 100);
        self
    }

    /// Runs one benchmark under this group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            result: None,
        };
        let mut f = f;
        f(&mut b);
        report(&self.name, &id, b.result);
        self
    }

    /// Runs one parameterized benchmark under this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            result: None,
        };
        f(&mut b, input);
        report(&self.name, &id.name, b.result);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Top-level harness handle passed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 5 }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        self.sample_size = 5;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            result: None,
        };
        let mut f = f;
        f(&mut b);
        report("bench", &id, b.result);
        self
    }
}

/// Bundles benchmark functions under one name for [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
