//! The authz endpoint: path-vector authorization questions over HTTP.
//!
//! Conferencing-style platforms put one question behind everything:
//! *may this subject perform this action on this object?* — where the
//! object is a path vector like `["rooms", ROOM_ID, "rtcs", RTC_ID]`.
//! This module answers that question over the de-facto JSON wire shape:
//!
//! ```json
//! {"subject": {"namespace": "iam.example.org",
//!              "value": ["accounts", "123e4567"]},
//!  "object":  {"namespace": "conference.example.org",
//!              "value": ["rooms", "123e4567", "rtcs", "321e7654"]},
//!  "action":  "read"}
//! ```
//!
//! Translation into the paper's model is mechanical: each object
//! namespace is controlled by one issuer principal (the paper's "single
//! principal that controls the resource, not an ACL"), the object/action
//! pair becomes a [`snowflake_tags::path_vector::request_tag`], and the
//! answer is whatever speaks-for proof the prover can build from the
//! delegations it holds.  Every answer — allow, deny, or a malformed
//! body refused fail-closed — emits a [`DecisionEvent`].

use crate::json::{self, Json};
use snowflake_core::audit::{AuditEmitter, Decision, DecisionEvent, EmitterSlot};
use snowflake_core::{Principal, Time, VerifyCtx};
use snowflake_crypto::HashVal;
use snowflake_http::{Handler, HttpRequest, HttpResponse};
use snowflake_prover::Prover;
use snowflake_sexpr::Sexp;
use snowflake_tags::path_vector::{self, ActionTable};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Longest accepted request body; authz questions are a few hundred
/// bytes, so anything bigger is garbage or an attack.
const MAX_BODY: usize = 64 * 1024;

/// Deepest accepted path vector (matches the exemplar matrix, which
/// tops out at four segments, with headroom).
const MAX_PATH_SEGMENTS: usize = 16;

/// One parsed authz question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthzRequest {
    /// The subject's home namespace (an identity authority).
    pub subject_ns: String,
    /// The subject's path within its namespace (e.g. `["accounts", ID]`).
    pub subject_path: Vec<String>,
    /// The object's namespace (the audience whose issuer controls it).
    pub object_ns: String,
    /// The object's path vector.
    pub object_path: Vec<String>,
    /// The requested action.
    pub action: String,
}

impl AuthzRequest {
    /// Parses the foxford-shape JSON body.  Everything unexpected is an
    /// error — on this endpoint a parse error is a denial, so the parser
    /// must be strict rather than forgiving.
    pub fn from_json(body: &[u8]) -> Result<AuthzRequest, String> {
        if body.len() > MAX_BODY {
            return Err("body too large".into());
        }
        let doc = json::parse(body).map_err(|e| e.to_string())?;
        let entity = |name: &str| -> Result<(String, Vec<String>), String> {
            let obj = doc
                .get(name)
                .ok_or_else(|| format!("missing \"{name}\""))?;
            let ns = obj
                .get("namespace")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("\"{name}.namespace\" must be a string"))?;
            if ns.is_empty() {
                return Err(format!("\"{name}.namespace\" is empty"));
            }
            // `value` is a path vector; a bare string is accepted as the
            // one-segment form (the shape some callers send for accounts).
            let path: Vec<String> = match obj.get("value") {
                Some(Json::Str(s)) => vec![s.clone()],
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| format!("\"{name}.value\" has a non-string segment"))
                    })
                    .collect::<Result<_, _>>()?,
                _ => return Err(format!("\"{name}.value\" must be a string or array")),
            };
            if path.is_empty() {
                return Err(format!("\"{name}.value\" is empty"));
            }
            if path.len() > MAX_PATH_SEGMENTS {
                return Err(format!("\"{name}.value\" is too deep"));
            }
            if path.iter().any(String::is_empty) {
                return Err(format!("\"{name}.value\" has an empty segment"));
            }
            Ok((ns.to_string(), path))
        };
        let (subject_ns, subject_path) = entity("subject")?;
        let (object_ns, object_path) = entity("object")?;
        let action = doc
            .get("action")
            .and_then(Json::as_str)
            .ok_or("\"action\" must be a string")?;
        if action.is_empty() {
            return Err("\"action\" is empty".into());
        }
        Ok(AuthzRequest {
            subject_ns,
            subject_path,
            object_ns,
            object_path,
            action: action.to_string(),
        })
    }

    /// The subject as a principal: the hash of the canonical
    /// `(subject (ns N) (path s…))` form.  Pure and deterministic, so
    /// the delegation issuer and the endpoint agree on the name without
    /// coordination — exactly how message principals name documents.
    pub fn subject_principal(&self) -> Principal {
        subject_principal(&self.subject_ns, &self.subject_path)
    }

    /// The audit-log object string, `ns:/seg/seg/…`.
    pub fn object_string(&self) -> String {
        format!("{}:/{}", self.object_ns, self.object_path.join("/"))
    }
}

/// Names an external-namespace subject as a snowflake principal (see
/// [`AuthzRequest::subject_principal`]).  Grant issuers call this when
/// delegating to a subject they only know by namespace + path.
pub fn subject_principal(namespace: &str, path: &[String]) -> Principal {
    let body = vec![
        Sexp::tagged("ns", vec![Sexp::atom(namespace.as_bytes().to_vec())]),
        Sexp::tagged(
            "path",
            path.iter()
                .map(|s| Sexp::atom(s.as_bytes().to_vec()))
                .collect(),
        ),
    ];
    Principal::message(&Sexp::tagged("subject", body).canonical())
}

/// One object namespace the endpoint answers for: the principal that
/// controls it, and the table of object-shape/action pairs that exist
/// at all (requests outside the table are denied before any proof
/// search runs).
pub struct NamespaceAuthority {
    /// The principal that controls every object in the namespace.
    pub issuer: Principal,
    /// Which actions exist on which object shapes.
    pub table: ActionTable,
}

/// The outcome of one evaluated authz question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthzVerdict {
    /// Was the request authorized?
    pub allowed: bool,
    /// The deny reason, or the grant summary.
    pub detail: String,
    /// The proof's certificate provenance (empty on deny).
    pub cert_hashes: Vec<HashVal>,
}

/// The authz endpoint: an HTTP [`Handler`] mapping foxford-shape JSON
/// questions onto the prover.
pub struct AuthzEndpoint {
    prover: Arc<Prover>,
    namespaces: Mutex<HashMap<String, NamespaceAuthority>>,
    emitter: EmitterSlot,
    clock: fn() -> Time,
    /// Verified-chain memo: the same (subject, issuer, tag) question
    /// typically resolves to the same proof, so re-verification skips the
    /// exponentiations.  Evicted by certificate hash on revocation push.
    memo: Arc<snowflake_core::ChainMemo>,
    /// Question-answering latency
    /// (`sf_request_duration_seconds{surface="authz"}`).
    latency: Arc<snowflake_metrics::LatencyHistogram>,
}

impl AuthzEndpoint {
    /// An endpoint answering from `prover`'s delegation graph, with no
    /// namespaces yet (every question denied until one is added).
    pub fn new(prover: Arc<Prover>) -> Arc<AuthzEndpoint> {
        Self::with_clock(prover, Time::now)
    }

    /// An endpoint with an injected clock (tests, benches).
    pub fn with_clock(prover: Arc<Prover>, clock: fn() -> Time) -> Arc<AuthzEndpoint> {
        Arc::new(AuthzEndpoint {
            prover,
            namespaces: Mutex::new(HashMap::new()),
            emitter: EmitterSlot::new(),
            clock,
            memo: Arc::new(snowflake_core::ChainMemo::new(1024)),
            latency: snowflake_metrics::request_histogram("authz"),
        })
    }

    /// Registers this endpoint's verified-chain memo in a metrics
    /// registry under `sf_chain_memo_*{surface="authz"}`.
    pub fn register_metrics(&self, registry: &snowflake_metrics::Registry) {
        self.memo.register_metrics(registry, "authz");
    }

    /// The endpoint's verified-chain memo (exposed for counters and for
    /// registering it with a revocation bus).
    pub fn chain_memo(&self) -> Arc<snowflake_core::ChainMemo> {
        Arc::clone(&self.memo)
    }

    /// Registers (or replaces) the authority for an object namespace.
    pub fn add_namespace(&self, namespace: &str, authority: NamespaceAuthority) {
        self.namespaces
            .lock()
            .expect("authz namespaces poisoned")
            .insert(namespace.to_string(), authority);
    }

    /// Attaches an audit emitter; every verdict is recorded through it.
    pub fn set_audit_emitter(&self, emitter: Arc<dyn AuditEmitter>) {
        self.emitter.set(emitter);
    }

    fn audit(&self, build: impl FnOnce() -> DecisionEvent) {
        self.emitter.emit_with(build);
    }

    /// Answers one parsed question.  Denials never explain more than the
    /// caller needs; the full reason goes to the audit log.
    pub fn evaluate(&self, req: &AuthzRequest) -> AuthzVerdict {
        let deny = |detail: &str| AuthzVerdict {
            allowed: false,
            detail: detail.to_string(),
            cert_hashes: Vec::new(),
        };
        let namespaces = self.namespaces.lock().expect("authz namespaces poisoned");
        let Some(authority) = namespaces.get(&req.object_ns) else {
            return deny("unknown object namespace");
        };
        let path: Vec<&str> = req.object_path.iter().map(String::as_str).collect();
        // Fail closed on shape: an action that exists nowhere in the
        // table (or an object path with the wrong arity) is denied
        // before any cryptography runs.
        if !authority.table.permits(&path, &req.action) {
            return deny("no such action on this object shape");
        }
        let issuer = authority.issuer.clone();
        drop(namespaces);
        let subject = req.subject_principal();
        let tag = path_vector::request_tag(&req.object_ns, &path, &req.action);
        let now = (self.clock)();
        let Some(proof) = self.prover.find_proof(&subject, &issuer, &tag, now) else {
            return deny("no delegation chain from issuer to subject");
        };
        // The prover's graph may hold edges that have gone stale since
        // insertion; the proof must still verify end-to-end.
        let ctx = VerifyCtx::at(now).with_chain_memo(Arc::clone(&self.memo));
        if let Err(e) = ctx.authorize(&proof, &subject, &issuer, &tag) {
            return deny(&format!("proof failed verification: {e}"));
        }
        AuthzVerdict {
            allowed: true,
            detail: "delegation chain verified".to_string(),
            cert_hashes: proof.cert_hashes(),
        }
    }

    fn answer(&self, req: &HttpRequest) -> HttpResponse {
        if req.method != "POST" {
            return HttpResponse::status(405, "Method Not Allowed", "POST only");
        }
        let parsed = match AuthzRequest::from_json(&req.body) {
            Ok(p) => p,
            Err(reason) => {
                // Malformed body: fail closed, record the refusal.
                self.audit(|| {
                    DecisionEvent::new(
                        (self.clock)(),
                        "authz",
                        Decision::Deny,
                        "malformed-request",
                        "authz",
                        &format!("rejected unparseable body: {reason}"),
                    )
                });
                return HttpResponse::status(
                    400,
                    "Bad Request",
                    &format!("{{\"error\":{}}}", Json::Str(reason)),
                );
            }
        };
        let verdict = self.evaluate(&parsed);
        self.audit(|| {
            DecisionEvent::new(
                (self.clock)(),
                "authz",
                if verdict.allowed {
                    Decision::Grant
                } else {
                    Decision::Deny
                },
                &parsed.object_string(),
                &parsed.action,
                &verdict.detail,
            )
            .with_subject(parsed.subject_principal())
            .with_certs(verdict.cert_hashes.clone())
        });
        let body = if verdict.allowed {
            "{\"result\":\"allow\"}".to_string()
        } else {
            format!("{{\"result\":\"deny\",\"reason\":{}}}", Json::Str(verdict.detail.clone()))
        };
        HttpResponse::ok("application/json", body.into_bytes())
    }
}

impl Handler for AuthzEndpoint {
    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        let _timer = self.latency.start_timer();
        self.answer(req)
    }
}
