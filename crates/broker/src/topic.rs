//! The protected topic broker: `subscribe` as a first-class action.
//!
//! A topic is an object path vector (e.g. `["rooms", ROOM_ID, "events"]`)
//! whose action table grants `subscribe`.  Authorization runs **once**,
//! at subscribe time — the paper's end-to-end argument applied to a
//! stream: the broker sees the whole delegation chain when the stream is
//! established, and every subsequent publish rides that grant.
//!
//! What keeps a one-time check honest is *revalidation by revocation
//! push*: the broker records each grant's certificate provenance
//! ([`snowflake_core::Proof::cert_hashes`]) and implements
//! [`RevocationBus`], so when a certificate dies the broker cuts exactly
//! the streams whose grants rested on it — mid-stream, by closing the
//! reactor sink so the remote sees EOF, with no polling and no effect on
//! other subscribers.
//!
//! Subscribers park **write-only** on the reactor ([`SinkHandle`]): ten
//! thousand idle streams cost ten thousand parked fds, not ten thousand
//! threads.  Publishes fan out on the worker pool; a saturated pool
//! sheds the publish (counted, audited) rather than queueing unboundedly,
//! and a subscriber that stalls past the sink buffer cap is disconnected
//! by the reactor and dropped here.

use snowflake_channel::{TcpTransport, Transport};
use snowflake_core::audit::{AuditEmitter, Decision, DecisionEvent, EmitterSlot};
use snowflake_core::{ChainMemo, Principal, Proof, Time, VerifyCtx};
use snowflake_crypto::HashVal;
use snowflake_metrics::{request_histogram, LatencyHistogram, Registry, Sample};
use snowflake_prover::Prover;
use snowflake_revocation::RevocationBus;
use snowflake_runtime::{Accepted, ListenerHandle, ServerRuntime, SinkHandle, SubmitError, Surface};
use snowflake_sexpr::Sexp;
use snowflake_tags::path_vector::{self, ActionTable};
use std::collections::HashMap;
use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How long the subscribe handshake may take before the worker gives up
/// on the connection (the blocking window per subscriber; after it, the
/// connection costs no thread at all).
const SUBSCRIBE_TIMEOUT: Duration = Duration::from_secs(10);

/// A destination for published frames.
///
/// The production sink is a reactor [`SinkHandle`]; tests and in-process
/// subscribers (and the presence-scale bench, which parks thousands of
/// subscribers without burning fds) implement this in memory.
pub trait SubscriberSink: Send + Sync {
    /// Queues one frame.  Returns `false` once the subscriber is gone —
    /// the broker drops the subscription.
    fn deliver(&self, frame: &[u8]) -> bool;
    /// Is the subscriber still connected?
    fn is_open(&self) -> bool;
    /// Severs the subscriber now (revocation cut): the remote observes
    /// EOF without polling.
    fn close(&self);
}

impl SubscriberSink for SinkHandle {
    fn deliver(&self, frame: &[u8]) -> bool {
        self.send(frame)
    }
    fn is_open(&self) -> bool {
        SinkHandle::is_open(self)
    }
    fn close(&self) {
        SinkHandle::close(self);
    }
}

/// Why a subscribe was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscribeError {
    /// The topic shape has no `subscribe` row in the action table
    /// (includes malformed/unknown paths — fail closed).
    NoSuchTopic,
    /// No proof authorizes the subject to subscribe (reason inside).
    Unauthorized(String),
    /// The broker is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubscribeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubscribeError::NoSuchTopic => f.write_str("no such topic"),
            SubscribeError::Unauthorized(r) => write!(f, "unauthorized: {r}"),
            SubscribeError::ShuttingDown => f.write_str("shutting down"),
        }
    }
}

/// Cumulative broker counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Streams currently subscribed.
    pub subscribers: u64,
    /// Subscribes granted, ever.
    pub subscribes: u64,
    /// Subscribes denied, ever.
    pub denied_subscribes: u64,
    /// Publishes accepted onto the pool, ever.
    pub publishes: u64,
    /// Publishes shed because the pool was saturated, ever.
    pub shed_publishes: u64,
    /// Frames delivered to subscriber sinks, ever.
    pub deliveries: u64,
    /// Subscriptions dropped because their sink died (peer closed or
    /// stalled past the buffer cap), ever.
    pub pruned: u64,
    /// Streams cut by revocation push, ever.
    pub cut_streams: u64,
}

struct Subscription {
    topic: Vec<String>,
    subject: Principal,
    cert_hashes: Vec<HashVal>,
    sink: Arc<dyn SubscriberSink>,
}

struct Counters {
    subscribes: AtomicU64,
    denied_subscribes: AtomicU64,
    publishes: AtomicU64,
    shed_publishes: AtomicU64,
    deliveries: AtomicU64,
    pruned: AtomicU64,
    cut_streams: AtomicU64,
}

/// The broker: one object namespace, one controlling issuer, one table
/// of subscribable topic shapes, and the live subscription set.
pub struct TopicBroker {
    runtime: Arc<ServerRuntime>,
    prover: Arc<Prover>,
    namespace: String,
    issuer: Principal,
    table: ActionTable,
    subs: Mutex<HashMap<u64, Subscription>>,
    next_id: AtomicU64,
    counters: Counters,
    emitter: EmitterSlot,
    clock: fn() -> Time,
    /// Verified-chain memo: re-subscribes and reconnects present the same
    /// proof chain, so repeat verification skips the exponentiations.
    /// Evicted by certificate hash on revocation push, alongside the
    /// stream cuts.
    memo: Arc<ChainMemo>,
    /// Subscribe-path latency (handshake + in-process subscribe), in the
    /// per-surface request-duration family under `surface="broker-sub"`.
    sub_latency: Arc<LatencyHistogram>,
    /// Publish acceptance latency, under `surface="broker-publish"`.
    publish_latency: Arc<LatencyHistogram>,
}

impl TopicBroker {
    /// A broker for `namespace`, whose topics are controlled by `issuer`
    /// and enumerated (with their `subscribe` rows) in `table`.
    pub fn new(
        runtime: Arc<ServerRuntime>,
        prover: Arc<Prover>,
        namespace: &str,
        issuer: Principal,
        table: ActionTable,
    ) -> Arc<TopicBroker> {
        Self::with_clock(runtime, prover, namespace, issuer, table, Time::now)
    }

    /// A broker with an injected clock (tests, benches).
    pub fn with_clock(
        runtime: Arc<ServerRuntime>,
        prover: Arc<Prover>,
        namespace: &str,
        issuer: Principal,
        table: ActionTable,
        clock: fn() -> Time,
    ) -> Arc<TopicBroker> {
        Arc::new(TopicBroker {
            runtime,
            prover,
            namespace: namespace.to_string(),
            issuer,
            table,
            subs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            counters: Counters {
                subscribes: AtomicU64::new(0),
                denied_subscribes: AtomicU64::new(0),
                publishes: AtomicU64::new(0),
                shed_publishes: AtomicU64::new(0),
                deliveries: AtomicU64::new(0),
                pruned: AtomicU64::new(0),
                cut_streams: AtomicU64::new(0),
            },
            emitter: EmitterSlot::new(),
            clock,
            memo: Arc::new(ChainMemo::new(1024)),
            sub_latency: request_histogram("broker-sub"),
            publish_latency: request_histogram("broker-publish"),
        })
    }

    /// Registers the broker's counters and gauges with `registry`: the
    /// live subscriber gauge, the `sf_broker_*` counters behind
    /// [`TopicBroker::stats`], and the chain memo under
    /// `surface="broker"`.  Dropping the broker retires its collector
    /// output on the next scrape.
    pub fn register_metrics(self: &Arc<Self>, registry: &Registry) {
        registry.set_help("sf_broker_subscribers", "Live subscriptions parked on the broker");
        registry.set_help("sf_broker_subscribes_total", "Granted subscriptions");
        registry.set_help("sf_broker_denied_subscribes_total", "Refused subscriptions");
        registry.set_help("sf_broker_publishes_total", "Accepted publishes");
        registry.set_help("sf_broker_shed_publishes_total", "Publishes shed by a saturated pool");
        registry.set_help("sf_broker_deliveries_total", "Frames delivered to subscriber sinks");
        registry.set_help("sf_broker_pruned_total", "Dead subscriptions pruned");
        registry.set_help("sf_broker_cut_streams_total", "Streams cut by revocation push");
        let weak = Arc::downgrade(self);
        registry.register_collector(
            "broker",
            Arc::new(move |out: &mut Vec<Sample>| {
                let Some(broker) = weak.upgrade() else { return };
                let s = broker.stats();
                out.push(Sample::gauge("sf_broker_subscribers", &[], s.subscribers as f64));
                out.push(Sample::counter("sf_broker_subscribes_total", &[], s.subscribes));
                out.push(Sample::counter(
                    "sf_broker_denied_subscribes_total",
                    &[],
                    s.denied_subscribes,
                ));
                out.push(Sample::counter("sf_broker_publishes_total", &[], s.publishes));
                out.push(Sample::counter(
                    "sf_broker_shed_publishes_total",
                    &[],
                    s.shed_publishes,
                ));
                out.push(Sample::counter("sf_broker_deliveries_total", &[], s.deliveries));
                out.push(Sample::counter("sf_broker_pruned_total", &[], s.pruned));
                out.push(Sample::counter("sf_broker_cut_streams_total", &[], s.cut_streams));
            }),
        );
        self.memo.register_metrics(registry, "broker");
    }

    /// The broker's verified-chain memo (exposed for counters).
    pub fn chain_memo(&self) -> Arc<ChainMemo> {
        Arc::clone(&self.memo)
    }

    /// Attaches an audit emitter; grants, denials, sheds, prunes, and
    /// revocation cuts are recorded through it.
    pub fn set_audit_emitter(&self, emitter: Arc<dyn AuditEmitter>) {
        self.emitter.set(emitter);
    }

    fn audit(&self, build: impl FnOnce() -> DecisionEvent) {
        self.emitter.emit_with(build);
    }

    /// The namespace this broker serves.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// Current counters.
    pub fn stats(&self) -> BrokerStats {
        BrokerStats {
            subscribers: self.subs.lock().expect("broker subs poisoned").len() as u64,
            subscribes: self.counters.subscribes.load(Ordering::SeqCst),
            denied_subscribes: self.counters.denied_subscribes.load(Ordering::SeqCst),
            publishes: self.counters.publishes.load(Ordering::SeqCst),
            shed_publishes: self.counters.shed_publishes.load(Ordering::SeqCst),
            deliveries: self.counters.deliveries.load(Ordering::SeqCst),
            pruned: self.counters.pruned.load(Ordering::SeqCst),
            cut_streams: self.counters.cut_streams.load(Ordering::SeqCst),
        }
    }

    fn topic_string(&self, path: &[String]) -> String {
        format!("{}:/{}", self.namespace, path.join("/"))
    }

    /// Grants or refuses one subscription given an explicit proof (the
    /// wire path: remote subscribers present their own chain, "the
    /// client is responsible to know and exploit its group memberships").
    /// On grant the sink is registered and the subscription id returned.
    pub fn subscribe_with_proof(
        &self,
        subject: Principal,
        path: &[&str],
        proof: &Proof,
        sink: Arc<dyn SubscriberSink>,
    ) -> Result<u64, SubscribeError> {
        let _timer = self.sub_latency.start_timer();
        let verdict = (|| {
            if !self.table.permits(path, "subscribe") {
                return Err(SubscribeError::NoSuchTopic);
            }
            let tag = path_vector::request_tag(&self.namespace, path, "subscribe");
            let now = (self.clock)();
            let ctx = VerifyCtx::at(now).with_chain_memo(Arc::clone(&self.memo));
            ctx.authorize(proof, &subject, &self.issuer, &tag)
                .map_err(|e| SubscribeError::Unauthorized(e.to_string()))
        })();
        let owned: Vec<String> = path.iter().map(|s| s.to_string()).collect();
        if let Err(e) = &verdict {
            self.counters.denied_subscribes.fetch_add(1, Ordering::SeqCst);
            self.audit(|| {
                DecisionEvent::new(
                    (self.clock)(),
                    "broker-sub",
                    Decision::Deny,
                    &self.topic_string(&owned),
                    "subscribe",
                    &e.to_string(),
                )
                .with_subject(subject.clone())
            });
            return Err(verdict.unwrap_err());
        }
        let cert_hashes = proof.cert_hashes();
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.subs.lock().expect("broker subs poisoned").insert(
            id,
            Subscription {
                topic: owned.clone(),
                subject: subject.clone(),
                cert_hashes: cert_hashes.clone(),
                sink,
            },
        );
        self.counters.subscribes.fetch_add(1, Ordering::SeqCst);
        self.audit(|| {
            DecisionEvent::new(
                (self.clock)(),
                "broker-sub",
                Decision::Grant,
                &self.topic_string(&owned),
                "subscribe",
                "subscription established; stream parked on reactor",
            )
            .with_subject(subject)
            .with_certs(cert_hashes)
        });
        Ok(id)
    }

    /// Subscribes an in-process subject, letting the broker's own prover
    /// search for the chain (local agents, tests, the presence bench).
    pub fn subscribe_local(
        &self,
        subject: Principal,
        path: &[&str],
        sink: Arc<dyn SubscriberSink>,
    ) -> Result<u64, SubscribeError> {
        if !self.table.permits(path, "subscribe") {
            return Err(SubscribeError::NoSuchTopic);
        }
        let tag = path_vector::request_tag(&self.namespace, path, "subscribe");
        let now = (self.clock)();
        let Some(proof) = self.prover.find_proof(&subject, &self.issuer, &tag, now) else {
            let owned: Vec<String> = path.iter().map(|s| s.to_string()).collect();
            self.counters.denied_subscribes.fetch_add(1, Ordering::SeqCst);
            self.audit(|| {
                DecisionEvent::new(
                    (self.clock)(),
                    "broker-sub",
                    Decision::Deny,
                    &self.topic_string(&owned),
                    "subscribe",
                    "no delegation chain from issuer to subject",
                )
                .with_subject(subject.clone())
            });
            return Err(SubscribeError::Unauthorized(
                "no delegation chain from issuer to subject".into(),
            ));
        };
        self.subscribe_with_proof(subject, path, &proof, sink)
    }

    /// Drops a subscription (voluntary unsubscribe or sink death).
    pub fn unsubscribe(&self, id: u64) -> bool {
        self.subs
            .lock()
            .expect("broker subs poisoned")
            .remove(&id)
            .is_some()
    }

    /// Publishes `data` to every subscriber of `path`.  The fan-out runs
    /// on the worker pool; a saturated pool sheds the publish — counted
    /// in the per-surface ledger and audited — instead of queueing.
    /// Returns `Ok` once the fan-out is *accepted*, not delivered.
    pub fn publish(self: &Arc<Self>, path: &[&str], data: &[u8]) -> Result<(), SubmitError> {
        let _timer = self.publish_latency.start_timer();
        let owned: Vec<String> = path.iter().map(|s| s.to_string()).collect();
        let permit = match self.runtime.pool().try_permit() {
            Ok(p) => p,
            Err(e) => {
                self.counters.shed_publishes.fetch_add(1, Ordering::SeqCst);
                self.runtime.shed_ledger().record("broker-publish");
                self.audit(|| {
                    DecisionEvent::new(
                        (self.clock)(),
                        "broker-publish",
                        Decision::Shed,
                        &self.topic_string(&owned),
                        "publish",
                        "worker pool saturated; publish shed",
                    )
                });
                return Err(e);
            }
        };
        self.counters.publishes.fetch_add(1, Ordering::SeqCst);
        // The job holds a strong reference, but only for its own brief
        // run — no cycle, the pool drops it after the fan-out.
        let broker = Arc::clone(self);
        // Sinks write raw bytes (the reactor adds no framing), so the
        // wire frame carries its own length prefix.
        let frame = frame_with_len(&publish_frame(&owned, data));
        permit.submit(move || broker.fan_out(&owned, &frame));
        Ok(())
    }

    /// Delivers one already-encoded frame to every live subscriber of
    /// `path`, pruning (and auditing) subscriptions whose sink is gone.
    fn fan_out(&self, path: &[String], frame: &[u8]) {
        let targets: Vec<(u64, Arc<dyn SubscriberSink>)> = {
            let subs = self.subs.lock().expect("broker subs poisoned");
            subs.iter()
                .filter(|(_, s)| s.topic[..] == *path)
                .map(|(id, s)| (*id, Arc::clone(&s.sink)))
                .collect()
        };
        let mut dead = Vec::new();
        for (id, sink) in targets {
            if sink.deliver(frame) {
                self.counters.deliveries.fetch_add(1, Ordering::SeqCst);
            } else {
                dead.push(id);
            }
        }
        for id in dead {
            self.prune(id, "push sink dead at delivery");
        }
    }

    /// Removes a subscription whose sink died, recording why.
    fn prune(&self, id: u64, detail: &str) {
        let removed = self
            .subs
            .lock()
            .expect("broker subs poisoned")
            .remove(&id);
        if let Some(sub) = removed {
            self.counters.pruned.fetch_add(1, Ordering::SeqCst);
            self.audit(|| {
                DecisionEvent::new(
                    (self.clock)(),
                    "broker-push",
                    Decision::Shed,
                    &self.topic_string(&sub.topic),
                    "publish",
                    detail,
                )
                .with_subject(sub.subject.clone())
            });
        }
    }

    /// Registers a subscribe listener on the runtime's reactor.  Each
    /// accepted connection is offloaded to a pool worker for the framed
    /// handshake — `(subscribe (path s…) (subject P) (proof …))` — and,
    /// on grant, parked write-only as a reactor sink; the worker is
    /// released the moment the handshake ends.
    pub fn attach_subscribe_listener(
        self: &Arc<Self>,
        listener: TcpListener,
    ) -> io::Result<ListenerHandle> {
        // Long-lived reactor closures hold a Weak: `Arc<TopicBroker>`
        // would cycle (broker → runtime → reactor → surfaces → broker).
        let broker = Arc::downgrade(self);
        let shed_broker = Arc::downgrade(self);
        let surface = Surface::new("broker-sub")
            .with_shed_reply(|detail| frame_with_len(&deny_sexp(detail).canonical()))
            .with_on_shed(move |detail| {
                if let Some(b) = shed_broker.upgrade() {
                    let detail = detail.to_string();
                    b.audit(|| {
                        DecisionEvent::new(
                            (b.clock)(),
                            "broker-sub",
                            Decision::Shed,
                            "tcp-accept",
                            "subscribe",
                            &detail,
                        )
                    });
                }
            });
        self.runtime.reactor().register_listener(
            listener,
            surface,
            Box::new(move || {
                let broker = broker.clone();
                Accepted::Offload(Box::new(move |stream, reactor, _surface| {
                    let Some(broker) = broker.upgrade() else { return };
                    broker.handshake(stream, &reactor);
                }))
            }),
        )
    }

    /// Runs one subscribe handshake on a pool worker.  The transport
    /// reads ride a dup of the socket so the original fd can be adopted
    /// into the reactor once the grant is decided.
    fn handshake(self: &Arc<Self>, stream: std::net::TcpStream, reactor: &Arc<snowflake_runtime::Reactor>) {
        let _timer = self.sub_latency.start_timer();
        let Ok(dup) = stream.try_clone() else { return };
        let mut transport = TcpTransport::new(dup);
        let _ = transport.set_read_timeout(Some(SUBSCRIBE_TIMEOUT));
        let Ok(frame) = transport.recv() else { return };
        let (subject, path, proof) = match parse_subscribe(&frame) {
            Ok(parts) => parts,
            Err(reason) => {
                self.counters.denied_subscribes.fetch_add(1, Ordering::SeqCst);
                self.audit(|| {
                    DecisionEvent::new(
                        (self.clock)(),
                        "broker-sub",
                        Decision::Deny,
                        "malformed-request",
                        "subscribe",
                        &format!("rejected unparseable subscribe frame: {reason}"),
                    )
                });
                let _ = transport.send(&deny_sexp(&reason).canonical());
                return;
            }
        };
        let refs: Vec<&str> = path.iter().map(String::as_str).collect();
        // Authorize BEFORE the connection touches the reactor: an
        // unauthorized peer never occupies a parked-sink slot.
        let tag = path_vector::request_tag(&self.namespace, &refs, "subscribe");
        let now = (self.clock)();
        let ctx = VerifyCtx::at(now).with_chain_memo(Arc::clone(&self.memo));
        let allowed = self.table.permits(&refs, "subscribe")
            && ctx.authorize(&proof, &subject, &self.issuer, &tag).is_ok();
        if !allowed {
            // Re-run through the audited front door for the exact reason.
            let err = if !self.table.permits(&refs, "subscribe") {
                SubscribeError::NoSuchTopic
            } else {
                SubscribeError::Unauthorized("proof does not authorize subscribe".into())
            };
            self.counters.denied_subscribes.fetch_add(1, Ordering::SeqCst);
            self.audit(|| {
                DecisionEvent::new(
                    (self.clock)(),
                    "broker-sub",
                    Decision::Deny,
                    &self.topic_string(&path),
                    "subscribe",
                    &err.to_string(),
                )
                .with_subject(subject.clone())
            });
            let _ = transport.send(&deny_sexp(&err.to_string()).canonical());
            return;
        }
        // Park the original fd write-only; the per-subscriber surface
        // audits the reactor's own sheds (stall cap) and prunes here.
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let stall_broker = Arc::downgrade(self);
        let push_surface = Surface::new("broker-push").with_on_shed(move |detail| {
            if let Some(b) = stall_broker.upgrade() {
                b.prune(id, detail);
            }
        });
        let sink = match reactor.adopt_sink(stream, push_surface) {
            Ok(s) => s,
            Err(_) => {
                let _ = transport.send(&deny_sexp("shutting down").canonical());
                return;
            }
        };
        // Confirm over the dup *before* registering: once the
        // subscription is visible, publishes write to the same socket
        // from the reactor thread, and the two writers must not
        // interleave.
        let _ = transport.send(&Sexp::tagged("sub-ok", vec![]).canonical());
        drop(transport);
        let cert_hashes = proof.cert_hashes();
        self.subs.lock().expect("broker subs poisoned").insert(
            id,
            Subscription {
                topic: path.clone(),
                subject: subject.clone(),
                cert_hashes: cert_hashes.clone(),
                sink: Arc::new(sink),
            },
        );
        self.counters.subscribes.fetch_add(1, Ordering::SeqCst);
        self.audit(|| {
            DecisionEvent::new(
                (self.clock)(),
                "broker-sub",
                Decision::Grant,
                &self.topic_string(&path),
                "subscribe",
                "subscription established; stream parked on reactor",
            )
            .with_subject(subject)
            .with_certs(cert_hashes)
        });
        // The dup fd is gone; the reactor owns the original and the
        // worker is free.
    }
}

/// The revocation-push entry point: one dead certificate cuts exactly
/// the streams whose subscribe-grant provenance includes it.
impl RevocationBus for TopicBroker {
    fn certificate_revoked(&self, cert_hash: &HashVal) -> usize {
        // Drop memoized chains first so no re-subscribe can ride a stale
        // verification while the stream cuts below are in flight.
        self.memo.evict_cert(cert_hash);
        let cut: Vec<(u64, Subscription)> = {
            let mut subs = self.subs.lock().expect("broker subs poisoned");
            let ids: Vec<u64> = subs
                .iter()
                .filter(|(_, s)| s.cert_hashes.contains(cert_hash))
                .map(|(id, _)| *id)
                .collect();
            ids.into_iter()
                .filter_map(|id| subs.remove(&id).map(|s| (id, s)))
                .collect()
        };
        // Close and audit outside the lock: `close` wakes the reactor
        // and emitters may do real work.
        for (_, sub) in &cut {
            sub.sink.close();
            self.counters.cut_streams.fetch_add(1, Ordering::SeqCst);
            self.audit(|| {
                DecisionEvent::new(
                    (self.clock)(),
                    "broker-push",
                    Decision::Revoke,
                    &self.topic_string(&sub.topic),
                    "subscribe",
                    &format!(
                        "grant provenance includes revoked cert {}; stream cut",
                        cert_hash.short_hex()
                    ),
                )
                .with_subject(sub.subject.clone())
                .with_certs(sub.cert_hashes.clone())
            });
        }
        cut.len()
    }
}

fn deny_sexp(reason: &str) -> Sexp {
    Sexp::tagged("sub-deny", vec![Sexp::atom(reason.as_bytes().to_vec())])
}

/// Wraps one encoded frame in the transport's `[u32 BE len]` prefix,
/// for bytes written raw to a socket (sink pushes, shed replies) that a
/// [`TcpTransport`] on the other end will `recv`.
fn frame_with_len(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body);
    out
}

/// Encodes one publish frame, `(publish (path s…) (data bytes))`.
pub fn publish_frame(path: &[String], data: &[u8]) -> Vec<u8> {
    Sexp::tagged(
        "publish",
        vec![
            Sexp::tagged(
                "path",
                path.iter()
                    .map(|s| Sexp::atom(s.as_bytes().to_vec()))
                    .collect(),
            ),
            Sexp::tagged("data", vec![Sexp::atom(data.to_vec())]),
        ],
    )
    .canonical()
}

fn parse_subscribe(frame: &[u8]) -> Result<(Principal, Vec<String>, Proof), String> {
    let e = Sexp::parse(frame).map_err(|e| e.to_string())?;
    if e.tag_name() != Some("subscribe") {
        return Err("expected (subscribe …)".into());
    }
    let path = e
        .find("path")
        .and_then(Sexp::tag_body)
        .ok_or("missing (path …)")?
        .iter()
        .map(|s| s.as_str().map(str::to_string).ok_or("non-atom path segment"))
        .collect::<Result<Vec<_>, _>>()?;
    if path.is_empty() {
        return Err("empty path".into());
    }
    let subject = Principal::from_sexp(
        e.find_value("subject").ok_or("missing (subject …)")?,
    )
    .map_err(|e| e.to_string())?;
    let proof =
        Proof::from_sexp(e.find_value("proof").ok_or("missing (proof …)")?)
            .map_err(|e| e.to_string())?;
    Ok((subject, path, proof))
}

/// Encodes one subscribe frame (client side).
pub fn subscribe_frame(path: &[&str], subject: &Principal, proof: &Proof) -> Vec<u8> {
    Sexp::tagged(
        "subscribe",
        vec![
            Sexp::tagged(
                "path",
                path.iter()
                    .map(|s| Sexp::atom(s.as_bytes().to_vec()))
                    .collect(),
            ),
            Sexp::tagged("subject", vec![subject.to_sexp()]),
            Sexp::tagged("proof", vec![proof.to_sexp()]),
        ],
    )
    .canonical()
}

/// Client-side subscribe: connects, presents the proof, and returns the
/// transport ready to [`read_publish`] on grant, or the deny reason.
pub fn subscribe_stream(
    addr: std::net::SocketAddr,
    path: &[&str],
    subject: &Principal,
    proof: &Proof,
) -> io::Result<Result<TcpTransport, String>> {
    let stream = std::net::TcpStream::connect(addr)?;
    let mut transport = TcpTransport::new(stream);
    transport.send(&subscribe_frame(path, subject, proof))?;
    let reply = transport.recv()?;
    let e = Sexp::parse(&reply)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    match e.tag_name() {
        Some("sub-ok") => Ok(Ok(transport)),
        Some("sub-deny") => Ok(Err(e
            .tag_body()
            .and_then(<[Sexp]>::first)
            .and_then(Sexp::as_str)
            .unwrap_or("denied")
            .to_string())),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unrecognized subscribe reply",
        )),
    }
}

/// Client-side read of one publish frame: `(path, data)`.
pub fn read_publish(transport: &mut TcpTransport) -> io::Result<(Vec<String>, Vec<u8>)> {
    let frame = transport.recv()?;
    let e = Sexp::parse(&frame)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let bad = || io::Error::new(io::ErrorKind::InvalidData, "malformed publish frame");
    if e.tag_name() != Some("publish") {
        return Err(bad());
    }
    let path = e
        .find("path")
        .and_then(Sexp::tag_body)
        .ok_or_else(bad)?
        .iter()
        .map(|s| s.as_str().map(str::to_string).ok_or_else(bad))
        .collect::<Result<Vec<_>, _>>()?;
    let data = e
        .find_value("data")
        .and_then(Sexp::as_atom)
        .ok_or_else(bad)?
        .to_vec();
    Ok((path, data))
}
