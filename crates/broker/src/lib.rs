//! Authz-endpoint facade and protected topic broker.
//!
//! The paper's client-side machinery (provers, delegations, tags)
//! usually hides behind one small operational question: *may subject S
//! perform action A on object O?*  This crate is that facade, in two
//! surfaces riding the shared server runtime:
//!
//! * **The authz endpoint** ([`AuthzEndpoint`]): an HTTP handler
//!   accepting the de-facto JSON question shape — subject, object
//!   path vector, action — translating it into a snowflake request tag
//!   ([`snowflake_tags::path_vector`]) and answering allow/deny from
//!   the prover's delegation graph.  Malformed bodies are denied, fail
//!   closed.
//! * **The topic broker** ([`TopicBroker`]): publish/subscribe where
//!   `subscribe` is a first-class authorized action.  The delegation
//!   chain is checked once, at subscribe time; subscribers then park
//!   write-only on the reactor.  The grant stays honest through
//!   *revocation push*: the broker records each grant's certificate
//!   provenance and cuts exactly the streams built on a revoked
//!   certificate, mid-stream.
//!
//! Every verdict either surface reaches — grant, deny, shed, cut —
//! emits a [`snowflake_core::audit::DecisionEvent`], so the streaming
//! plane is as reviewable as the request/response planes.

#![deny(missing_docs)]

pub mod authz;
pub mod json;
pub mod topic;

pub use authz::{subject_principal, AuthzEndpoint, AuthzRequest, AuthzVerdict, NamespaceAuthority};
pub use json::Json;
pub use topic::{
    publish_frame, read_publish, subscribe_frame, subscribe_stream, BrokerStats, SubscribeError,
    SubscriberSink, TopicBroker,
};
