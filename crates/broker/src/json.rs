//! A minimal JSON reader for the authz wire format.
//!
//! The workspace is offline and dependency-free, and nothing else in it
//! speaks JSON — but the de-facto authz-endpoint interface does, so the
//! broker carries its own parser.  It is deliberately small: the full
//! value grammar (objects, arrays, strings with escapes, numbers,
//! literals) with a recursion-depth cap, strict UTF-8 and
//! whole-input consumption, and **no** extensions — anything outside
//! RFC 8259 is an error, and on this endpoint every parse error is an
//! authorization denial (fail closed).

use std::fmt;

/// Deepest permitted nesting of arrays/objects.  Authz requests are two
/// levels deep; 64 leaves generous headroom while keeping a hostile
/// body from exhausting the stack.
const MAX_DEPTH: usize = 64;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (later duplicates shadow earlier ones
    /// on [`Json::get`]; the authz parser rejects none because the shape
    /// check only reads the fields it names).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (last occurrence wins, like most consumers).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    /// Serializes back to compact JSON (responses, tests).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure: where, and what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

/// Parses one complete JSON document; trailing bytes (other than
/// whitespace) are an error.
pub fn parse(input: &[u8]) -> Result<Json, JsonError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing bytes after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected byte")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &'static [u8], value: Json) -> Result<Json, JsonError> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                0x00..=0x1f => return Err(self.err("raw control byte in string")),
                _ => {
                    // Consume one UTF-8 scalar; reject malformed input.
                    let rest = &self.input[self.pos..];
                    let upto = rest.len().min(4);
                    match std::str::from_utf8(&rest[..upto]) {
                        Ok(s) => {
                            let ch = s.chars().next().expect("nonempty");
                            out.push(ch);
                            self.pos += ch.len_utf8();
                        }
                        Err(e) if e.valid_up_to() > 0 => {
                            let s = std::str::from_utf8(&rest[..e.valid_up_to()])
                                .expect("validated prefix");
                            let ch = s.chars().next().expect("nonempty");
                            out.push(ch);
                            self.pos += ch.len_utf8();
                        }
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let Some(c) = self.peek() else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{0008}',
            b'f' => '\u{000c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a low surrogate escape must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u', "expected low surrogate")?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.err("bad surrogate pair"))?
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))?
                }
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex in \\u escape"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits must follow decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits must follow exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Json {
        parse(src.as_bytes()).unwrap()
    }

    #[test]
    fn parses_the_authz_request_shape() {
        let doc = p(r#"{
            "subject": {"namespace": "iam.example.org",
                        "value": ["accounts", "123e4567"]},
            "object": {"namespace": "conference.example.org",
                       "value": ["rooms", "123e4567", "rtcs", "321e7654"]},
            "action": "read"
        }"#);
        assert_eq!(
            doc.get("subject").unwrap().get("namespace").unwrap().as_str(),
            Some("iam.example.org")
        );
        let path = doc.get("object").unwrap().get("value").unwrap().as_array().unwrap();
        assert_eq!(path.len(), 4);
        assert_eq!(path[0].as_str(), Some("rooms"));
        assert_eq!(doc.get("action").unwrap().as_str(), Some("read"));
    }

    #[test]
    fn scalars_and_structure() {
        assert_eq!(p("null"), Json::Null);
        assert_eq!(p("true"), Json::Bool(true));
        assert_eq!(p("false"), Json::Bool(false));
        assert_eq!(p("42"), Json::Num(42.0));
        assert_eq!(p("-0.5e2"), Json::Num(-50.0));
        assert_eq!(p("\"hi\""), Json::Str("hi".into()));
        assert_eq!(p("[]"), Json::Arr(vec![]));
        assert_eq!(p("{}"), Json::Obj(vec![]));
        assert_eq!(p("[1, [2, 3]]"), Json::Arr(vec![
            Json::Num(1.0),
            Json::Arr(vec![Json::Num(2.0), Json::Num(3.0)]),
        ]));
    }

    #[test]
    fn escapes_decode() {
        assert_eq!(p(r#""a\"b\\c\/d\n""#), Json::Str("a\"b\\c/d\n".into()));
        assert_eq!(p(r#""\u0041\u00e9""#), Json::Str("Aé".into()));
        // Surrogate pair: U+1F600.
        assert_eq!(p(r#""\ud83d\ude00""#), Json::Str("\u{1F600}".into()));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for src in [
            "", "{", "}", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "01", "1.",
            "1e", "\"unterminated", "\"\\q\"", "\"\\ud800\"", "\"\\udc00x\"",
            "{\"a\":1} trailing", "nan", "+1", "'single'", "[1 2]",
            "\"\u{0009}raw-tab-ok-wait-no\"",
        ] {
            assert!(parse(src.as_bytes()).is_err(), "{src:?} must fail");
        }
        // Raw control byte inside a string.
        assert!(parse(b"\"a\x01b\"").is_err());
        // Invalid UTF-8 inside a string.
        assert!(parse(b"\"a\xffb\"").is_err());
    }

    #[test]
    fn depth_cap_holds() {
        let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(parse(deep.as_bytes()).is_err());
        let fine = format!("{}1{}", "[".repeat(20), "]".repeat(20));
        assert!(parse(fine.as_bytes()).is_ok());
    }

    #[test]
    fn display_roundtrips() {
        for src in [
            r#"{"a":[1,"x",null,true],"b":{"c":false}}"#,
            r#""quote\" and \\ and \n""#,
            "[0.25,-3,100000]",
        ] {
            let v = p(src);
            assert_eq!(parse(v.to_string().as_bytes()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn duplicate_keys_last_wins() {
        assert_eq!(
            p(r#"{"a":1,"a":2}"#).get("a"),
            Some(&Json::Num(2.0))
        );
    }
}
