//! End-to-end broker behavior: the authz endpoint answering foxford-shape
//! JSON over the reactor-served HTTP surface, the protected topic broker
//! granting `subscribe` against real delegation chains, revocation push
//! cutting exactly the right streams mid-flight, stalled subscribers
//! being shed without harming healthy ones, and a presence-style
//! in-memory scale run.

use snowflake_broker::topic::{read_publish, subscribe_stream};
use snowflake_broker::{
    subject_principal, AuthzEndpoint, NamespaceAuthority, SubscribeError, SubscriberSink,
    TopicBroker,
};
use snowflake_core::audit::{AuditEmitter, Decision, DecisionEvent};
use snowflake_core::{Principal, Time, Validity};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_http::{HttpClient, HttpRequest, HttpServer};
use snowflake_prover::Prover;
use snowflake_revocation::RevocationBus;
use snowflake_runtime::{PoolConfig, ServerRuntime};
use snowflake_tags::path_vector::{grant_tag, ActionTable, PathPattern};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const OBJECT_NS: &str = "conference.example.org";
const SUBJECT_NS: &str = "iam.example.org";

fn kp(seed: &[u8]) -> KeyPair {
    let mut rng = DetRng::new(seed);
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

fn test_now() -> Time {
    Time(1_000_000)
}

fn account(name: &str) -> Principal {
    subject_principal(SUBJECT_NS, &["accounts".to_string(), name.to_string()])
}

/// Collects every emitted decision for assertions.
#[derive(Default)]
struct Collector(Mutex<Vec<DecisionEvent>>);

impl Collector {
    fn events(&self) -> Vec<DecisionEvent> {
        self.0.lock().unwrap().clone()
    }
}

impl AuditEmitter for Collector {
    fn emit(&self, event: DecisionEvent) {
        self.0.lock().unwrap().push(event);
    }
}

/// The exemplar conferencing object/action matrix.
fn conference_table() -> ActionTable {
    let mut t = ActionTable::new();
    t.allow(&["rooms"], &["create", "list"])
        .allow(&["rooms", "*"], &["read", "update", "delete"])
        .allow(&["rooms", "*", "agents"], &["list"])
        .allow(&["rooms", "*", "agents", "*"], &["read", "update"])
        .allow(&["rooms", "*", "rtcs"], &["create", "list"])
        .allow(&["rooms", "*", "rtcs", "*"], &["read", "update", "delete"])
        .allow(&["rooms", "*", "events"], &["subscribe"])
        .allow(&["audiences", "*", "events"], &["subscribe"]);
    t
}

fn authz_body(subject: &str, object_path: &[&str], action: &str) -> Vec<u8> {
    let path = object_path
        .iter()
        .map(|s| format!("\"{s}\""))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"subject\":{{\"namespace\":\"{SUBJECT_NS}\",\"value\":[\"accounts\",\"{subject}\"]}},\
          \"object\":{{\"namespace\":\"{OBJECT_NS}\",\"value\":[{path}]}},\
          \"action\":\"{action}\"}}"
    )
    .into_bytes()
}

/// POST /authz over a real reactor-served HTTP connection: the foxford
/// JSON shape is answered allow/deny from the prover's delegation graph,
/// malformed bodies are refused fail-closed, and every answer is audited.
#[test]
fn authz_endpoint_answers_over_http() {
    let issuer_kp = kp(b"authz-endpoint-issuer");
    let issuer = Principal::key(&issuer_kp.public);
    let mut rng = DetRng::new(b"authz-endpoint-prover");
    let prover = Arc::new(Prover::with_rng(Box::new(move |b| rng.fill(b))));
    prover.add_key(issuer_kp);

    // Alice may read/update any rtc in any room; nothing else.
    prover
        .delegate(
            &account("alice"),
            &issuer,
            grant_tag(
                OBJECT_NS,
                &PathPattern::parse(&["rooms", "*", "rtcs", "*"]),
                &["read", "update"],
            ),
            Validity::always(),
            false,
        )
        .unwrap();

    let endpoint = AuthzEndpoint::with_clock(Arc::clone(&prover), test_now);
    endpoint.add_namespace(
        OBJECT_NS,
        NamespaceAuthority {
            issuer,
            table: conference_table(),
        },
    );
    let audit = Arc::new(Collector::default());
    endpoint.set_audit_emitter(Arc::clone(&audit) as Arc<dyn AuditEmitter>);

    let runtime = ServerRuntime::new(PoolConfig::new("authz-test", 2, 8));
    let server = HttpServer::with_clock(test_now);
    server.route("/authz", endpoint);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    server.attach_to_reactor(listener, &runtime).unwrap();

    let ask = |body: Vec<u8>| {
        let mut client = HttpClient::new(Box::new(TcpStream::connect(addr).unwrap()));
        client.send(&HttpRequest::post("/authz", body)).unwrap()
    };

    // Granted: the delegation covers the path and action.
    let resp = ask(authz_body("alice", &["rooms", "r1", "rtcs", "x9"], "read"));
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"{\"result\":\"allow\"}");

    // Denied: action outside the delegated set.
    let resp = ask(authz_body("alice", &["rooms", "r1", "rtcs", "x9"], "delete"));
    assert_eq!(resp.status, 200);
    assert!(resp.body.starts_with(b"{\"result\":\"deny\""), "{:?}", String::from_utf8_lossy(&resp.body));

    // Denied fail-closed: the action exists nowhere on this shape, so no
    // proof search even runs.
    let resp = ask(authz_body("alice", &["rooms", "r1"], "subscribe"));
    assert!(resp.body.starts_with(b"{\"result\":\"deny\""));

    // Denied: a different subject holds no delegation.
    let resp = ask(authz_body("mallory", &["rooms", "r1", "rtcs", "x9"], "read"));
    assert!(resp.body.starts_with(b"{\"result\":\"deny\""));

    // Malformed bodies are 400, fail closed.
    for bad in [
        &b"not json at all"[..],
        b"{\"subject\":{\"namespace\":\"x\",\"value\":[]},\"object\":{\"namespace\":\"y\",\"value\":[\"rooms\"]},\"action\":\"list\"}",
        b"{\"subject\":{\"namespace\":\"x\",\"value\":[\"a\"]},\"object\":{\"namespace\":\"y\",\"value\":[\"rooms\",7]},\"action\":\"list\"}",
        b"{}",
    ] {
        let resp = ask(bad.to_vec());
        assert_eq!(resp.status, 400, "{:?}", String::from_utf8_lossy(bad));
    }

    // GET is refused outright.
    let mut client = HttpClient::new(Box::new(TcpStream::connect(addr).unwrap()));
    let resp = client.send(&HttpRequest::get("/authz")).unwrap();
    assert_eq!(resp.status, 405);

    let events = audit.events();
    let grants = events.iter().filter(|e| e.decision == Decision::Grant).count();
    let denies = events.iter().filter(|e| e.decision == Decision::Deny).count();
    assert_eq!(grants, 1);
    // 3 evaluated denials + 4 malformed-body refusals.
    assert_eq!(denies, 7);
    assert!(events.iter().all(|e| e.surface == "authz"));
    let grant = events.iter().find(|e| e.decision == Decision::Grant).unwrap();
    assert_eq!(grant.object, format!("{OBJECT_NS}:/rooms/r1/rtcs/x9"));
    assert_eq!(grant.action, "read");
    assert_eq!(grant.subject, Some(account("alice")));
    assert!(!grant.cert_hashes.is_empty(), "grant records provenance");

    runtime.shutdown();
}

/// The full streaming story over real TCP: subscribe with a proof, get
/// `(sub-ok)`, receive publishes mid-stream, then one certificate
/// revocation cuts exactly the stream built on it — the other subscriber
/// keeps receiving, no reconnect, no polling.
#[test]
fn revocation_push_cuts_exactly_the_poisoned_stream() {
    let issuer_kp = kp(b"broker-wire-issuer");
    let issuer = Principal::key(&issuer_kp.public);
    let mut rng = DetRng::new(b"broker-wire-prover");
    let prover = Arc::new(Prover::with_rng(Box::new(move |b| rng.fill(b))));
    prover.add_key(issuer_kp);

    let events_grant = grant_tag(
        OBJECT_NS,
        &PathPattern::parse(&["rooms", "*", "events"]),
        &["subscribe"],
    );
    let alice = account("alice");
    let bob = account("bob");
    let proof_a = prover
        .delegate(&alice, &issuer, events_grant.clone(), Validity::always(), false)
        .unwrap();
    let proof_b = prover
        .delegate(&bob, &issuer, events_grant, Validity::always(), false)
        .unwrap();
    let cert_a = proof_a.cert_hashes()[0].clone();

    let runtime = ServerRuntime::new(PoolConfig::new("broker-wire", 2, 16));
    let broker = TopicBroker::with_clock(
        Arc::clone(&runtime),
        Arc::clone(&prover),
        OBJECT_NS,
        issuer,
        conference_table(),
        test_now,
    );
    let audit = Arc::new(Collector::default());
    broker.set_audit_emitter(Arc::clone(&audit) as Arc<dyn AuditEmitter>);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    broker.attach_subscribe_listener(listener).unwrap();

    let topic = ["rooms", "r1", "events"];
    let mut stream_a = subscribe_stream(addr, &topic, &alice, &proof_a)
        .unwrap()
        .expect("alice's chain authorizes subscribe");
    let mut stream_b = subscribe_stream(addr, &topic, &bob, &proof_b)
        .unwrap()
        .expect("bob's chain authorizes subscribe");

    // A proof for the wrong subject is refused before the reactor ever
    // sees the connection.
    let denied = subscribe_stream(addr, &topic, &account("mallory"), &proof_a).unwrap();
    assert!(denied.is_err(), "mallory must be denied");
    // A path with no subscribe row is refused fail-closed.
    let denied = subscribe_stream(addr, &["rooms", "r1"], &alice, &proof_a).unwrap();
    match denied {
        Err(reason) => assert_eq!(reason, SubscribeError::NoSuchTopic.to_string()),
        Ok(_) => panic!("a path with no subscribe row must be refused"),
    }

    // Wait until both grants registered (handshakes run on the pool).
    wait_for(|| broker.stats().subscribers == 2);

    // Both live streams receive the publish.
    broker.publish(&topic, b"first").unwrap();
    assert_eq!(read_publish(&mut stream_a).unwrap().1, b"first");
    let (path, data) = read_publish(&mut stream_b).unwrap();
    assert_eq!(path, vec!["rooms", "r1", "events"]);
    assert_eq!(data, b"first");

    // Revoke the certificate behind ALICE's grant: exactly her stream is
    // cut, mid-flight, and she observes EOF without polling.
    assert_eq!(broker.certificate_revoked(&cert_a), 1);
    assert!(
        read_publish(&mut stream_a).is_err(),
        "alice's stream must be severed by the revocation"
    );

    // Bob is untouched: the next publish still reaches him.
    wait_for(|| broker.stats().subscribers == 1);
    broker.publish(&topic, b"second").unwrap();
    assert_eq!(read_publish(&mut stream_b).unwrap().1, b"second");

    // Re-revoking the same certificate cuts nothing further.
    assert_eq!(broker.certificate_revoked(&cert_a), 0);

    let stats = broker.stats();
    assert_eq!(stats.subscribes, 2);
    assert_eq!(stats.denied_subscribes, 2);
    assert_eq!(stats.cut_streams, 1);

    let events = audit.events();
    let cut: Vec<_> = events
        .iter()
        .filter(|e| e.decision == Decision::Revoke)
        .collect();
    assert_eq!(cut.len(), 1);
    assert_eq!(cut[0].surface, "broker-push");
    assert_eq!(cut[0].subject, Some(alice));
    assert!(cut[0].cert_hashes.contains(&cert_a));
    assert_eq!(
        events
            .iter()
            .filter(|e| e.decision == Decision::Grant && e.surface == "broker-sub")
            .count(),
        2
    );

    runtime.shutdown();
}

/// A subscriber that never reads stalls past the reactor's sink buffer
/// cap: it is disconnected, unsubscribed, counted in the per-surface
/// ledger, and audited — while the healthy subscriber keeps receiving.
#[test]
fn stalled_subscriber_is_shed_without_harming_healthy_ones() {
    let issuer_kp = kp(b"broker-stall-issuer");
    let issuer = Principal::key(&issuer_kp.public);
    let mut rng = DetRng::new(b"broker-stall-prover");
    let prover = Arc::new(Prover::with_rng(Box::new(move |b| rng.fill(b))));
    prover.add_key(issuer_kp);
    let grant = grant_tag(
        OBJECT_NS,
        &PathPattern::parse(&["rooms", "*", "events"]),
        &["subscribe"],
    );
    let healthy = account("healthy");
    let stalled = account("stalled");
    let proof_h = prover
        .delegate(&healthy, &issuer, grant.clone(), Validity::always(), false)
        .unwrap();
    let proof_s = prover
        .delegate(&stalled, &issuer, grant, Validity::always(), false)
        .unwrap();

    let runtime = ServerRuntime::new(PoolConfig::new("broker-stall", 2, 32));
    let broker = TopicBroker::with_clock(
        Arc::clone(&runtime),
        prover,
        OBJECT_NS,
        issuer,
        conference_table(),
        test_now,
    );
    let audit = Arc::new(Collector::default());
    broker.set_audit_emitter(Arc::clone(&audit) as Arc<dyn AuditEmitter>);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    broker.attach_subscribe_listener(listener).unwrap();

    let topic = ["rooms", "stall", "events"];
    let mut healthy_stream = subscribe_stream(addr, &topic, &healthy, &proof_h)
        .unwrap()
        .unwrap();
    // Subscribed, then never read: kernel buffers fill, then the
    // reactor's sink cap is the backstop.
    let _stalled_stream = subscribe_stream(addr, &topic, &stalled, &proof_s)
        .unwrap()
        .unwrap();
    wait_for(|| broker.stats().subscribers == 2);

    // The healthy side drains on a separate thread so its own socket
    // never backs up while we flood.
    let received = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&received);
    let reader = std::thread::spawn(move || {
        while read_publish(&mut healthy_stream).is_ok() {
            counter.fetch_add(1, Ordering::SeqCst);
        }
    });

    let chunk = vec![7u8; 32 * 1024];
    let deadline = Instant::now() + Duration::from_secs(30);
    while broker.stats().pruned == 0 {
        assert!(Instant::now() < deadline, "stall was never shed");
        // try_permit sheds when the pool is momentarily full; that's
        // fine, keep pushing.
        let _ = broker.publish(&topic, &chunk);
        std::thread::sleep(Duration::from_millis(2));
    }

    wait_for(|| broker.stats().subscribers == 1);
    let stats = broker.stats();
    assert_eq!(stats.pruned, 1);
    assert!(
        runtime
            .sheds_by_surface()
            .iter()
            .any(|(surface, n)| surface == "broker-push" && *n >= 1),
        "the stall must be counted on the push surface: {:?}",
        runtime.sheds_by_surface()
    );
    // The shed/prune was audited with the stalled subject's topic.
    assert!(audit
        .events()
        .iter()
        .any(|e| e.decision == Decision::Shed && e.surface == "broker-push"));

    // The healthy subscriber kept receiving throughout the flood.
    assert!(received.load(Ordering::SeqCst) > 0);
    broker.publish(&topic, b"after-the-storm").unwrap();
    let before = received.load(Ordering::SeqCst);
    wait_for(|| received.load(Ordering::SeqCst) > before);

    runtime.shutdown();
    reader.join().unwrap();
}

/// An in-memory subscriber sink (no fd cost), for presence-style scale.
#[derive(Default)]
struct MemSink {
    open: AtomicBool,
    delivered: AtomicU64,
}

impl MemSink {
    fn new() -> Arc<MemSink> {
        Arc::new(MemSink {
            open: AtomicBool::new(true),
            delivered: AtomicU64::new(0),
        })
    }
}

impl SubscriberSink for MemSink {
    fn deliver(&self, _frame: &[u8]) -> bool {
        if self.open.load(Ordering::SeqCst) {
            self.delivered.fetch_add(1, Ordering::SeqCst);
            true
        } else {
            false
        }
    }
    fn is_open(&self) -> bool {
        self.open.load(Ordering::SeqCst)
    }
    fn close(&self) {
        self.open.store(false, Ordering::SeqCst);
    }
}

/// Presence at scale, in memory: hundreds of subscribers whose grants
/// descend from two team certificates.  Revoking ONE team's certificate
/// cuts every stream in that team and none outside it, and the broker's
/// cut counter matches the prover's invalidation counters.
#[test]
fn one_revocation_cuts_exactly_one_teams_streams() {
    // Debug-build signing dominates here; the 5k-subscriber version of
    // this scenario runs release-mode in `benches/broker_fanout.rs`.
    const PER_TEAM: usize = 100;

    let issuer_kp = kp(b"broker-scale-issuer");
    let issuer = Principal::key(&issuer_kp.public);
    let team_a_kp = kp(b"broker-scale-team-a");
    let team_b_kp = kp(b"broker-scale-team-b");
    let team_a = Principal::key(&team_a_kp.public);
    let team_b = Principal::key(&team_b_kp.public);
    let mut rng = DetRng::new(b"broker-scale-prover");
    let prover = Arc::new(Prover::with_rng(Box::new(move |b| rng.fill(b))));
    prover.add_key(issuer_kp);
    prover.add_key(team_a_kp);
    prover.add_key(team_b_kp);

    let grant = grant_tag(
        OBJECT_NS,
        &PathPattern::parse(&["rooms", "*", "events"]),
        &["subscribe"],
    );
    // Team leads hold delegable authority from the issuer; each member's
    // own grant descends from their team's certificate.
    let team_a_proof = prover
        .delegate(&team_a, &issuer, grant.clone(), Validity::always(), true)
        .unwrap();
    let team_b_proof = prover
        .delegate(&team_b, &issuer, grant.clone(), Validity::always(), true)
        .unwrap();
    let cert_team_a = team_a_proof.cert_hashes()[0].clone();
    let cert_team_b = team_b_proof.cert_hashes()[0].clone();

    let runtime = ServerRuntime::new(PoolConfig::new("broker-scale", 2, 16));
    let broker = TopicBroker::with_clock(
        Arc::clone(&runtime),
        Arc::clone(&prover),
        OBJECT_NS,
        issuer,
        conference_table(),
        test_now,
    );

    let topic = ["rooms", "main", "events"];
    let mut sinks_a = Vec::new();
    let mut sinks_b = Vec::new();
    for i in 0..PER_TEAM {
        for (tname, team, sinks) in
            [("a", &team_a, &mut sinks_a), ("b", &team_b, &mut sinks_b)]
        {
            let subject = account(&format!("member-{tname}-{i}"));
            prover
                .delegate(&subject, team, grant.clone(), Validity::always(), false)
                .unwrap();
            let sink = MemSink::new();
            broker
                .subscribe_local(subject, &topic, Arc::clone(&sink) as Arc<dyn SubscriberSink>)
                .expect("chain through the team cert must authorize");
            sinks.push(sink);
        }
    }
    assert_eq!(broker.stats().subscribers, (PER_TEAM * 2) as u64);

    // Every parked presence receives one publish.
    broker.publish(&topic, b"announce").unwrap();
    wait_for(|| broker.stats().deliveries == (PER_TEAM * 2) as u64);

    // One revocation: team A's certificate dies.  The prover's warm
    // edges AND the broker's streams built on it go together.
    let cuts = broker.certificate_revoked(&cert_team_a);
    let prover_evicted = prover.invalidate_cert(&cert_team_a);
    assert_eq!(cuts, PER_TEAM, "exactly team A's streams are cut");
    assert_eq!(broker.stats().cut_streams, PER_TEAM as u64);
    assert!(
        prover_evicted > 0,
        "the prover held warm edges through the dead certificate"
    );
    assert!(prover.stats().cert_invalidations >= 1);
    assert!(sinks_a.iter().all(|s| !s.is_open()), "team A severed");
    assert!(sinks_b.iter().all(|s| s.is_open()), "team B untouched");
    assert_eq!(broker.stats().subscribers, PER_TEAM as u64);

    // Survivors still receive; the dead streams take nothing.
    let before: u64 = sinks_b.iter().map(|s| s.delivered.load(Ordering::SeqCst)).sum();
    broker.publish(&topic, b"after-cut").unwrap();
    wait_for(|| {
        sinks_b
            .iter()
            .map(|s| s.delivered.load(Ordering::SeqCst))
            .sum::<u64>()
            == before + PER_TEAM as u64
    });
    assert!(sinks_a
        .iter()
        .all(|s| s.delivered.load(Ordering::SeqCst) == 1));

    // Team B's certificate still cuts cleanly afterwards.
    assert_eq!(broker.certificate_revoked(&cert_team_b), PER_TEAM);
    assert_eq!(broker.stats().subscribers, 0);

    runtime.shutdown();
}

fn wait_for(cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "condition never held");
        std::thread::sleep(Duration::from_millis(2));
    }
}
