//! Failure injection into the secure-channel handshake: a hostile or broken
//! peer must produce clean errors, never panics or silent acceptance.

use snowflake_channel::{PipeTransport, SecureChannel, Transport};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_sexpr::Sexp;

fn kp(seed: &str) -> KeyPair {
    let mut rng = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

#[test]
fn garbage_client_hello_rejected() {
    for garbage in [
        &b"not an s-expression"[..],
        &b"(hello)"[..],
        &b"(hello (role server) (dh #00#) (nonce #00#))"[..], // wrong role
        &b"(resume)"[..],                                     // resume without ticket
        &b""[..],
    ] {
        let (mut ct, st) = PipeTransport::pair();
        let server_key = kp("garbage-server");
        let handle = std::thread::spawn(move || {
            let mut rng = DetRng::new(b"srv");
            SecureChannel::server(Box::new(st), &server_key, None, &mut |b| rng.fill(b))
                .err()
                .map(|e| e.to_string())
        });
        ct.send(garbage).unwrap();
        let err = handle.join().unwrap();
        assert!(
            err.is_some(),
            "server must reject {:?}",
            String::from_utf8_lossy(garbage)
        );
    }
}

#[test]
fn invalid_dh_share_rejected() {
    // A hello whose DH share is the identity element (small-subgroup
    // confinement attempt).
    let (mut ct, st) = PipeTransport::pair();
    let server_key = kp("dh-server");
    let handle = std::thread::spawn(move || {
        let mut rng = DetRng::new(b"srv");
        SecureChannel::server(Box::new(st), &server_key, None, &mut |b| rng.fill(b))
            .err()
            .map(|e| e.to_string())
    });
    let evil_hello = Sexp::tagged(
        "hello",
        vec![
            Sexp::tagged("role", vec![Sexp::from("client")]),
            Sexp::tagged("dh", vec![Sexp::atom(vec![1u8])]), // g^x = 1
            Sexp::tagged("nonce", vec![Sexp::atom(vec![0u8; 16])]),
        ],
    );
    ct.send(&evil_hello.canonical()).unwrap();
    // The server may fail at agreement or while awaiting auth; either way
    // it must error out, not complete.
    let _ = ct.send(b"(anonymous)");
    let err = handle.join().unwrap();
    assert!(err.is_some(), "identity DH share must not yield a channel");
}

#[test]
fn client_rejects_server_with_wrong_auth_signature() {
    // A MITM replays the real server hello but cannot sign the transcript.
    let (ct, mut st) = PipeTransport::pair();
    let real_server = kp("mitm-real");
    let handle = std::thread::spawn(move || {
        // Fake server: produce a plausible hello with its own key but sign
        // the transcript with a *different* key.
        let mut rng = DetRng::new(b"fake");
        let fake_signer = {
            let mut r = DetRng::new(b"fake-signer");
            KeyPair::generate(Group::test512(), &mut |b| r.fill(b))
        };
        let _client_hello = st.recv().unwrap();
        let dh = snowflake_crypto::DhSecret::generate(Group::test512(), &mut |b| rng.fill(b));
        let hello = Sexp::tagged(
            "hello",
            vec![
                Sexp::tagged("role", vec![Sexp::from("server")]),
                Sexp::tagged("dh", vec![Sexp::atom(dh.public.to_bytes_be())]),
                Sexp::tagged("nonce", vec![Sexp::atom(vec![7u8; 16])]),
                Sexp::tagged("key", vec![real_server.public.to_sexp()]),
            ],
        );
        st.send(&hello.canonical()).unwrap();
        // Sign garbage with the wrong key.
        let bogus_sig = fake_signer.sign(b"not the transcript", &mut |b| rng.fill(b));
        st.send(&bogus_sig.to_sexp().canonical()).unwrap();
    });

    let mut rng = DetRng::new(b"cli");
    let result = SecureChannel::client(Box::new(ct), None, None, &mut |b| rng.fill(b));
    assert!(
        result.is_err(),
        "client must reject a server that cannot sign the transcript"
    );
    handle.join().unwrap();
}

#[test]
fn truncated_handshake_is_clean_error() {
    let (ct, st) = PipeTransport::pair();
    let server_key = kp("trunc-server");
    let handle = std::thread::spawn(move || {
        let mut rng = DetRng::new(b"srv");
        SecureChannel::server(Box::new(st), &server_key, None, &mut |b| rng.fill(b))
            .err()
            .map(|e| e.to_string())
    });
    // Client connects and immediately disappears.
    drop(ct);
    let err = handle.join().unwrap();
    assert!(err.is_some());
}
