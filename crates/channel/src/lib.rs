//! Request channels (paper §5).
//!
//! "When a client makes a request of a server, the server needs some
//! mechanism to ensure that the client really uttered the request."  This
//! crate implements the paper's channel mechanisms and their embodiment as
//! principals:
//!
//! * [`transport`] — framed byte transports: an in-memory duplex pipe (the
//!   paper's Java "IPC" pipe) and length-prefixed TCP.
//! * [`secure`] — the ssh-like secure channel of §5.1: Diffie–Hellman key
//!   exchange signed by each end's long-term key, then an encrypted,
//!   MAC-protected record layer.  "Either end of the connection can query
//!   its socket to discover the public key associated with the opposite
//!   end."  The channel itself becomes a [`snowflake_core::Principal`], and
//!   the implementation's promise `M ⇒ K_CH ⇒ K_peer` is exported as
//!   assumption statements for the verifier.
//! * [`local`] — the trusted local channel of §5.2: within one process a
//!   trusted broker (the paper's "JVM and a few system classes") constructs
//!   key pairs, knows who holds them, and vouches for colocated endpoints,
//!   so no encryption or key exchange is needed.
//!
//! The secure channel also supports **session resumption** and an
//! **anonymous-client** mode; together these provide the SSL-like baseline
//! configurations that the paper's Figure 8 compares against.

pub mod local;
pub mod secure;
pub mod transport;

pub use local::{LocalBroker, LocalChannel};
pub use secure::{ChannelParts, RecordCrypto, SecureChannel, SessionCache};
pub use transport::{PipeTransport, TcpTransport, Transport, DEFAULT_PIPE_CAPACITY};

use snowflake_core::{ChannelId, Delegation, Principal};
use snowflake_crypto::{HashVal, PublicKey};
use std::io;

/// A channel that carries frames *and* identifies itself and its peer to the
/// authorization layer.
///
/// Both the secure channel and the broker-vouched local channel implement
/// this; the RMI and HTTP layers are written against it, which is the
/// paper's "policy separated from mechanism": the same authorization toolkit
/// runs over whichever mechanism policy allows (§2.2).
pub trait AuthChannel: Send {
    /// Sends one frame.
    fn send(&mut self, msg: &[u8]) -> io::Result<()>;
    /// Receives one frame.
    fn recv(&mut self) -> io::Result<Vec<u8>>;
    /// This channel's identity.
    fn channel_id(&self) -> ChannelId;
    /// The peer's authenticated public key, if any.
    fn peer_key(&self) -> Option<&PublicKey>;
    /// The assumption `K_CH ⇒ K_peer` this endpoint's machinery vouches.
    fn peer_binding(&self) -> Option<Delegation>;
}

impl AuthChannel for SecureChannel {
    fn send(&mut self, msg: &[u8]) -> io::Result<()> {
        SecureChannel::send(self, msg)
    }
    fn recv(&mut self) -> io::Result<Vec<u8>> {
        SecureChannel::recv(self)
    }
    fn channel_id(&self) -> ChannelId {
        SecureChannel::channel_id(self)
    }
    fn peer_key(&self) -> Option<&PublicKey> {
        SecureChannel::peer_key(self)
    }
    fn peer_binding(&self) -> Option<Delegation> {
        SecureChannel::peer_binding(self)
    }
}

impl AuthChannel for LocalChannel {
    fn send(&mut self, msg: &[u8]) -> io::Result<()> {
        LocalChannel::send(self, msg)
    }
    fn recv(&mut self) -> io::Result<Vec<u8>> {
        LocalChannel::recv(self)
    }
    fn channel_id(&self) -> ChannelId {
        LocalChannel::channel_id(self)
    }
    fn peer_key(&self) -> Option<&PublicKey> {
        Some(LocalChannel::peer_key(self))
    }
    fn peer_binding(&self) -> Option<Delegation> {
        Some(LocalChannel::peer_binding(self))
    }
}

/// A bare transport exposed as an (unauthenticated) channel.
///
/// Used by the "basic RMI" baseline of Figure 6: frames flow with no
/// security promises, so there is no peer key and no binding.
pub struct PlainChannel<T: Transport> {
    inner: T,
    id: ChannelId,
}

impl<T: Transport> PlainChannel<T> {
    /// Wraps a transport with a fresh anonymous channel identity.
    pub fn new(inner: T, label: &str) -> PlainChannel<T> {
        PlainChannel {
            inner,
            id: ChannelId {
                kind: "plain".into(),
                id: HashVal::of(label.as_bytes()),
            },
        }
    }
}

impl<T: Transport> AuthChannel for PlainChannel<T> {
    fn send(&mut self, msg: &[u8]) -> io::Result<()> {
        self.inner.send(msg)
    }
    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.inner.recv()
    }
    fn channel_id(&self) -> ChannelId {
        self.id.clone()
    }
    fn peer_key(&self) -> Option<&PublicKey> {
        None
    }
    fn peer_binding(&self) -> Option<Delegation> {
        None
    }
}

/// Builds the assumption statement "message M speaks for channel CH" that a
/// server records when it witnesses `msg` arrive on `channel`.
///
/// This is the `M ⇒ K_CH` step of the paper's Figure 3 reasoning; the
/// verifier's own channel machinery vouches for it (it saw the bytes arrive)
/// so it enters the [`snowflake_core::VerifyCtx`] as a trusted assumption.
pub fn utterance(channel: &ChannelId, msg: &[u8]) -> Delegation {
    Delegation::axiom(
        Principal::Message(HashVal::of(msg)),
        Principal::Channel(channel.clone()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utterance_names_message_and_channel() {
        let ch = ChannelId {
            kind: "ssh".into(),
            id: HashVal::of(b"t"),
        };
        let d = utterance(&ch, b"GET /x");
        assert_eq!(d.subject, Principal::message(b"GET /x"));
        assert_eq!(d.issuer, Principal::Channel(ch));
        // Different messages yield different assumption statements.
        let d2 = utterance(
            &ChannelId {
                kind: "ssh".into(),
                id: HashVal::of(b"t"),
            },
            b"GET /y",
        );
        assert_ne!(d.hash(), d2.hash());
    }
}
