//! The trusted local channel (paper §5.2).
//!
//! "If a server trusts its host machine enough to run its software, it may
//! as well trust the host to identify parties connected to local IPC
//! channels."  The [`LocalBroker`] plays the paper's trusted JVM role: it
//! *constructs the key pairs* for colocated parties, so it knows — without
//! any cryptography — which party holds the private key corresponding to a
//! public key.  Connecting two registered parties yields plain in-memory
//! pipes plus broker-vouched peer identities: "no encryption or system-call
//! overhead … only serialization costs."

use snowflake_core::sync::LockExt;
use crate::transport::{PipeTransport, Transport};
use std::sync::Mutex;
use snowflake_core::{ChannelId, Delegation, Principal};
use snowflake_crypto::{Group, HashVal, KeyPair, PublicKey};
use std::collections::HashMap;
use std::io;
use std::sync::Arc;

/// The in-process trusted authority that vouches for colocated endpoints.
pub struct LocalBroker {
    id: HashVal,
    registry: Mutex<HashMap<String, PublicKey>>,
    counter: Mutex<u64>,
}

impl LocalBroker {
    /// Creates a broker with a unique identity derived from `label`.
    pub fn new(label: &str) -> Arc<LocalBroker> {
        Arc::new(LocalBroker {
            id: HashVal::of(format!("local-broker:{label}").as_bytes()),
            registry: Mutex::new(HashMap::new()),
            counter: Mutex::new(0),
        })
    }

    /// The broker's identity hash (appears in `Local` principals).
    pub fn id(&self) -> &HashVal {
        &self.id
    }

    /// Creates a key pair *inside the trusted broker* and registers its
    /// ownership under `name`.
    ///
    /// Because the broker constructed the pair, it can later vouch that the
    /// party named `name` holds the private key — the paper's "the trusted
    /// system class knows whether a client holds the private key
    /// corresponding to a given public key."
    pub fn create_identity(&self, name: &str, rand_bytes: &mut dyn FnMut(&mut [u8])) -> KeyPair {
        let kp = KeyPair::generate(Group::test512(), rand_bytes);
        self.registry
            .plock()
            .insert(name.to_string(), kp.public.clone());
        kp
    }

    /// The public key registered under `name`, if any.
    pub fn lookup(&self, name: &str) -> Option<PublicKey> {
        self.registry.plock().get(name).cloned()
    }

    /// Connects two registered parties with plain pipes and broker-vouched
    /// identities.
    ///
    /// Returns `(a_end, b_end)` or an error naming the missing party.
    pub fn connect(
        self: &Arc<Self>,
        a_name: &str,
        b_name: &str,
    ) -> io::Result<(LocalChannel, LocalChannel)> {
        let a_key = self.lookup(a_name).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("unknown party {a_name}"))
        })?;
        let b_key = self.lookup(b_name).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("unknown party {b_name}"))
        })?;

        let serial = {
            let mut c = self.counter.plock();
            *c += 1;
            *c
        };
        let channel_id = ChannelId {
            kind: "local".into(),
            id: HashVal::of(format!("{}:{a_name}:{b_name}:{serial}", self.id).as_bytes()),
        };
        let (a_pipe, b_pipe) = PipeTransport::pair();
        Ok((
            LocalChannel {
                channel_id: channel_id.clone(),
                pipe: a_pipe,
                peer_name: b_name.to_string(),
                peer_key: b_key,
            },
            LocalChannel {
                channel_id,
                pipe: b_pipe,
                peer_name: a_name.to_string(),
                peer_key: a_key,
            },
        ))
    }
}

/// One endpoint of a broker-vouched local channel (no encryption).
pub struct LocalChannel {
    channel_id: ChannelId,
    pipe: PipeTransport,
    peer_name: String,
    peer_key: PublicKey,
}

impl LocalChannel {
    /// The channel identity (kind `local`).
    pub fn channel_id(&self) -> ChannelId {
        self.channel_id.clone()
    }

    /// The channel embodied as a principal.
    pub fn principal(&self) -> Principal {
        Principal::Channel(self.channel_id.clone())
    }

    /// The peer's public key, as vouched by the broker.
    pub fn peer_key(&self) -> &PublicKey {
        &self.peer_key
    }

    /// The peer's broker-registered name.
    pub fn peer_name(&self) -> &str {
        &self.peer_name
    }

    /// The assumption `K_CH ⇒ K_peer`, vouched by the local broker rather
    /// than by any key exchange.
    pub fn peer_binding(&self) -> Delegation {
        Delegation::axiom(
            Principal::Channel(self.channel_id.clone()),
            Principal::key(&self.peer_key),
        )
    }

    /// Sends one frame (plaintext — the host is trusted).
    pub fn send(&mut self, msg: &[u8]) -> io::Result<()> {
        self.pipe.send(msg)
    }

    /// Receives one frame.
    pub fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.pipe.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowflake_crypto::DetRng;

    #[test]
    fn broker_vouches_identities() {
        let broker = LocalBroker::new("jvm-1");
        let mut rng = DetRng::new(b"r");
        let alice = broker.create_identity("alice", &mut |b| rng.fill(b));
        let server = broker.create_identity("server", &mut |b| rng.fill(b));

        let (mut a, mut s) = broker.connect("alice", "server").unwrap();
        assert_eq!(a.peer_key(), &server.public);
        assert_eq!(s.peer_key(), &alice.public);
        assert_eq!(a.peer_name(), "server");
        assert_eq!(s.peer_name(), "alice");
        assert_eq!(a.channel_id(), s.channel_id());
        assert_eq!(a.channel_id().kind, "local");

        a.send(b"fast local request").unwrap();
        assert_eq!(s.recv().unwrap(), b"fast local request");
    }

    #[test]
    fn binding_names_channel_and_peer() {
        let broker = LocalBroker::new("jvm-2");
        let mut rng = DetRng::new(b"r");
        let alice = broker.create_identity("alice", &mut |b| rng.fill(b));
        broker.create_identity("server", &mut |b| rng.fill(b));
        let (_a, s) = broker.connect("alice", "server").unwrap();
        let b = s.peer_binding();
        assert_eq!(b.subject, s.principal());
        assert_eq!(b.issuer, Principal::key(&alice.public));
    }

    #[test]
    fn unknown_party_rejected() {
        let broker = LocalBroker::new("jvm-3");
        let mut rng = DetRng::new(b"r");
        broker.create_identity("alice", &mut |b| rng.fill(b));
        assert!(broker.connect("alice", "ghost").is_err());
        assert!(broker.connect("ghost", "alice").is_err());
    }

    #[test]
    fn channel_ids_are_unique_per_connection() {
        let broker = LocalBroker::new("jvm-4");
        let mut rng = DetRng::new(b"r");
        broker.create_identity("a", &mut |b| rng.fill(b));
        broker.create_identity("b", &mut |b| rng.fill(b));
        let (c1, _) = broker.connect("a", "b").unwrap();
        let (c2, _) = broker.connect("a", "b").unwrap();
        assert_ne!(c1.channel_id(), c2.channel_id());
    }

    #[test]
    fn distinct_brokers_distinct_ids() {
        assert_ne!(LocalBroker::new("x").id(), LocalBroker::new("y").id());
    }
}
