//! Framed byte transports.
//!
//! Channels move discrete frames (handshake messages, encrypted records,
//! RPC envelopes).  Two transports are provided: an in-memory duplex pipe
//! for colocated parties and tests, and length-prefixed TCP for loopback or
//! real networks.

use std::sync::mpsc::{channel as unbounded, sync_channel, Receiver, Sender, SyncSender};
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Default frame capacity for [`PipeTransport::bounded_pair`]: deep enough
/// to ride out bursts, shallow enough that a stalled consumer stalls its
/// producer instead of growing an unbounded buffer.
pub const DEFAULT_PIPE_CAPACITY: usize = 64;

/// A reliable, ordered, framed byte transport.
pub trait Transport: Send {
    /// Sends one frame.
    fn send(&mut self, frame: &[u8]) -> io::Result<()>;
    /// Receives one frame, blocking.
    fn recv(&mut self) -> io::Result<Vec<u8>>;
}

/// The sending half of a pipe: bounded (production) or unbounded (tests).
enum PipeTx {
    Unbounded(Sender<Vec<u8>>),
    Bounded(SyncSender<Vec<u8>>),
}

/// An in-memory duplex pipe ("implemented without any operating system IPC
/// services", §5.2).
///
/// Production code uses [`PipeTransport::bounded_pair`], whose `send`
/// blocks once `capacity` frames are in flight — real backpressure, like
/// a TCP socket with a full send window.  The unbounded
/// [`PipeTransport::pair`] exists only for tests.
pub struct PipeTransport {
    tx: PipeTx,
    rx: Receiver<Vec<u8>>,
}

impl PipeTransport {
    /// Creates a connected pair of **unbounded** pipe endpoints.
    ///
    /// Tests only: nothing limits how far a producer can run ahead of a
    /// stalled consumer.  Serving paths use
    /// [`PipeTransport::bounded_pair`], which exerts backpressure.
    pub fn pair() -> (PipeTransport, PipeTransport) {
        let (atx, arx) = unbounded();
        let (btx, brx) = unbounded();
        (
            PipeTransport {
                tx: PipeTx::Unbounded(atx),
                rx: brx,
            },
            PipeTransport {
                tx: PipeTx::Unbounded(btx),
                rx: arx,
            },
        )
    }

    /// Creates a connected pair of **bounded** pipe endpoints: at most
    /// `capacity` frames may be in flight per direction, after which
    /// `send` blocks until the peer drains (backpressure).
    pub fn bounded_pair(capacity: usize) -> (PipeTransport, PipeTransport) {
        let capacity = capacity.max(1);
        let (atx, arx) = sync_channel(capacity);
        let (btx, brx) = sync_channel(capacity);
        (
            PipeTransport {
                tx: PipeTx::Bounded(atx),
                rx: brx,
            },
            PipeTransport {
                tx: PipeTx::Bounded(btx),
                rx: arx,
            },
        )
    }
}

impl Transport for PipeTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        let result = match &self.tx {
            PipeTx::Unbounded(tx) => tx.send(frame.to_vec()).map_err(|_| ()),
            // Blocks while the pipe is at capacity: a slow peer slows the
            // sender instead of growing an unbounded buffer.
            PipeTx::Bounded(tx) => tx.send(frame.to_vec()).map_err(|_| ()),
        };
        result.map_err(|()| io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.rx
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed"))
    }
}

/// Maximum accepted frame size (prevents a hostile peer from forcing a
/// multi-gigabyte allocation with a forged length prefix).
pub const MAX_FRAME: usize = 64 << 20;

/// Length-prefixed frames over a TCP stream.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wraps a connected TCP stream.
    pub fn new(stream: TcpStream) -> TcpTransport {
        // Snowflake frames are small and latency-sensitive.
        let _ = stream.set_nodelay(true);
        TcpTransport { stream }
    }

    /// Bounds how long `recv` may sit in a read (`None` = forever).
    ///
    /// Servers that dedicate a pooled worker to a connection's lifetime
    /// set this so an idle or parked peer times out and frees the worker
    /// instead of occupying it indefinitely.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        let len: u32 = frame
            .len()
            .try_into()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
        self.stream.write_all(&len.to_be_bytes())?;
        self.stream.write_all(frame)?;
        self.stream.flush()
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let mut len_buf = [0u8; 4];
        self.stream.read_exact(&mut len_buf)?;
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame exceeds MAX_FRAME",
            ));
        }
        let mut buf = vec![0u8; len];
        self.stream.read_exact(&mut buf)?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn pipe_roundtrip() {
        let (mut a, mut b) = PipeTransport::pair();
        a.send(b"hello").unwrap();
        a.send(b"world").unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        assert_eq!(b.recv().unwrap(), b"world");
        b.send(b"reply").unwrap();
        assert_eq!(a.recv().unwrap(), b"reply");
    }

    #[test]
    fn pipe_detects_closed_peer() {
        let (mut a, b) = PipeTransport::pair();
        drop(b);
        assert!(a.send(b"x").is_err());
        assert!(a.recv().is_err());
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream);
            let msg = t.recv().unwrap();
            t.send(&msg).unwrap(); // echo
        });
        let mut t = TcpTransport::new(TcpStream::connect(addr).unwrap());
        let payload: Vec<u8> = (0..100_000).map(|i| (i % 251) as u8).collect();
        t.send(&payload).unwrap();
        assert_eq!(t.recv().unwrap(), payload);
        handle.join().unwrap();
    }

    #[test]
    fn tcp_rejects_oversize_frame() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Forge a huge length prefix.
            stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
        });
        let mut t = TcpTransport::new(TcpStream::connect(addr).unwrap());
        assert!(t.recv().is_err());
        handle.join().unwrap();
    }

    #[test]
    fn empty_frames_allowed() {
        let (mut a, mut b) = PipeTransport::pair();
        a.send(b"").unwrap();
        assert_eq!(b.recv().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn bounded_pipe_roundtrip_and_close() {
        let (mut a, mut b) = PipeTransport::bounded_pair(4);
        a.send(b"hello").unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        b.send(b"reply").unwrap();
        assert_eq!(a.recv().unwrap(), b"reply");
        drop(b);
        assert!(a.send(b"x").is_err());
        assert!(a.recv().is_err());
    }

    #[test]
    fn bounded_pipe_send_blocks_at_capacity() {
        let (mut a, mut b) = PipeTransport::bounded_pair(1);
        a.send(b"one").unwrap();
        let producer = std::thread::spawn(move || {
            a.send(b"two").unwrap();
            a
        });
        // The second send cannot complete until the consumer drains.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!producer.is_finished(), "send must block while the pipe is full");
        assert_eq!(b.recv().unwrap(), b"one");
        producer.join().unwrap();
        assert_eq!(b.recv().unwrap(), b"two");
    }
}
