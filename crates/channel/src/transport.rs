//! Framed byte transports.
//!
//! Channels move discrete frames (handshake messages, encrypted records,
//! RPC envelopes).  Two transports are provided: an in-memory duplex pipe
//! for colocated parties and tests, and length-prefixed TCP for loopback or
//! real networks.

use std::sync::mpsc::{channel as unbounded, Receiver, Sender};
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// A reliable, ordered, framed byte transport.
pub trait Transport: Send {
    /// Sends one frame.
    fn send(&mut self, frame: &[u8]) -> io::Result<()>;
    /// Receives one frame, blocking.
    fn recv(&mut self) -> io::Result<Vec<u8>>;
}

/// An in-memory duplex pipe ("implemented without any operating system IPC
/// services", §5.2).
pub struct PipeTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl PipeTransport {
    /// Creates a connected pair of pipe endpoints.
    pub fn pair() -> (PipeTransport, PipeTransport) {
        let (atx, arx) = unbounded();
        let (btx, brx) = unbounded();
        (
            PipeTransport { tx: atx, rx: brx },
            PipeTransport { tx: btx, rx: arx },
        )
    }
}

impl Transport for PipeTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.rx
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed"))
    }
}

/// Maximum accepted frame size (prevents a hostile peer from forcing a
/// multi-gigabyte allocation with a forged length prefix).
pub const MAX_FRAME: usize = 64 << 20;

/// Length-prefixed frames over a TCP stream.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wraps a connected TCP stream.
    pub fn new(stream: TcpStream) -> TcpTransport {
        // Snowflake frames are small and latency-sensitive.
        let _ = stream.set_nodelay(true);
        TcpTransport { stream }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        let len: u32 = frame
            .len()
            .try_into()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
        self.stream.write_all(&len.to_be_bytes())?;
        self.stream.write_all(frame)?;
        self.stream.flush()
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let mut len_buf = [0u8; 4];
        self.stream.read_exact(&mut len_buf)?;
        let len = u32::from_be_bytes(len_buf) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame exceeds MAX_FRAME",
            ));
        }
        let mut buf = vec![0u8; len];
        self.stream.read_exact(&mut buf)?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn pipe_roundtrip() {
        let (mut a, mut b) = PipeTransport::pair();
        a.send(b"hello").unwrap();
        a.send(b"world").unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        assert_eq!(b.recv().unwrap(), b"world");
        b.send(b"reply").unwrap();
        assert_eq!(a.recv().unwrap(), b"reply");
    }

    #[test]
    fn pipe_detects_closed_peer() {
        let (mut a, b) = PipeTransport::pair();
        drop(b);
        assert!(a.send(b"x").is_err());
        assert!(a.recv().is_err());
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream);
            let msg = t.recv().unwrap();
            t.send(&msg).unwrap(); // echo
        });
        let mut t = TcpTransport::new(TcpStream::connect(addr).unwrap());
        let payload: Vec<u8> = (0..100_000).map(|i| (i % 251) as u8).collect();
        t.send(&payload).unwrap();
        assert_eq!(t.recv().unwrap(), payload);
        handle.join().unwrap();
    }

    #[test]
    fn tcp_rejects_oversize_frame() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Forge a huge length prefix.
            stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
        });
        let mut t = TcpTransport::new(TcpStream::connect(addr).unwrap());
        assert!(t.recv().is_err());
        handle.join().unwrap();
    }

    #[test]
    fn empty_frames_allowed() {
        let (mut a, mut b) = PipeTransport::pair();
        a.send(b"").unwrap();
        assert_eq!(b.recv().unwrap(), Vec::<u8>::new());
    }
}
