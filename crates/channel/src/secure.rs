//! The ssh-like secure channel (paper §5.1).
//!
//! "To implement a secure channel, we built a Java implementation of the ssh
//! protocol…  Ssh ensures that the channel is secure between some pair of
//! public keys.  To make that guarantee useful, we embody the channel as a
//! principal."
//!
//! The handshake here keeps exactly the properties the logic consumes:
//!
//! 1. Each side sends a *hello* carrying an ephemeral Diffie–Hellman share,
//!    a nonce, and (optionally for the client) its long-term public key
//!    (`K_1`/`K_2` of Figure 3).
//! 2. The DH agreement yields the symmetric session secret (`K_CH`).
//! 3. Each keyed side signs the handshake transcript with its long-term
//!    key, convincing the peer that `K_CH ⇒ K_peer`.
//! 4. Subsequent frames travel encrypted (ChaCha20) and authenticated
//!    (HMAC-SHA256) with per-direction keys and sequence numbers.
//!
//! An anonymous-client mode (no client key, server key only) and a
//! session-resumption mode (no public-key operations at all) provide the
//! SSL-baseline cost points of the paper's Figure 8: *new session* vs
//! *cached session* vs *client verification on/off*.

use snowflake_core::sync::LockExt;
use crate::transport::Transport;
use std::sync::Mutex;
use snowflake_bigint::Ubig;
use snowflake_core::{ChannelId, Delegation, Principal};
use snowflake_crypto::chacha20::ChaCha20;
use snowflake_crypto::hmac::{ct_eq, derive_key, hmac_sha256};
use snowflake_crypto::{DhSecret, Group, HashVal, KeyPair, PublicKey, Signature};
use snowflake_sexpr::Sexp;
use std::collections::HashMap;
use std::io;
use std::sync::Arc;

/// MAC length appended to every record.
const MAC_LEN: usize = 32;

/// A cache of resumable sessions, shared by reference between connections.
///
/// Servers key entries by ticket; clients key them by server name.
#[derive(Default, Clone)]
pub struct SessionCache {
    inner: Arc<Mutex<HashMap<Vec<u8>, CachedSession>>>,
}

#[derive(Clone)]
struct CachedSession {
    master: [u8; 32],
    peer_key: Option<PublicKey>,
}

impl SessionCache {
    /// Creates an empty cache.
    pub fn new() -> SessionCache {
        SessionCache::default()
    }

    fn put(&self, key: Vec<u8>, session: CachedSession) {
        self.inner.plock().insert(key, session);
    }

    fn get(&self, key: &[u8]) -> Option<CachedSession> {
        self.inner.plock().get(key).cloned()
    }

    /// Number of cached sessions.
    pub fn len(&self) -> usize {
        self.inner.plock().len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.inner.plock().is_empty()
    }
}

/// A secure channel endpoint after a completed handshake.
pub struct SecureChannel {
    transport: Box<dyn Transport>,
    session_id: HashVal,
    peer_key: Option<PublicKey>,
    resumed: bool,
    crypto: RecordCrypto,
}

/// The record layer of an established session, separated from the
/// transport: per-direction stream ciphers, MAC keys, and sequence
/// numbers.
///
/// Owning this (plus the handshake-derived identity facts) is enough to
/// continue a session over *any* byte path — the connection reactor uses
/// exactly that to take over a handshaken socket without keeping the
/// blocking [`Transport`] around.  Records sealed here are byte-identical
/// to what [`SecureChannel::send`] puts on the wire.
pub struct RecordCrypto {
    send_cipher: ChaCha20,
    send_mac: [u8; 32],
    send_seq: u64,
    recv_cipher: ChaCha20,
    recv_mac: [u8; 32],
    recv_seq: u64,
}

impl RecordCrypto {
    /// Encrypts and MACs one record, advancing the send sequence.
    pub fn seal(&mut self, msg: &[u8]) -> Vec<u8> {
        let mut ct = msg.to_vec();
        self.send_cipher.apply(&mut ct);
        let mut mac_input = self.send_seq.to_be_bytes().to_vec();
        mac_input.extend_from_slice(&ct);
        let mac = hmac_sha256(&self.send_mac, &mac_input);
        self.send_seq += 1;
        ct.extend_from_slice(&mac);
        ct
    }

    /// Authenticates and decrypts one record, advancing the receive
    /// sequence.  The MAC covers the sequence number, so replayed or
    /// reordered records fail here.
    pub fn open(&mut self, frame: &[u8]) -> io::Result<Vec<u8>> {
        if frame.len() < MAC_LEN {
            return Err(io_err("record shorter than its MAC"));
        }
        let (ct, mac) = frame.split_at(frame.len() - MAC_LEN);
        let mut mac_input = self.recv_seq.to_be_bytes().to_vec();
        mac_input.extend_from_slice(ct);
        let expect = hmac_sha256(&self.recv_mac, &mac_input);
        if !ct_eq(&expect, mac) {
            return Err(io_err("record MAC verification failed"));
        }
        self.recv_seq += 1;
        let mut pt = ct.to_vec();
        self.recv_cipher.apply(&mut pt);
        Ok(pt)
    }
}

/// A [`SecureChannel`] taken apart after the handshake: the blocking
/// transport, the record crypto, and the identity facts the
/// authorization layer consumes.  See [`SecureChannel::into_parts`].
pub struct ChannelParts {
    /// The framed transport the handshake ran over.
    pub transport: Box<dyn Transport>,
    /// The established record layer (ciphers, MACs, sequence numbers).
    pub crypto: RecordCrypto,
    /// The channel's identity (hash of the handshake transcript).
    pub channel_id: ChannelId,
    /// The peer's authenticated public key, when it presented one.
    pub peer_key: Option<PublicKey>,
    /// The assumption `K_CH ⇒ K_peer`, when the peer authenticated.
    pub peer_binding: Option<Delegation>,
}

fn io_err(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Builds a hello message.
fn hello(role: &str, dh_public: &Ubig, nonce: &[u8], key: Option<&PublicKey>) -> Sexp {
    let mut body = vec![
        Sexp::tagged("role", vec![Sexp::from(role)]),
        Sexp::tagged("dh", vec![Sexp::atom(dh_public.to_bytes_be())]),
        Sexp::tagged("nonce", vec![Sexp::atom(nonce.to_vec())]),
    ];
    if let Some(k) = key {
        body.push(Sexp::tagged("key", vec![k.to_sexp()]));
    }
    Sexp::tagged("hello", body)
}

fn parse_hello(e: &Sexp, expect_role: &str) -> io::Result<(Ubig, Option<PublicKey>)> {
    if e.tag_name() != Some("hello") {
        return Err(io_err("expected hello"));
    }
    if e.find_value("role").and_then(Sexp::as_str) != Some(expect_role) {
        return Err(io_err("wrong hello role"));
    }
    let dh = e
        .find_value("dh")
        .and_then(Sexp::as_atom)
        .ok_or_else(|| io_err("hello missing dh share"))?;
    let key = match e.find_value("key") {
        Some(k) => {
            Some(PublicKey::from_sexp(k).map_err(|e| io_err(&format!("bad peer key: {e}")))?)
        }
        None => None,
    };
    Ok((Ubig::from_bytes_be(dh), key))
}

/// What gets signed to bind a long-term key to this session.
fn auth_payload(session_id: &HashVal, role: &str) -> Vec<u8> {
    Sexp::tagged("channel-auth", vec![session_id.to_sexp(), Sexp::from(role)]).canonical()
}

struct DirectionKeys {
    cipher: ChaCha20,
    mac: [u8; 32],
}

fn direction_keys(master: &[u8; 32], session_id: &HashVal, dir: &str) -> DirectionKeys {
    let mut label = Vec::with_capacity(dir.len() + session_id.bytes.len() + 4);
    label.extend_from_slice(b"enc ");
    label.extend_from_slice(dir.as_bytes());
    label.extend_from_slice(&session_id.bytes);
    let enc_key = derive_key(master, &label);
    label[0..4].copy_from_slice(b"mac ");
    let mac_key = derive_key(master, &label);
    label[0..4].copy_from_slice(b"non ");
    let nonce_full = derive_key(master, &label);
    let mut nonce = [0u8; 12];
    nonce.copy_from_slice(&nonce_full[..12]);
    DirectionKeys {
        cipher: ChaCha20::new(&enc_key, &nonce),
        mac: mac_key,
    }
}

impl SecureChannel {
    /// Runs the client side of the handshake.
    ///
    /// * `my_key: None` gives the anonymous-client (SSL-style server-auth
    ///   only) mode; the channel then has no peer binding usable for client
    ///   authorization.
    /// * Passing a `cache` and `server_name` enables session resumption:
    ///   when a ticket for `server_name` is cached the handshake completes
    ///   with no public-key operations.
    pub fn client(
        mut transport: Box<dyn Transport>,
        my_key: Option<&KeyPair>,
        resume: Option<(&SessionCache, &str)>,
        rand_bytes: &mut dyn FnMut(&mut [u8]),
    ) -> io::Result<SecureChannel> {
        // Try resumption first.
        if let Some((cache, server_name)) = resume {
            let name_key = format!("name:{server_name}").into_bytes();
            if let Some(entry) = cache.get(&name_key) {
                let ticket_key = format!("ticket-of:{server_name}").into_bytes();
                if let Some(ticket) = cache.get(&ticket_key) {
                    // The ticket bytes are stashed in `master` of a pseudo-entry.
                    return Self::client_resume(transport, &ticket.master, entry, rand_bytes);
                }
            }
        }

        let group = Group::test512();
        let dh = DhSecret::generate(group, rand_bytes);
        let mut nonce = [0u8; 16];
        rand_bytes(&mut nonce);
        let client_hello = hello("client", &dh.public, &nonce, my_key.map(|k| &k.public));
        transport.send(&client_hello.canonical())?;

        let server_hello_bytes = transport.recv()?;
        let server_hello = Sexp::parse(&server_hello_bytes)
            .map_err(|e| io_err(&format!("bad server hello: {e}")))?;
        let (server_dh, server_key) = parse_hello(&server_hello, "server")?;
        let server_key = server_key.ok_or_else(|| io_err("server must present a key"))?;
        let ticket = server_hello
            .find_value("ticket")
            .and_then(Sexp::as_atom)
            .map(<[u8]>::to_vec);

        let master = dh
            .agree(&server_dh)
            .ok_or_else(|| io_err("invalid server DH share"))?;
        let transcript = Sexp::tagged("transcript", vec![client_hello, server_hello.clone()]);
        let session_id = HashVal::of_sexp(&transcript);

        // Server proves possession of its long-term key.
        let server_auth = transport.recv()?;
        let sig = Signature::from_sexp(
            &Sexp::parse(&server_auth).map_err(|e| io_err(&format!("bad auth: {e}")))?,
        )
        .map_err(|e| io_err(&format!("bad auth sig: {e}")))?;
        if !server_key.verify(&auth_payload(&session_id, "server"), &sig) {
            return Err(io_err("server authentication failed"));
        }

        // Client proves possession of its key, if it has one.
        if let Some(kp) = my_key {
            let sig = kp.sign(&auth_payload(&session_id, "client"), rand_bytes);
            transport.send(&sig.to_sexp().canonical())?;
        } else {
            transport.send(
                Sexp::list(vec![Sexp::from("anonymous")])
                    .canonical()
                    .as_slice(),
            )?;
        }

        // Stash the resumption state for later connections.
        if let Some((cache, server_name)) = resume {
            if let Some(t) = &ticket {
                cache.put(
                    format!("name:{server_name}").into_bytes(),
                    CachedSession {
                        master,
                        peer_key: Some(server_key.clone()),
                    },
                );
                let mut ticket_as_master = [0u8; 32];
                let n = t.len().min(32);
                ticket_as_master[..n].copy_from_slice(&t[..n]);
                cache.put(
                    format!("ticket-of:{server_name}").into_bytes(),
                    CachedSession {
                        master: ticket_as_master,
                        peer_key: None,
                    },
                );
            }
        }

        Ok(Self::finish(
            transport,
            master,
            session_id,
            Some(server_key),
            true,
            false,
        ))
    }

    fn client_resume(
        mut transport: Box<dyn Transport>,
        ticket: &[u8; 32],
        entry: CachedSession,
        rand_bytes: &mut dyn FnMut(&mut [u8]),
    ) -> io::Result<SecureChannel> {
        let mut nonce = [0u8; 16];
        rand_bytes(&mut nonce);
        let resume = Sexp::tagged(
            "resume",
            vec![
                Sexp::tagged("ticket", vec![Sexp::atom(ticket.to_vec())]),
                Sexp::tagged("nonce", vec![Sexp::atom(nonce.to_vec())]),
            ],
        );
        transport.send(&resume.canonical())?;
        let reply_bytes = transport.recv()?;
        let reply =
            Sexp::parse(&reply_bytes).map_err(|e| io_err(&format!("bad resume reply: {e}")))?;
        if reply.tag_name() != Some("resumed") {
            return Err(io_err("server declined resumption"));
        }
        let server_nonce = reply
            .find_value("nonce")
            .and_then(Sexp::as_atom)
            .ok_or_else(|| io_err("resumed missing nonce"))?;

        let (master, session_id) = resumed_secrets(&entry.master, ticket, &nonce, server_nonce);
        Ok(Self::finish(
            transport,
            master,
            session_id,
            entry.peer_key,
            true,
            true,
        ))
    }

    /// Runs the server side of the handshake.
    ///
    /// With a `cache`, the server issues resumption tickets on full
    /// handshakes and accepts them on later connections.
    pub fn server(
        mut transport: Box<dyn Transport>,
        my_key: &KeyPair,
        cache: Option<&SessionCache>,
        rand_bytes: &mut dyn FnMut(&mut [u8]),
    ) -> io::Result<SecureChannel> {
        let first = transport.recv()?;
        let first_sexp =
            Sexp::parse(&first).map_err(|e| io_err(&format!("bad client message: {e}")))?;

        // Resumption attempt?
        if first_sexp.tag_name() == Some("resume") {
            return Self::server_resume(transport, first_sexp, cache, rand_bytes);
        }

        let (client_dh, client_key) = parse_hello(&first_sexp, "client")?;
        let group = Group::test512();
        let dh = DhSecret::generate(group, rand_bytes);
        let mut nonce = [0u8; 16];
        rand_bytes(&mut nonce);

        // Issue a ticket when resumption is enabled.
        let mut ticket = None;
        let mut server_hello = hello("server", &dh.public, &nonce, Some(&my_key.public));
        if cache.is_some() {
            let mut t = [0u8; 32];
            rand_bytes(&mut t);
            if let Sexp::List(items) = &mut server_hello {
                items.push(Sexp::tagged("ticket", vec![Sexp::atom(t.to_vec())]));
            }
            ticket = Some(t);
        }
        transport.send(&server_hello.canonical())?;

        let master = dh
            .agree(&client_dh)
            .ok_or_else(|| io_err("invalid client DH share"))?;
        let transcript = Sexp::tagged("transcript", vec![first_sexp, server_hello]);
        let session_id = HashVal::of_sexp(&transcript);

        // Prove our key.
        let sig = my_key.sign(&auth_payload(&session_id, "server"), rand_bytes);
        transport.send(&sig.to_sexp().canonical())?;

        // Verify the client's proof (or accept anonymity).
        let client_auth = transport.recv()?;
        let auth_sexp =
            Sexp::parse(&client_auth).map_err(|e| io_err(&format!("bad client auth: {e}")))?;
        let peer_key = if let Some(ck) = client_key {
            let sig = Signature::from_sexp(&auth_sexp)
                .map_err(|e| io_err(&format!("bad client sig: {e}")))?;
            if !ck.verify(&auth_payload(&session_id, "client"), &sig) {
                return Err(io_err("client authentication failed"));
            }
            Some(ck)
        } else {
            if auth_sexp
                .as_list()
                .and_then(|l| l.first())
                .and_then(Sexp::as_str)
                != Some("anonymous")
            {
                return Err(io_err("expected anonymous marker"));
            }
            None
        };

        if let (Some(cache), Some(t)) = (cache, ticket) {
            cache.put(
                t.to_vec(),
                CachedSession {
                    master,
                    peer_key: peer_key.clone(),
                },
            );
        }

        Ok(Self::finish(
            transport, master, session_id, peer_key, false, false,
        ))
    }

    fn server_resume(
        mut transport: Box<dyn Transport>,
        resume: Sexp,
        cache: Option<&SessionCache>,
        rand_bytes: &mut dyn FnMut(&mut [u8]),
    ) -> io::Result<SecureChannel> {
        let ticket = resume
            .find_value("ticket")
            .and_then(Sexp::as_atom)
            .ok_or_else(|| io_err("resume missing ticket"))?;
        let client_nonce = resume
            .find_value("nonce")
            .and_then(Sexp::as_atom)
            .ok_or_else(|| io_err("resume missing nonce"))?;
        let entry = cache
            .and_then(|c| c.get(ticket))
            .ok_or_else(|| io_err("unknown session ticket"))?;

        let mut server_nonce = [0u8; 16];
        rand_bytes(&mut server_nonce);
        let reply = Sexp::tagged(
            "resumed",
            vec![Sexp::tagged(
                "nonce",
                vec![Sexp::atom(server_nonce.to_vec())],
            )],
        );
        transport.send(&reply.canonical())?;

        let mut ticket32 = [0u8; 32];
        let n = ticket.len().min(32);
        ticket32[..n].copy_from_slice(&ticket[..n]);
        let (master, session_id) =
            resumed_secrets(&entry.master, &ticket32, client_nonce, &server_nonce);
        Ok(Self::finish(
            transport,
            master,
            session_id,
            entry.peer_key,
            false,
            true,
        ))
    }

    fn finish(
        transport: Box<dyn Transport>,
        master: [u8; 32],
        session_id: HashVal,
        peer_key: Option<PublicKey>,
        is_client: bool,
        resumed: bool,
    ) -> SecureChannel {
        let c2s = direction_keys(&master, &session_id, "c2s");
        let s2c = direction_keys(&master, &session_id, "s2c");
        let (send, recv) = if is_client { (c2s, s2c) } else { (s2c, c2s) };
        SecureChannel {
            transport,
            session_id,
            peer_key,
            resumed,
            crypto: RecordCrypto {
                send_cipher: send.cipher,
                send_mac: send.mac,
                send_seq: 0,
                recv_cipher: recv.cipher,
                recv_mac: recv.mac,
                recv_seq: 0,
            },
        }
    }

    /// The public key of the opposite end, when it authenticated.
    pub fn peer_key(&self) -> Option<&PublicKey> {
        self.peer_key.as_ref()
    }

    /// Did this connection resume a cached session (no public-key ops)?
    pub fn was_resumed(&self) -> bool {
        self.resumed
    }

    /// The channel's identity (hash of the handshake transcript).
    pub fn channel_id(&self) -> ChannelId {
        ChannelId {
            kind: "ssh".into(),
            id: self.session_id.clone(),
        }
    }

    /// The channel embodied as a principal (`K_CH` of Figure 3).
    pub fn principal(&self) -> Principal {
        Principal::Channel(self.channel_id())
    }

    /// The assumption statement `K_CH ⇒ K_peer` that this endpoint's own
    /// handshake verification justifies; feed it to
    /// [`snowflake_core::VerifyCtx::assume`].
    ///
    /// Returns `None` when the peer was anonymous.
    pub fn peer_binding(&self) -> Option<Delegation> {
        let peer = self.peer_key.as_ref()?;
        Some(Delegation::axiom(
            Principal::Channel(self.channel_id()),
            Principal::key(peer),
        ))
    }

    /// Sends one encrypted, authenticated record.
    pub fn send(&mut self, msg: &[u8]) -> io::Result<()> {
        let record = self.crypto.seal(msg);
        self.transport.send(&record)
    }

    /// Receives and authenticates one record.
    pub fn recv(&mut self) -> io::Result<Vec<u8>> {
        let frame = self.transport.recv()?;
        self.crypto.open(&frame)
    }

    /// Takes the channel apart so the record layer can continue over a
    /// different byte path (e.g. a nonblocking socket owned by the
    /// connection reactor) while the identity facts keep feeding the
    /// authorization layer.
    pub fn into_parts(self) -> ChannelParts {
        let channel_id = self.channel_id();
        let peer_binding = self.peer_binding();
        ChannelParts {
            transport: self.transport,
            crypto: self.crypto,
            channel_id,
            peer_key: self.peer_key,
            peer_binding,
        }
    }
}

/// Derives fresh per-session secrets for a resumed session.
fn resumed_secrets(
    old_master: &[u8; 32],
    ticket: &[u8; 32],
    client_nonce: &[u8],
    server_nonce: &[u8],
) -> ([u8; 32], HashVal) {
    let mut label = b"resume".to_vec();
    label.extend_from_slice(client_nonce);
    label.extend_from_slice(server_nonce);
    let master = derive_key(old_master, &label);
    let mut sid_input = ticket.to_vec();
    sid_input.extend_from_slice(client_nonce);
    sid_input.extend_from_slice(server_nonce);
    (master, HashVal::of(&sid_input))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::PipeTransport;
    use snowflake_crypto::DetRng;

    fn kp(seed: &str) -> KeyPair {
        let mut rng = DetRng::new(seed.as_bytes());
        KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
    }

    /// Runs client and server handshakes on two threads over a pipe.
    fn connect(
        client_key: Option<KeyPair>,
        server_key: KeyPair,
        client_cache: Option<SessionCache>,
        server_cache: Option<SessionCache>,
    ) -> (SecureChannel, SecureChannel) {
        let (ct, st) = PipeTransport::pair();
        let server = std::thread::spawn(move || {
            let mut rng = DetRng::new(b"server-rng");
            SecureChannel::server(Box::new(st), &server_key, server_cache.as_ref(), &mut |b| {
                rng.fill(b)
            })
            .unwrap()
        });
        let mut rng = DetRng::new(b"client-rng");
        let client = SecureChannel::client(
            Box::new(ct),
            client_key.as_ref(),
            client_cache.as_ref().map(|c| (c, "server")),
            &mut |b| rng.fill(b),
        )
        .unwrap();
        (client, server.join().unwrap())
    }

    #[test]
    fn mutual_handshake_binds_keys() {
        let (alice, server) = (kp("alice"), kp("server"));
        let (c, s) = connect(Some(alice.clone()), server.clone(), None, None);
        assert_eq!(c.peer_key(), Some(&server.public));
        assert_eq!(s.peer_key(), Some(&alice.public));
        assert_eq!(c.channel_id(), s.channel_id());
        assert!(!c.was_resumed());
        // The binding statement says K_CH ⇒ K_client on the server side.
        let b = s.peer_binding().unwrap();
        assert_eq!(b.subject, s.principal());
        assert_eq!(b.issuer, Principal::key(&alice.public));
    }

    #[test]
    fn encrypted_records_roundtrip() {
        let (alice, server) = (kp("alice"), kp("server"));
        let (mut c, mut s) = connect(Some(alice), server, None, None);
        c.send(b"it would be good to read file X").unwrap();
        assert_eq!(s.recv().unwrap(), b"it would be good to read file X");
        s.send(b"contents of file X").unwrap();
        assert_eq!(c.recv().unwrap(), b"contents of file X");
        // Many records in both directions.
        for i in 0..50u32 {
            let msg = format!("msg {i}");
            c.send(msg.as_bytes()).unwrap();
            assert_eq!(s.recv().unwrap(), msg.as_bytes());
        }
    }

    #[test]
    fn anonymous_client_mode() {
        let server = kp("server");
        let (mut c, mut s) = connect(None, server.clone(), None, None);
        assert_eq!(c.peer_key(), Some(&server.public));
        assert_eq!(s.peer_key(), None);
        assert!(s.peer_binding().is_none());
        c.send(b"anon hello").unwrap();
        assert_eq!(s.recv().unwrap(), b"anon hello");
    }

    #[test]
    fn session_resumption_skips_public_key_ops() {
        let (alice, server) = (kp("alice"), kp("server"));
        let client_cache = SessionCache::new();
        let server_cache = SessionCache::new();

        // First connection: full handshake, ticket issued.
        let (mut c1, mut s1) = connect(
            Some(alice.clone()),
            server.clone(),
            Some(client_cache.clone()),
            Some(server_cache.clone()),
        );
        c1.send(b"one").unwrap();
        assert_eq!(s1.recv().unwrap(), b"one");
        assert!(!c1.was_resumed());

        // Second connection: resumed, and the peer binding survives.
        let (mut c2, mut s2) = connect(
            Some(alice.clone()),
            server.clone(),
            Some(client_cache),
            Some(server_cache),
        );
        assert!(c2.was_resumed());
        assert!(s2.was_resumed());
        assert_eq!(s2.peer_key(), Some(&alice.public));
        assert_eq!(c2.peer_key(), Some(&server.public));
        // Fresh session id per resumption.
        assert_ne!(c1.channel_id(), c2.channel_id());
        c2.send(b"two").unwrap();
        assert_eq!(s2.recv().unwrap(), b"two");
    }

    #[test]
    fn tampered_record_rejected() {
        let (alice, server) = (kp("alice"), kp("server"));
        let (ct, st) = PipeTransport::pair();
        let server_thread = std::thread::spawn(move || {
            let mut rng = DetRng::new(b"s");
            SecureChannel::server(Box::new(st), &server, None, &mut |b| rng.fill(b)).unwrap()
        });
        let mut rng = DetRng::new(b"c");
        let mut c =
            SecureChannel::client(Box::new(ct), Some(&alice), None, &mut |b| rng.fill(b)).unwrap();
        let mut s = server_thread.join().unwrap();

        // Send a record, but flip a ciphertext bit in flight by abusing a
        // second plain transport: easiest is to craft the tamper at the
        // transport layer. Here we simulate: send, then corrupt recv_seq so
        // the MAC check fails (equivalent to a replayed/reordered record).
        c.send(b"sensitive").unwrap();
        s.crypto.recv_seq = 7; // desynchronize: MAC covers the sequence number
        assert!(s.recv().is_err());
    }

    #[test]
    fn replayed_record_rejected() {
        // A record captured and re-delivered must fail: the MAC covers the
        // receive sequence number.
        let (alice, server) = (kp("alice"), kp("server"));
        let (ct, st) = PipeTransport::pair();
        let (mut tap_tx, mut tap_rx) = PipeTransport::pair();
        let server_thread = std::thread::spawn(move || {
            let mut rng = DetRng::new(b"s");
            SecureChannel::server(Box::new(st), &server, None, &mut |b| rng.fill(b)).unwrap()
        });
        let mut rng = DetRng::new(b"c");
        let mut c =
            SecureChannel::client(Box::new(ct), Some(&alice), None, &mut |b| rng.fill(b)).unwrap();
        let mut s = server_thread.join().unwrap();

        c.send(b"pay $5").unwrap();
        let first = s.recv().unwrap();
        assert_eq!(first, b"pay $5");
        // Capture the next record and deliver it twice via the tap pipe.
        c.send(b"pay $9").unwrap();
        // (We cannot literally capture off the pipe, so re-send the same
        // plaintext: the ciphertext differs because the stream advanced, and
        // replaying the *old* frame is what the tap models below.)
        tap_tx.send(b"placeholder").unwrap();
        let _ = tap_rx.recv().unwrap();
        let second = s.recv().unwrap();
        assert_eq!(second, b"pay $9");
        // Direct replay simulation: feeding an old sequence fails.
        s.crypto.recv_seq = 0;
        c.send(b"pay $1").unwrap();
        assert!(s.recv().is_err(), "stale sequence number must not verify");
    }

    #[test]
    fn wrong_server_key_detected() {
        // A MITM presenting its own key fails the client's signature check
        // only if the client pins the server key; here the client at least
        // learns the key it spoke to, which the authorization layer then
        // fails to connect to any authority.
        let (alice, server) = (kp("alice"), kp("server"));
        let (c, _s) = connect(Some(alice), server.clone(), None, None);
        // The client knows exactly which key it is bound to.
        assert_eq!(c.peer_key(), Some(&server.public));
    }
}
