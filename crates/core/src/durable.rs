//! Durability contracts and crash-fault injection.
//!
//! Everything the authorization chain decides against — relational tables,
//! revocation knowledge, the tamper-evident audit trail — must survive a
//! process death without ever presenting a *third* state: after a restart
//! a durable store holds either the state before the interrupted write or
//! the state after it, never a torn hybrid.  This module defines the two
//! pieces every durable store in the workspace shares:
//!
//! * [`Durable`] — the narrow contract a durable store exposes: where its
//!   bytes live, what the last open/replay recovered, and a forced sync.
//! * [`CrashPoint`] — a byte-granular fault-injection hook threaded
//!   through every durable write path.  Tests arm it to kill a write at
//!   an exact byte offset; production code carries it inert at zero cost.
//!   Because the hook sits *in* the write path (not in a test double),
//!   the recovery the tests prove is the recovery production runs.

use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// What one open/replay of a durable store recovered.
///
/// A store reports this once per open; it is how operators (and the
/// crash-injection harness) distinguish a clean start, a clean resume,
/// and a resume that had to discard a torn tail.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Log records replayed from the write-ahead stream.
    pub replayed: u64,
    /// Records loaded from a snapshot/compaction artifact (or, for
    /// segmented logs, entries read from already-sealed segments).
    pub from_snapshot: u64,
    /// Bytes of torn tail discarded: an interrupted final write whose
    /// frame never completed.  Always confined to the end of the stream —
    /// a hole anywhere else is corruption and fails the open instead.
    pub truncated_bytes: u64,
}

/// The contract of a crash-recoverable store.
///
/// Implementations: the reldb write-ahead database, the audit file
/// backend, and the validator's revocation store.
pub trait Durable {
    /// The path of the primary durable artifact (diagnostics; a store may
    /// keep siblings next to it — snapshots, rotated segments).
    fn storage(&self) -> &Path;

    /// What the most recent open/replay recovered.
    fn recovery(&self) -> RecoveryReport;

    /// Forces buffered state onto the medium.
    fn sync(&mut self) -> Result<(), String>;
}

struct CrashInner {
    /// Bytes the hook will still let through before tripping.
    budget: AtomicU64,
    /// Once tripped, every later write fails too: the "process" is dead
    /// until the store is reopened.
    tripped: AtomicBool,
}

/// A byte-granular crash-fault injector for durable write paths.
///
/// An **inert** crash point (the default, and the only kind production
/// code ever holds) passes writes straight through.  An **armed** one
/// ([`CrashPoint::after_bytes`]) lets exactly `n` more bytes reach the
/// medium, then fails the write — and every subsequent write — exactly as
/// a power cut mid-`write(2)` would: a prefix of the frame is on disk,
/// the rest is gone, and nothing later ever lands.
///
/// Clones share the same budget, so one armed point can be threaded
/// through several cooperating writers.
#[derive(Clone, Default)]
pub struct CrashPoint {
    inner: Option<Arc<CrashInner>>,
}

impl CrashPoint {
    /// The pass-through hook production code carries.
    pub fn inert() -> CrashPoint {
        CrashPoint::default()
    }

    /// Arms a hook that admits exactly `n` more bytes, then kills the
    /// write path.
    pub fn after_bytes(n: u64) -> CrashPoint {
        CrashPoint {
            inner: Some(Arc::new(CrashInner {
                budget: AtomicU64::new(n),
                tripped: AtomicBool::new(false),
            })),
        }
    }

    /// Has the simulated crash happened?
    pub fn tripped(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.tripped.load(Ordering::SeqCst))
    }

    /// The error every write returns once the crash has struck.
    fn crashed() -> io::Error {
        io::Error::new(io::ErrorKind::Other, "crash point tripped")
    }

    /// Writes `buf` through the hook.
    ///
    /// Inert: `write_all`.  Armed: writes as much of `buf` as the
    /// remaining budget allows; if that is less than all of it, the hook
    /// trips and the call fails.  The partial prefix *stays written* —
    /// that is the torn tail recovery must cope with.
    pub fn write_all(&self, w: &mut dyn Write, buf: &[u8]) -> io::Result<()> {
        let Some(inner) = &self.inner else {
            return w.write_all(buf);
        };
        if inner.tripped.load(Ordering::SeqCst) {
            return Err(Self::crashed());
        }
        let budget = inner.budget.load(Ordering::SeqCst);
        if budget >= buf.len() as u64 {
            inner
                .budget
                .store(budget - buf.len() as u64, Ordering::SeqCst);
            return w.write_all(buf);
        }
        inner.tripped.store(true, Ordering::SeqCst);
        w.write_all(&buf[..budget as usize])?;
        inner.budget.store(0, Ordering::SeqCst);
        Err(Self::crashed())
    }

    /// Guards a non-write step of a durable path (an fsync, a rename): a
    /// no-op until the crash strikes, an error ever after.
    pub fn check(&self) -> io::Result<()> {
        if self.tripped() {
            Err(Self::crashed())
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_passes_everything_through() {
        let cp = CrashPoint::inert();
        let mut out = Vec::new();
        cp.write_all(&mut out, b"hello").unwrap();
        cp.write_all(&mut out, b" world").unwrap();
        cp.check().unwrap();
        assert_eq!(out, b"hello world");
        assert!(!cp.tripped());
    }

    #[test]
    fn armed_writes_exact_prefix_then_kills_everything() {
        let cp = CrashPoint::after_bytes(7);
        let mut out = Vec::new();
        cp.write_all(&mut out, b"abcd").unwrap();
        // 3 bytes of budget remain: the next write lands a 3-byte prefix
        // and fails.
        assert!(cp.write_all(&mut out, b"efgh").is_err());
        assert_eq!(out, b"abcdefg");
        assert!(cp.tripped());
        // The dead process writes nothing more.
        assert!(cp.write_all(&mut out, b"ijkl").is_err());
        assert!(cp.check().is_err());
        assert_eq!(out, b"abcdefg");
    }

    #[test]
    fn zero_budget_crashes_before_the_first_byte() {
        let cp = CrashPoint::after_bytes(0);
        let mut out = Vec::new();
        assert!(cp.write_all(&mut out, b"x").is_err());
        assert!(out.is_empty());
    }

    #[test]
    fn clones_share_one_budget() {
        let cp = CrashPoint::after_bytes(4);
        let other = cp.clone();
        let mut out = Vec::new();
        cp.write_all(&mut out, b"ab").unwrap();
        assert!(other.write_all(&mut out, b"cde").is_err());
        assert_eq!(out, b"abcd");
        assert!(cp.tripped() && other.tripped());
    }

    #[test]
    fn boundary_budget_admits_the_whole_write() {
        let cp = CrashPoint::after_bytes(5);
        let mut out = Vec::new();
        cp.write_all(&mut out, b"exact").unwrap();
        assert!(!cp.tripped());
        // …and the very next byte dies.
        assert!(cp.write_all(&mut out, b"!").is_err());
        assert_eq!(out, b"exact");
    }
}
