//! Poison-recovering lock helpers shared across the workspace.
//!
//! The workspace originally used `parking_lot`, whose locks do not poison:
//! a panic while holding a guard simply releases the lock. These extension
//! traits reproduce that policy over `std::sync` in one place — a panicking
//! request handler must not permanently wedge a server's routing table or
//! session store. All guarded state here is plain data that stays
//! consistent statement-by-statement, so recovering the guard is safe. If
//! the policy ever needs to change (log on poison, abort in sensitive
//! paths), change it here.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// `Mutex` acquisition that recovers from poisoning (parking_lot policy).
pub trait LockExt<T> {
    /// Locks, recovering the guard if a previous holder panicked.
    fn plock(&self) -> MutexGuard<'_, T>;
}

impl<T> LockExt<T> for Mutex<T> {
    fn plock(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// `RwLock` acquisition that recovers from poisoning (parking_lot policy).
pub trait RwLockExt<T> {
    /// Read-locks, recovering the guard if a previous writer panicked.
    fn pread(&self) -> RwLockReadGuard<'_, T>;
    /// Write-locks, recovering the guard if a previous holder panicked.
    fn pwrite(&self) -> RwLockWriteGuard<'_, T>;
}

impl<T> RwLockExt<T> for RwLock<T> {
    fn pread(&self) -> RwLockReadGuard<'_, T> {
        self.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn pwrite(&self) -> RwLockWriteGuard<'_, T> {
        self.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn plock_recovers_after_panic() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "std lock should report poisoning");
        assert_eq!(*m.plock(), 7, "plock recovers the data");
    }

    #[test]
    fn rwlock_recovers_after_panic() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert_eq!(l.pread().len(), 2);
        l.pwrite().push(3);
        assert_eq!(l.pread().len(), 3);
    }
}
