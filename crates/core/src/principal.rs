//! Principals: entities that can make statements (paper §4.2).
//!
//! "A principal is any entity that can make a statement.  Examples include
//! the binary representation of a statement itself, a cryptographic key, a
//! secure channel, a program, and a terminal."  Snowflake generalizes SPKI
//! (whose only principals are public keys) so the same framework covers
//! authorization on a single host, within an administrative domain, and in
//! the wide area.

use snowflake_crypto::{HashVal, PublicKey};
use snowflake_sexpr::{ParseError, Sexp};
use std::fmt;

/// Identifies a live communications channel endpoint.
///
/// The `kind` records which mechanism vouches for the channel (`"ssh"`,
/// `"local"`, …) and `id` is the hash of the channel's handshake transcript,
/// unique per session.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId {
    /// Mechanism label, e.g. `ssh` or `local`.
    pub kind: String,
    /// Hash of the session transcript (unique per channel instance).
    pub id: HashVal,
}

impl fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.kind, self.id.short_hex())
    }
}

/// An entity that can make (or relay) statements.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Principal {
    /// A cryptographic key: says any message signed by the key.
    Key(Box<PublicKey>),
    /// The hash of a key: stands for the key itself (SPKI hashed principal).
    KeyHash(HashVal),
    /// A named principal `base·name` (SDSI-style local namespace).
    Name {
        /// The namespace owner.
        base: Box<Principal>,
        /// The name within the owner's namespace.
        name: String,
    },
    /// A live channel: says any message emanating from it.
    Channel(ChannelId),
    /// The hash of a message or document: "the binary representation of a
    /// statement itself (that says only what it says)".
    Message(HashVal),
    /// A MAC session: the amortized signed-request protocol of §5.3.1
    /// "represent\[s\] the MAC as a principal".  `id` is the hash of the MAC
    /// secret.
    Mac(HashVal),
    /// An identity vouched for by an in-process trusted broker (the paper's
    /// "trust the JVM and a few system classes" local case, §5.2).
    Local {
        /// Hash identifying the broker instance.
        broker: HashVal,
        /// The broker-local identity name.
        id: String,
    },
    /// `quoter | quotee` — the quoter claiming to relay the quotee's
    /// statements (Lampson's quoting principal).
    Quoting {
        /// The relaying principal (e.g. a gateway or channel).
        quoter: Box<Principal>,
        /// The principal being quoted (possibly compound).
        quotee: Box<Principal>,
    },
    /// `A ∧ B ∧ …` — joint authority; speaks only when every conjunct says
    /// the same thing.
    Conjunction(Vec<Principal>),
    /// SPKI threshold subject: any `k` of the listed principals jointly.
    Threshold {
        /// How many subjects must concur.
        k: usize,
        /// The candidate subjects.
        subjects: Vec<Principal>,
    },
}

impl Principal {
    /// A key principal.
    pub fn key(k: &PublicKey) -> Principal {
        Principal::Key(Box::new(k.clone()))
    }

    /// The hash principal of a key (its SPKI name).
    pub fn key_hash(k: &PublicKey) -> Principal {
        Principal::KeyHash(k.hash())
    }

    /// A named principal `base·name`.
    pub fn name(base: Principal, name: impl Into<String>) -> Principal {
        Principal::Name {
            base: Box::new(base),
            name: name.into(),
        }
    }

    /// The message principal for raw bytes (hash of the bytes).
    pub fn message(data: &[u8]) -> Principal {
        Principal::Message(HashVal::of(data))
    }

    /// The quoting principal `quoter | quotee`.
    pub fn quoting(quoter: Principal, quotee: Principal) -> Principal {
        Principal::Quoting {
            quoter: Box::new(quoter),
            quotee: Box::new(quotee),
        }
    }

    /// A conjunction; flattens nested conjunctions and sorts conjuncts so
    /// `A ∧ B == B ∧ A`.
    pub fn conjunction(items: Vec<Principal>) -> Principal {
        let mut flat = Vec::with_capacity(items.len());
        for item in items {
            match item {
                Principal::Conjunction(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        flat.sort();
        flat.dedup();
        if flat.len() == 1 {
            flat.into_iter().next().expect("len 1")
        } else {
            Principal::Conjunction(flat)
        }
    }

    /// Serializes to an S-expression.
    pub fn to_sexp(&self) -> Sexp {
        match self {
            Principal::Key(k) => k.to_sexp(),
            Principal::KeyHash(h) => h.to_sexp(),
            Principal::Name { base, name } => {
                Sexp::tagged("name", vec![base.to_sexp(), Sexp::from(name.as_str())])
            }
            Principal::Channel(c) => {
                Sexp::tagged("channel", vec![Sexp::from(c.kind.as_str()), c.id.to_sexp()])
            }
            Principal::Message(h) => Sexp::tagged("message", vec![h.to_sexp()]),
            Principal::Mac(h) => Sexp::tagged("mac", vec![h.to_sexp()]),
            Principal::Local { broker, id } => {
                Sexp::tagged("local", vec![broker.to_sexp(), Sexp::from(id.as_str())])
            }
            Principal::Quoting { quoter, quotee } => {
                Sexp::tagged("quoting", vec![quoter.to_sexp(), quotee.to_sexp()])
            }
            Principal::Conjunction(items) => {
                Sexp::tagged("and", items.iter().map(Principal::to_sexp).collect())
            }
            Principal::Threshold { k, subjects } => {
                let mut body = vec![Sexp::int(*k as u64), Sexp::int(subjects.len() as u64)];
                body.extend(subjects.iter().map(Principal::to_sexp));
                Sexp::tagged("k-of-n", body)
            }
        }
    }

    /// Parses the form produced by [`Principal::to_sexp`].
    pub fn from_sexp(e: &Sexp) -> Result<Principal, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        match e.tag_name() {
            Some("public-key") => Ok(Principal::Key(Box::new(PublicKey::from_sexp(e)?))),
            Some("hash") => Ok(Principal::KeyHash(HashVal::from_sexp(e)?)),
            Some("name") => {
                let body = e.tag_body().ok_or_else(|| bad("name body"))?;
                if body.len() != 2 {
                    return Err(bad("(name base n) takes two items"));
                }
                let base = Principal::from_sexp(&body[0])?;
                let name = body[1].as_str().ok_or_else(|| bad("name must be UTF-8"))?;
                Ok(Principal::name(base, name))
            }
            Some("channel") => {
                let body = e.tag_body().ok_or_else(|| bad("channel body"))?;
                if body.len() != 2 {
                    return Err(bad("(channel kind id) takes two items"));
                }
                let kind = body[0]
                    .as_str()
                    .ok_or_else(|| bad("channel kind"))?
                    .to_string();
                let id = HashVal::from_sexp(&body[1])?;
                Ok(Principal::Channel(ChannelId { kind, id }))
            }
            Some("message") => {
                let h = e.find("hash").map(HashVal::from_sexp).transpose()?;
                let h = match h {
                    Some(h) => h,
                    None => {
                        let body = e.tag_body().ok_or_else(|| bad("message body"))?;
                        HashVal::from_sexp(body.first().ok_or_else(|| bad("message hash"))?)?
                    }
                };
                Ok(Principal::Message(h))
            }
            Some("mac") => {
                let body = e.tag_body().ok_or_else(|| bad("mac body"))?;
                Ok(Principal::Mac(HashVal::from_sexp(
                    body.first().ok_or_else(|| bad("mac hash"))?,
                )?))
            }
            Some("local") => {
                let body = e.tag_body().ok_or_else(|| bad("local body"))?;
                if body.len() != 2 {
                    return Err(bad("(local broker id) takes two items"));
                }
                let broker = HashVal::from_sexp(&body[0])?;
                let id = body[1].as_str().ok_or_else(|| bad("local id"))?.to_string();
                Ok(Principal::Local { broker, id })
            }
            Some("quoting") => {
                let body = e.tag_body().ok_or_else(|| bad("quoting body"))?;
                if body.len() != 2 {
                    return Err(bad("(quoting q e) takes two items"));
                }
                Ok(Principal::quoting(
                    Principal::from_sexp(&body[0])?,
                    Principal::from_sexp(&body[1])?,
                ))
            }
            Some("and") => {
                let body = e.tag_body().ok_or_else(|| bad("and body"))?;
                if body.len() < 2 {
                    return Err(bad("(and …) needs at least two conjuncts"));
                }
                let items: Result<Vec<Principal>, ParseError> =
                    body.iter().map(Principal::from_sexp).collect();
                Ok(Principal::conjunction(items?))
            }
            Some("k-of-n") => {
                let body = e.tag_body().ok_or_else(|| bad("k-of-n body"))?;
                if body.len() < 3 {
                    return Err(bad("(k-of-n k n s…) too short"));
                }
                let k = body[0].as_u64().ok_or_else(|| bad("k"))? as usize;
                let n = body[1].as_u64().ok_or_else(|| bad("n"))? as usize;
                let subjects: Result<Vec<Principal>, ParseError> =
                    body[2..].iter().map(Principal::from_sexp).collect();
                let subjects = subjects?;
                if subjects.len() != n || k == 0 || k > n {
                    return Err(bad("k-of-n arity mismatch"));
                }
                Ok(Principal::Threshold { k, subjects })
            }
            _ => Err(bad("unknown principal form")),
        }
    }

    /// A short human-readable description for audit output.
    pub fn describe(&self) -> String {
        match self {
            Principal::Key(k) => format!("key:{}", k.hash().short_hex()),
            Principal::KeyHash(h) => format!("keyhash:{}", h.short_hex()),
            Principal::Name { base, name } => format!("{}·{}", base.describe(), name),
            Principal::Channel(c) => format!("channel({:?})", c),
            Principal::Message(h) => format!("message:{}", h.short_hex()),
            Principal::Mac(h) => format!("mac:{}", h.short_hex()),
            Principal::Local { id, .. } => format!("local:{id}"),
            Principal::Quoting { quoter, quotee } => {
                format!("({} | {})", quoter.describe(), quotee.describe())
            }
            Principal::Conjunction(items) => {
                let parts: Vec<String> = items.iter().map(Principal::describe).collect();
                format!("({})", parts.join(" ∧ "))
            }
            Principal::Threshold { k, subjects } => {
                format!("{k}-of-{}", subjects.len())
            }
        }
    }
}

impl fmt::Debug for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowflake_crypto::{DetRng, Group, KeyPair};

    fn kp(seed: &str) -> KeyPair {
        let mut rng = DetRng::new(seed.as_bytes());
        KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
    }

    #[test]
    fn sexp_roundtrip_all_variants() {
        let k = kp("a");
        let samples = vec![
            Principal::key(&k.public),
            Principal::key_hash(&k.public),
            Principal::name(Principal::key_hash(&k.public), "mail"),
            Principal::Channel(ChannelId {
                kind: "ssh".into(),
                id: HashVal::of(b"session"),
            }),
            Principal::message(b"GET /inbox"),
            Principal::Mac(HashVal::of(b"mac-secret")),
            Principal::Local {
                broker: HashVal::of(b"jvm"),
                id: "alice".into(),
            },
            Principal::quoting(
                Principal::key_hash(&k.public),
                Principal::name(Principal::key_hash(&k.public), "client"),
            ),
            Principal::conjunction(vec![
                Principal::key_hash(&k.public),
                Principal::message(b"x"),
            ]),
            Principal::Threshold {
                k: 2,
                subjects: vec![
                    Principal::message(b"a"),
                    Principal::message(b"b"),
                    Principal::message(b"c"),
                ],
            },
        ];
        for p in samples {
            let e = p.to_sexp();
            let back = Principal::from_sexp(&e).unwrap_or_else(|err| panic!("{p:?}: {err}"));
            assert_eq!(back, p);
        }
    }

    #[test]
    fn conjunction_normalizes() {
        let a = Principal::message(b"a");
        let b = Principal::message(b"b");
        let ab = Principal::conjunction(vec![a.clone(), b.clone()]);
        let ba = Principal::conjunction(vec![b.clone(), a.clone()]);
        assert_eq!(ab, ba);
        // Flattening.
        let nested = Principal::conjunction(vec![ab.clone(), a.clone()]);
        assert_eq!(nested, ab);
        // Singleton unwraps.
        assert_eq!(Principal::conjunction(vec![a.clone()]), a);
    }

    #[test]
    fn parse_rejects_malformed() {
        for src in [
            "(name onlybase)",
            "(channel ssh)",
            "(quoting (message (hash sha256 #00#)))",
            "(and (message (hash sha256 #00#)))",
            "(k-of-n 3 2 (mac (hash sha256 #00#)) (mac (hash sha256 #01#)))",
            "(wat)",
        ] {
            let e = Sexp::parse(src.as_bytes()).unwrap();
            assert!(Principal::from_sexp(&e).is_err(), "{src}");
        }
    }

    #[test]
    fn describe_is_stable() {
        let k = kp("b");
        let g = Principal::quoting(
            Principal::key_hash(&k.public),
            Principal::name(Principal::key_hash(&k.public), "alice"),
        );
        let d = g.describe();
        assert!(d.contains('|'), "{d}");
        assert!(d.contains("·alice"), "{d}");
    }

    #[test]
    fn ordering_total_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Principal::message(b"a"));
        set.insert(Principal::message(b"a"));
        set.insert(Principal::message(b"b"));
        assert_eq!(set.len(), 2);
    }
}
