//! The verified-chain memo: re-presented proofs skip big-int work.
//!
//! The same proof chains arrive over and over — every request on a MAC
//! session, every RMI call from a cached client, every broker publish —
//! and between revocation events nothing about their verification
//! changes.  [`ChainMemo`] is a bounded, sharded map from
//! `(proof hash, context fingerprint)` to a successful verification,
//! consulted by `VerifyCtx::verify_cached` before any exponentiation
//! happens.
//!
//! **Soundness.**  Only *successful* verifications are memoized, and a
//! hit requires three things to line up:
//!
//! 1. the **proof hash** — the exact certificate chain and inference
//!    structure (the canonical encoding, so any re-signed or restructured
//!    proof is a different key);
//! 2. the **context fingerprint** — computed fresh by the caller at
//!    lookup time, folding together which assumption leaves the context
//!    vouches for (the trust-anchor set), the content hash (over the
//!    full signed wire form) of every revocation artifact governing a
//!    certificate in the chain, and the context's revocation epoch.  Any
//!    newly installed CRL — even a same-serial reissue with a different
//!    revoked set — expired revalidation, or changed assumption set
//!    changes the fingerprint and misses;
//! 3. the **entry's validity interval** — `verified_at ≤ now ≤
//!    valid_until`, where `valid_until` is the conservative minimum of
//!    every consulted artifact's validity end.  Verification outcomes are
//!    interval-stable between revocation-state changes (the only
//!    time-dependent checks are artifact-currency windows), so a hit
//!    inside the interval answers exactly what a cold verify would.
//!
//! Revocation *push* is the asynchronous hazard: [`ChainMemo::evict_cert`]
//! drops every entry whose provenance contains the dead certificate (the
//! memo rides the same `RevocationBus` as every other warm cache), and a
//! monotone push epoch ([`ChainMemo::push_epoch`]) lets `verify_cached`
//! discard an insert that raced a push — the same guard discipline the
//! servlet and RMI proof caches use.

use crate::statement::Time;
use snowflake_crypto::HashVal;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const SHARDS: usize = 16;

/// Memo key: the proof's canonical hash plus the context fingerprint it
/// was verified under.
#[derive(Clone, PartialEq, Eq, Hash)]
struct MemoKey {
    proof: HashVal,
    fingerprint: HashVal,
}

struct MemoEntry {
    verified_at: Time,
    /// Conservative minimum of consulted artifact validity ends; `None`
    /// when every consulted artifact (and the chain) is open-ended.
    valid_until: Option<Time>,
    /// Revocation provenance (`Proof::cert_hashes`) for push eviction.
    certs: Vec<HashVal>,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<MemoKey, MemoEntry>,
    /// Insertion order for FIFO eviction; may contain keys already
    /// removed by push eviction (skipped when popped).
    order: VecDeque<MemoKey>,
}

/// Counter snapshot — the memo's answer quality is provable from these
/// (a warm re-presented chain shows up as `hits` with no exponentiation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Lookups answered from the memo (big-int work skipped).
    pub hits: u64,
    /// Lookups that fell through to a cold verification.
    pub misses: u64,
    /// Successful verifications recorded.
    pub inserts: u64,
    /// Entries dropped by capacity (FIFO) or expiry.
    pub evictions: u64,
    /// Entries dropped because a certificate in their provenance was
    /// revoked (push eviction).
    pub revocation_evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// A bounded, sharded memo of successfully verified proof chains.
pub struct ChainMemo {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    push_epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    revocation_evictions: AtomicU64,
}

impl ChainMemo {
    /// A memo bounded to roughly `capacity` entries across 16 shards.
    pub fn new(capacity: usize) -> ChainMemo {
        ChainMemo {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_cap: capacity.div_ceil(SHARDS).max(1),
            push_epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            revocation_evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &MemoKey) -> &Mutex<Shard> {
        let b = key.proof.bytes.first().copied().unwrap_or(0) as usize;
        &self.shards[b % self.shards.len()]
    }

    /// Is a successful verification of `proof` under `fingerprint`
    /// recorded and valid at `now`?  An entry outside its validity
    /// interval is dropped (counted as an eviction) and misses.
    pub fn lookup(&self, proof: &HashVal, fingerprint: &HashVal, now: Time) -> bool {
        let key = MemoKey {
            proof: proof.clone(),
            fingerprint: fingerprint.clone(),
        };
        let mut shard = self.shard(&key).lock().unwrap();
        let live = match shard.entries.get(&key) {
            Some(en) => {
                now >= en.verified_at && en.valid_until.map_or(true, |until| now <= until)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        };
        if live {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            shard.entries.remove(&key);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        live
    }

    /// Records a successful verification.
    ///
    /// `push_epoch_at_verify` must be the [`ChainMemo::push_epoch`] value
    /// read *before* the verification ran; if a revocation push landed in
    /// between, the record is discarded — the push could not have evicted
    /// an entry that was not yet inserted.
    pub fn record(
        &self,
        proof: &HashVal,
        fingerprint: &HashVal,
        verified_at: Time,
        valid_until: Option<Time>,
        certs: Vec<HashVal>,
        push_epoch_at_verify: u64,
    ) {
        let key = MemoKey {
            proof: proof.clone(),
            fingerprint: fingerprint.clone(),
        };
        let mut shard = self.shard(&key).lock().unwrap();
        // Checked *under* the shard lock.  [`ChainMemo::evict_cert`] bumps
        // the epoch before locking any shard, so holding the lock leaves
        // exactly two orderings: the eviction's scan of this shard already
        // ran (then its prior bump is visible here and the stale insert is
        // discarded), or it has not run yet (then it will see — and judge —
        // whatever we insert).  A pre-lock check would leave a third:
        // check passes, the full eviction runs, *then* the stale insert
        // lands and serves pre-revocation hits until expiry.
        if self.push_epoch.load(Ordering::SeqCst) != push_epoch_at_verify {
            return;
        }
        while shard.entries.len() >= self.per_shard_cap {
            match shard.order.pop_front() {
                Some(old) => {
                    if shard.entries.remove(&old).is_some() {
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => break,
            }
        }
        if shard
            .entries
            .insert(
                key.clone(),
                MemoEntry {
                    verified_at,
                    valid_until,
                    certs,
                },
            )
            .is_none()
        {
            shard.order.push_back(key);
        }
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops every entry whose provenance contains `cert_hash`; returns
    /// how many died.  Bumps the push epoch first so a verification
    /// concurrently in flight cannot re-insert a pre-revocation answer.
    pub fn evict_cert(&self, cert_hash: &HashVal) -> usize {
        self.push_epoch.fetch_add(1, Ordering::SeqCst);
        let mut dropped = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            let before = shard.entries.len();
            shard.entries.retain(|_, en| !en.certs.contains(cert_hash));
            dropped += before - shard.entries.len();
        }
        self.revocation_evictions
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// The monotone revocation-push epoch (see [`ChainMemo::record`]).
    pub fn push_epoch(&self) -> u64 {
        self.push_epoch.load(Ordering::SeqCst)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            revocation_evictions: self.revocation_evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }

    /// Registers scrape-time callbacks exposing [`MemoStats`] under
    /// `sf_chain_memo_*{surface="..."}` — the same atomics
    /// [`stats`](Self::stats) reads.  One collector per surface label;
    /// re-registering a surface replaces its callback.
    pub fn register_metrics(
        self: &std::sync::Arc<Self>,
        registry: &snowflake_metrics::Registry,
        surface: &str,
    ) {
        use snowflake_metrics::Sample;
        registry.set_help(
            "sf_chain_memo_hits_total",
            "Verified-chain memo lookups answered without big-int work",
        );
        let memo = std::sync::Arc::downgrade(self);
        let surface = surface.to_string();
        registry.register_collector(
            &format!("memo:{surface}"),
            std::sync::Arc::new(move |out: &mut Vec<Sample>| {
                let Some(memo) = memo.upgrade() else { return };
                let s = memo.stats();
                let labels: &[(&str, &str)] = &[("surface", &surface)];
                out.push(Sample::counter("sf_chain_memo_hits_total", labels, s.hits));
                out.push(Sample::counter("sf_chain_memo_misses_total", labels, s.misses));
                out.push(Sample::counter("sf_chain_memo_inserts_total", labels, s.inserts));
                out.push(Sample::counter("sf_chain_memo_evictions_total", labels, s.evictions));
                out.push(Sample::counter(
                    "sf_chain_memo_revocation_evictions_total",
                    labels,
                    s.revocation_evictions,
                ));
                out.push(Sample::gauge("sf_chain_memo_entries", labels, s.entries as f64));
            }),
        );
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().entries.len())
            .sum()
    }

    /// `true` when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(s: &str) -> HashVal {
        HashVal::of(s.as_bytes())
    }

    #[test]
    fn hit_requires_same_key_and_interval() {
        let memo = ChainMemo::new(64);
        let epoch = memo.push_epoch();
        memo.record(&h("p"), &h("fp"), Time(10), Some(Time(100)), vec![h("c")], epoch);
        assert!(memo.lookup(&h("p"), &h("fp"), Time(50)));
        assert!(!memo.lookup(&h("p"), &h("other-fp"), Time(50)));
        assert!(!memo.lookup(&h("other-p"), &h("fp"), Time(50)));
        // Before verified_at: miss (clock ran backwards across contexts).
        memo.record(&h("p2"), &h("fp"), Time(10), Some(Time(100)), vec![], epoch);
        assert!(!memo.lookup(&h("p2"), &h("fp"), Time(5)));
    }

    #[test]
    fn expiry_drops_the_entry() {
        let memo = ChainMemo::new(64);
        let epoch = memo.push_epoch();
        memo.record(&h("p"), &h("fp"), Time(10), Some(Time(100)), vec![], epoch);
        assert!(!memo.lookup(&h("p"), &h("fp"), Time(200)));
        assert_eq!(memo.len(), 0, "expired entry is evicted, not retained");
        assert_eq!(memo.stats().evictions, 1);
    }

    #[test]
    fn push_eviction_by_cert_hash() {
        let memo = ChainMemo::new(64);
        let epoch = memo.push_epoch();
        memo.record(&h("p1"), &h("fp"), Time(1), None, vec![h("a"), h("b")], epoch);
        memo.record(&h("p2"), &h("fp"), Time(1), None, vec![h("c")], epoch);
        assert_eq!(memo.evict_cert(&h("b")), 1);
        assert!(!memo.lookup(&h("p1"), &h("fp"), Time(2)));
        assert!(memo.lookup(&h("p2"), &h("fp"), Time(2)));
        assert_eq!(memo.stats().revocation_evictions, 1);
    }

    #[test]
    fn racing_push_discards_insert() {
        let memo = ChainMemo::new(64);
        let epoch = memo.push_epoch();
        memo.evict_cert(&h("unrelated")); // push lands mid-verification
        memo.record(&h("p"), &h("fp"), Time(1), None, vec![h("a")], epoch);
        assert!(!memo.lookup(&h("p"), &h("fp"), Time(2)), "stale insert discarded");
    }

    #[test]
    fn capacity_is_bounded_fifo() {
        let memo = ChainMemo::new(16); // 1 per shard
        let epoch = memo.push_epoch();
        for i in 0..64 {
            memo.record(&h(&format!("p{i}")), &h("fp"), Time(1), None, vec![], epoch);
        }
        assert!(memo.len() <= 16, "len {} exceeds bound", memo.len());
        assert!(memo.stats().evictions > 0);
    }
}
