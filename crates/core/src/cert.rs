//! Signed certificates: the `signed-certificate` proof leaves of Figure 1.
//!
//! "Logical assumptions represent statements that a principal believes based
//! on some verification (outside the logic), such as the result of a digital
//! signature verification" (paper §3).  A [`Certificate`] packages a
//! [`Delegation`] with the signature that justifies believing
//! `issuer says (subject =T⇒ issuer)`.

use crate::principal::Principal;
use crate::revocation::RevocationPolicy;
use crate::statement::Delegation;
use snowflake_crypto::{HashAlg, HashVal, KeyPair, PublicKey, Signature};
use snowflake_sexpr::{ParseError, Sexp};
use std::fmt;

/// A delegation signed by a key controlling its issuer.
#[derive(Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The signed statement.
    pub delegation: Delegation,
    /// The key that produced the signature.
    pub signer: PublicKey,
    /// Optional revocation policy the verifier must consult.
    pub revocation: Option<RevocationPolicy>,
    /// Schnorr signature over the to-be-signed S-expression.
    pub signature: Signature,
}

impl Certificate {
    /// Issues (signs) a certificate for `delegation` with `keypair`.
    ///
    /// # Panics
    ///
    /// Panics if `keypair` does not control `delegation.issuer` — issuing a
    /// certificate no verifier could ever accept is a programming error.
    pub fn issue(
        keypair: &KeyPair,
        delegation: Delegation,
        rand_bytes: &mut dyn FnMut(&mut [u8]),
    ) -> Certificate {
        Self::issue_with_revocation(keypair, delegation, None, rand_bytes)
    }

    /// Issues a certificate carrying a revocation policy.
    ///
    /// # Panics
    ///
    /// Panics if `keypair` does not control `delegation.issuer`.
    pub fn issue_with_revocation(
        keypair: &KeyPair,
        delegation: Delegation,
        revocation: Option<RevocationPolicy>,
        rand_bytes: &mut dyn FnMut(&mut [u8]),
    ) -> Certificate {
        assert!(
            key_controls(&keypair.public, &delegation.issuer),
            "signing key does not control issuer {:?}",
            delegation.issuer
        );
        let tbs = to_be_signed(&delegation, &revocation);
        let signature = keypair.sign(&tbs.canonical(), rand_bytes);
        Certificate {
            delegation,
            signer: keypair.public.clone(),
            revocation,
            signature,
        }
    }

    /// Checks the signature and the signer's control of the issuer.
    pub fn check(&self) -> Result<(), String> {
        self.check_structure()?;
        if !self.signer.verify(&self.signed_bytes(), &self.signature) {
            return Err("signature verification failed".into());
        }
        Ok(())
    }

    /// The structural half of [`Certificate::check`]: the signer must
    /// control the issuer.  Kept separate so a multi-certificate proof
    /// can run every structural check first and then verify all the
    /// signatures as one batch (`schnorr::verify_batch`).
    pub fn check_structure(&self) -> Result<(), String> {
        if !key_controls(&self.signer, &self.delegation.issuer) {
            return Err(format!(
                "signer {:?} does not control issuer {}",
                self.signer,
                self.delegation.issuer.describe()
            ));
        }
        Ok(())
    }

    /// The canonical to-be-signed bytes [`Certificate::signature`] covers.
    pub fn signed_bytes(&self) -> Vec<u8> {
        to_be_signed(&self.delegation, &self.revocation).canonical()
    }

    /// Hash identifying this certificate (used by revocation lists).
    pub fn hash(&self) -> HashVal {
        HashVal::of_sexp(&to_be_signed(&self.delegation, &self.revocation))
    }

    /// Serializes to `(signed-cert <tbs> <signer> <signature>)`.
    pub fn to_sexp(&self) -> Sexp {
        Sexp::tagged(
            "signed-cert",
            vec![
                to_be_signed(&self.delegation, &self.revocation),
                self.signer.to_sexp(),
                self.signature.to_sexp(),
            ],
        )
    }

    /// Parses the form produced by [`Certificate::to_sexp`].
    ///
    /// Parsing does **not** verify the signature; call [`Certificate::check`]
    /// (or verify a containing proof) for that.
    pub fn from_sexp(e: &Sexp) -> Result<Certificate, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        if e.tag_name() != Some("signed-cert") {
            return Err(bad("expected (signed-cert …)"));
        }
        let body = e.tag_body().ok_or_else(|| bad("signed-cert body"))?;
        if body.len() != 3 {
            return Err(bad("signed-cert takes tbs, signer, signature"));
        }
        let (delegation, revocation) = from_to_be_signed(&body[0])?;
        let signer = PublicKey::from_sexp(&body[1])?;
        let signature = Signature::from_sexp(&body[2])?;
        Ok(Certificate {
            delegation,
            signer,
            revocation,
            signature,
        })
    }
}

/// The to-be-signed body: the delegation cert, extended with the revocation
/// policy when present.
fn to_be_signed(delegation: &Delegation, revocation: &Option<RevocationPolicy>) -> Sexp {
    let mut e = delegation.to_sexp();
    if let Some(policy) = revocation {
        if let Sexp::List(items) = &mut e {
            items.push(policy.to_sexp());
        }
    }
    e
}

fn from_to_be_signed(e: &Sexp) -> Result<(Delegation, Option<RevocationPolicy>), ParseError> {
    let delegation = Delegation::from_sexp(e)?;
    let revocation = e
        .find("revocation")
        .map(RevocationPolicy::from_sexp)
        .transpose()?;
    Ok((delegation, revocation))
}

/// Does `key` control (may it sign for) `issuer`?
///
/// A key controls itself, its hash (under any supported algorithm), and any
/// name rooted in a principal it controls — the SPKI issuer forms.
pub fn key_controls(key: &PublicKey, issuer: &Principal) -> bool {
    match issuer {
        Principal::Key(k) => k.as_ref() == key,
        Principal::KeyHash(h) => HashVal::digest(h.alg, &key.to_sexp().canonical()) == *h,
        Principal::Name { base, .. } => key_controls(key, base),
        _ => false,
    }
}

impl fmt::Debug for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Certificate[{:?}]", self.delegation)
    }
}

/// Computes the hash-principal of a key under a given algorithm.
///
/// Provided so `md5`-flavored SPKI identities (paper Figure 5) work: a key's
/// md5 hash principal and sha256 hash principal both denote the key.
pub fn key_hash_with(key: &PublicKey, alg: HashAlg) -> HashVal {
    HashVal::digest(alg, &key.to_sexp().canonical())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statement::{Time, Validity};
    use snowflake_crypto::{DetRng, Group};
    use snowflake_tags::Tag;

    fn rng(seed: &str) -> impl FnMut(&mut [u8]) {
        let mut r = DetRng::new(seed.as_bytes());
        move |b: &mut [u8]| r.fill(b)
    }

    fn sample_delegation(issuer: &PublicKey, subject: &PublicKey) -> Delegation {
        Delegation {
            subject: Principal::key(subject),
            issuer: Principal::key(issuer),
            tag: Tag::named("web", vec![]),
            validity: Validity::until(Time(10_000)),
            delegable: true,
        }
    }

    #[test]
    fn issue_and_check() {
        let mut r = rng("issue");
        let alice = KeyPair::generate(Group::test512(), &mut r);
        let bob = KeyPair::generate(Group::test512(), &mut r);
        let cert = Certificate::issue(
            &alice,
            sample_delegation(&alice.public, &bob.public),
            &mut r,
        );
        assert!(cert.check().is_ok());
    }

    #[test]
    fn tampered_delegation_fails() {
        let mut r = rng("tamper");
        let alice = KeyPair::generate(Group::test512(), &mut r);
        let bob = KeyPair::generate(Group::test512(), &mut r);
        let mut cert = Certificate::issue(
            &alice,
            sample_delegation(&alice.public, &bob.public),
            &mut r,
        );
        cert.delegation.tag = Tag::Star; // escalate the restriction
        assert!(cert.check().is_err());
    }

    #[test]
    fn issuer_may_be_key_hash_or_name() {
        let mut r = rng("hash-issuer");
        let alice = KeyPair::generate(Group::test512(), &mut r);
        let bob = KeyPair::generate(Group::test512(), &mut r);
        // Hash-of-key issuer.
        let d = Delegation {
            issuer: Principal::key_hash(&alice.public),
            ..sample_delegation(&alice.public, &bob.public)
        };
        assert!(Certificate::issue(&alice, d, &mut r).check().is_ok());
        // Name rooted in the key: K_alice · "mail".
        let d = Delegation {
            issuer: Principal::name(Principal::key_hash(&alice.public), "mail"),
            ..sample_delegation(&alice.public, &bob.public)
        };
        assert!(Certificate::issue(&alice, d, &mut r).check().is_ok());
    }

    #[test]
    #[should_panic(expected = "does not control issuer")]
    fn issuing_for_foreign_issuer_panics() {
        let mut r = rng("foreign");
        let alice = KeyPair::generate(Group::test512(), &mut r);
        let bob = KeyPair::generate(Group::test512(), &mut r);
        // Bob tries to sign a delegation whose issuer is Alice.
        let _ = Certificate::issue(&bob, sample_delegation(&alice.public, &bob.public), &mut r);
    }

    #[test]
    fn wrong_signer_detected_on_check() {
        let mut r = rng("swap");
        let alice = KeyPair::generate(Group::test512(), &mut r);
        let bob = KeyPair::generate(Group::test512(), &mut r);
        let mut cert = Certificate::issue(
            &alice,
            sample_delegation(&alice.public, &bob.public),
            &mut r,
        );
        // An adversary replaces the signer field with their own key.
        cert.signer = bob.public.clone();
        assert!(cert.check().is_err());
    }

    #[test]
    fn sexp_roundtrip_preserves_verification() {
        let mut r = rng("roundtrip");
        let alice = KeyPair::generate(Group::test512(), &mut r);
        let bob = KeyPair::generate(Group::test512(), &mut r);
        let cert = Certificate::issue(
            &alice,
            sample_delegation(&alice.public, &bob.public),
            &mut r,
        );
        let e = cert.to_sexp();
        let back = Certificate::from_sexp(&e).unwrap();
        assert_eq!(back, cert);
        assert!(back.check().is_ok());
        // And through the transport encoding, as HTTP headers would carry it.
        let transported = Sexp::parse(e.transport().as_bytes()).unwrap();
        assert!(Certificate::from_sexp(&transported)
            .unwrap()
            .check()
            .is_ok());
    }

    #[test]
    fn key_controls_rules() {
        let mut r = rng("controls");
        let alice = KeyPair::generate(Group::test512(), &mut r);
        let bob = KeyPair::generate(Group::test512(), &mut r);
        assert!(key_controls(&alice.public, &Principal::key(&alice.public)));
        assert!(key_controls(
            &alice.public,
            &Principal::key_hash(&alice.public)
        ));
        assert!(!key_controls(
            &alice.public,
            &Principal::key_hash(&bob.public)
        ));
        assert!(!key_controls(&alice.public, &Principal::message(b"m")));
        // md5-flavored hash principal also denotes the key.
        let md5_hash = key_hash_with(&alice.public, HashAlg::Md5);
        assert!(key_controls(&alice.public, &Principal::KeyHash(md5_hash)));
        // Deeply named principals.
        let deep = Principal::name(
            Principal::name(Principal::key_hash(&alice.public), "a"),
            "b",
        );
        assert!(key_controls(&alice.public, &deep));
    }
}
