//! SPKI sequences: the linear proof format Snowflake argues against.
//!
//! "SPKI's sequence objects also represent proofs of authority.  SPKI
//! sequences are poorly defined, but they are linear programs apparently
//! intended to run on a simple verifier implemented as a stack machine.
//! When certificates and opcodes are presented to the machine in the
//! correct order, the machine arrives at the desired conclusion" (§4.3).
//!
//! This module implements that stack machine for transitivity chains —
//! enough to interoperate with sequence-speaking SPKI peers — plus
//! lossless conversion to and from the structured [`Proof`] form.  The
//! conversion functions are themselves the paper's argument made
//! executable: flattening a structured proof *loses* the non-linear rules
//! (quoting, conjunction, name manipulation), which is reason one why
//! Snowflake transmits structured proofs.

use crate::cert::Certificate;
use crate::proof::{Proof, ProofError};
use crate::statement::Delegation;
use crate::verify::VerifyCtx;
use snowflake_sexpr::{ParseError, Sexp};

/// One instruction of a sequence program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Push a certificate's statement onto the stack.
    Cert(Box<Certificate>),
    /// Pop `B ⇒ C` then `A ⇒ B`; push the composed `A ⇒ C`.
    Compose,
}

/// A linear SPKI-style proof: a program for the stack verifier.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sequence {
    /// The instructions, executed in order.
    pub ops: Vec<Op>,
}

impl Sequence {
    /// Runs the stack machine, returning the single conclusion left on the
    /// stack.
    ///
    /// Every certificate is checked as it is pushed; `Compose` enforces the
    /// same side conditions as the structured `Transitivity` rule.
    pub fn verify(&self, ctx: &VerifyCtx) -> Result<Delegation, ProofError> {
        let mut stack: Vec<Delegation> = Vec::new();
        for op in &self.ops {
            match op {
                Op::Cert(cert) => {
                    cert.check().map_err(ProofError::BadCertificate)?;
                    ctx.check_revocation(cert)?;
                    stack.push(cert.delegation.clone());
                }
                Op::Compose => {
                    let right = stack
                        .pop()
                        .ok_or_else(|| ProofError::Malformed("compose on empty stack".into()))?;
                    let left = stack.pop().ok_or_else(|| {
                        ProofError::Malformed("compose needs two operands".into())
                    })?;
                    if left.issuer != right.subject {
                        return Err(ProofError::BadInference(format!(
                            "sequence gap: {} vs {}",
                            left.issuer.describe(),
                            right.subject.describe()
                        )));
                    }
                    if !right.delegable {
                        return Err(ProofError::BadInference(
                            "sequence composes through a non-delegable statement".into(),
                        ));
                    }
                    let tag = left
                        .tag
                        .intersect(&right.tag)
                        .ok_or_else(|| ProofError::BadInference("empty tag intersection".into()))?;
                    let validity = left.validity.intersect(&right.validity).ok_or_else(|| {
                        ProofError::BadInference("disjoint validity windows".into())
                    })?;
                    stack.push(Delegation {
                        subject: left.subject,
                        issuer: right.issuer,
                        tag,
                        validity,
                        delegable: left.delegable && right.delegable,
                    });
                }
            }
        }
        if stack.len() != 1 {
            return Err(ProofError::Malformed(format!(
                "sequence leaves {} values on the stack",
                stack.len()
            )));
        }
        Ok(stack.pop().expect("len checked"))
    }

    /// Flattens a structured proof into a sequence.
    ///
    /// Only certificate/transitivity trees flatten; the non-linear rules
    /// (quoting, conjunction, names, hashes, assumptions) have no sequence
    /// encoding — exactly the expressiveness gap the paper cites when
    /// arguing for structured proofs.
    pub fn from_proof(proof: &Proof) -> Result<Sequence, ProofError> {
        let mut seq = Sequence::default();
        flatten(proof, &mut seq)?;
        Ok(seq)
    }

    /// Rebuilds a structured proof from the sequence (the reverse mapping
    /// the paper notes SPKI verifiers need externally).
    pub fn to_proof(&self) -> Result<Proof, ProofError> {
        let mut stack: Vec<Proof> = Vec::new();
        for op in &self.ops {
            match op {
                Op::Cert(cert) => stack.push(Proof::SignedCert(cert.clone())),
                Op::Compose => {
                    let right = stack
                        .pop()
                        .ok_or_else(|| ProofError::Malformed("compose on empty stack".into()))?;
                    let left = stack.pop().ok_or_else(|| {
                        ProofError::Malformed("compose needs two operands".into())
                    })?;
                    stack.push(left.then(right));
                }
            }
        }
        if stack.len() != 1 {
            return Err(ProofError::Malformed(
                "sequence does not reduce to one proof".into(),
            ));
        }
        Ok(stack.pop().expect("len checked"))
    }

    /// Serializes to `(sequence <cert|compose>…)`.
    pub fn to_sexp(&self) -> Sexp {
        let body = self
            .ops
            .iter()
            .map(|op| match op {
                Op::Cert(c) => c.to_sexp(),
                Op::Compose => Sexp::list(vec![Sexp::from("compose")]),
            })
            .collect();
        Sexp::tagged("sequence", body)
    }

    /// Parses the form produced by [`Sequence::to_sexp`].
    pub fn from_sexp(e: &Sexp) -> Result<Sequence, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        if e.tag_name() != Some("sequence") {
            return Err(bad("expected (sequence …)"));
        }
        let mut ops = Vec::new();
        for item in e.tag_body().unwrap_or(&[]) {
            match item.tag_name() {
                Some("signed-cert") => ops.push(Op::Cert(Box::new(Certificate::from_sexp(item)?))),
                Some("compose") => ops.push(Op::Compose),
                _ => return Err(bad("unknown sequence opcode")),
            }
        }
        Ok(Sequence { ops })
    }
}

fn flatten(proof: &Proof, seq: &mut Sequence) -> Result<(), ProofError> {
    match proof {
        Proof::SignedCert(cert) => {
            seq.ops.push(Op::Cert(cert.clone()));
            Ok(())
        }
        Proof::Transitivity(left, right) => {
            flatten(left, seq)?;
            flatten(right, seq)?;
            seq.ops.push(Op::Compose);
            Ok(())
        }
        other => Err(ProofError::Malformed(format!(
            "rule {:?} has no SPKI-sequence encoding (structured proofs are strictly more expressive)",
            other
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::Principal;
    use crate::statement::{Time, Validity};
    use snowflake_crypto::{DetRng, Group, KeyPair};
    use snowflake_tags::Tag;

    fn kp(seed: &str) -> KeyPair {
        let mut rng = DetRng::new(seed.as_bytes());
        KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
    }

    fn chain(len: usize) -> (Proof, Vec<KeyPair>) {
        let keys: Vec<KeyPair> = (0..=len).map(|i| kp(&format!("seq-{i}"))).collect();
        let mut rng = DetRng::new(b"seq-sign");
        let mut proof: Option<Proof> = None;
        for i in 0..len {
            let cert = Certificate::issue(
                &keys[i],
                Delegation {
                    subject: Principal::key(&keys[i + 1].public),
                    issuer: Principal::key(&keys[i].public),
                    tag: Tag::named("web", vec![]),
                    validity: Validity::always(),
                    delegable: true,
                },
                &mut |b| rng.fill(b),
            );
            let link = Proof::signed_cert(cert);
            proof = Some(match proof {
                None => link,
                Some(acc) => link.then(acc),
            });
        }
        (proof.expect("len >= 1"), keys)
    }

    #[test]
    fn sequence_and_structured_agree() {
        let ctx = VerifyCtx::at(Time(0));
        for len in [1usize, 2, 5] {
            let (structured, _) = chain(len);
            structured.verify(&ctx).unwrap();
            let seq = Sequence::from_proof(&structured).unwrap();
            let seq_conclusion = seq.verify(&ctx).unwrap();
            assert_eq!(seq_conclusion, structured.conclusion(), "len {len}");
            // And back again.
            let rebuilt = seq.to_proof().unwrap();
            rebuilt.verify(&ctx).unwrap();
            assert_eq!(rebuilt.conclusion(), structured.conclusion());
        }
    }

    #[test]
    fn sexp_roundtrip() {
        let (structured, _) = chain(3);
        let seq = Sequence::from_proof(&structured).unwrap();
        let back = Sequence::from_sexp(&seq.to_sexp()).unwrap();
        assert_eq!(back, seq);
        assert_eq!(
            back.verify(&VerifyCtx::at(Time(0))).unwrap(),
            structured.conclusion()
        );
    }

    #[test]
    fn malformed_programs_rejected() {
        let ctx = VerifyCtx::at(Time(0));
        // Compose with too few operands.
        let bad = Sequence {
            ops: vec![Op::Compose],
        };
        assert!(matches!(bad.verify(&ctx), Err(ProofError::Malformed(_))));
        // Two certificates, no compose: two values left.
        let (p1, _) = chain(1);
        let Proof::SignedCert(c) = p1 else {
            panic!("chain(1) is one cert")
        };
        let bad = Sequence {
            ops: vec![Op::Cert(c.clone()), Op::Cert(c)],
        };
        assert!(matches!(bad.verify(&ctx), Err(ProofError::Malformed(_))));
        // Empty program.
        assert!(Sequence::default().verify(&ctx).is_err());
    }

    #[test]
    fn wrong_order_is_a_gap() {
        // Pushing the chain in the wrong order makes the composition
        // ill-typed — the machine must notice, not silently conclude.
        let (structured, _) = chain(2);
        let seq = Sequence::from_proof(&structured).unwrap();
        let mut swapped = seq.clone();
        swapped.ops.swap(0, 1);
        assert!(swapped.verify(&VerifyCtx::at(Time(0))).is_err());
    }

    #[test]
    fn nonlinear_rules_do_not_flatten() {
        // Quoting has no sequence encoding — the expressiveness gap.
        let (inner, _) = chain(1);
        let quoted = Proof::QuoteQuotee {
            inner: Box::new(inner),
            quoter: Principal::message(b"gw"),
        };
        assert!(Sequence::from_proof(&quoted).is_err());
    }

    #[test]
    fn sequence_enforces_delegable_and_tags() {
        let a = kp("sq-a");
        let b = kp("sq-b");
        let c = kp("sq-c");
        let mut rng = DetRng::new(b"sq");
        // a→b non-delegable; composing b→c onto it must fail.
        let c1 = Certificate::issue(
            &a,
            Delegation {
                subject: Principal::key(&b.public),
                issuer: Principal::key(&a.public),
                tag: Tag::named("web", vec![]),
                validity: Validity::always(),
                delegable: false,
            },
            &mut |x| rng.fill(x),
        );
        let c2 = Certificate::issue(
            &b,
            Delegation {
                subject: Principal::key(&c.public),
                issuer: Principal::key(&b.public),
                tag: Tag::named("web", vec![]),
                validity: Validity::always(),
                delegable: true,
            },
            &mut |x| rng.fill(x),
        );
        let seq = Sequence {
            ops: vec![Op::Cert(Box::new(c2)), Op::Cert(Box::new(c1)), Op::Compose],
        };
        assert!(matches!(
            seq.verify(&VerifyCtx::at(Time(0))),
            Err(ProofError::BadInference(_))
        ));
    }
}
