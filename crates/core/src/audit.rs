//! Audit record and emitter interface for authorization decisions.
//!
//! The paper's end-to-end argument is that the resource server sees the
//! *entire* delegation chain behind every request — which is precisely what
//! makes decisions reviewable after the fact.  This module defines the
//! record of one such decision ([`DecisionEvent`]) and the narrow interface
//! a decision point uses to report it ([`AuditEmitter`]).
//!
//! Only the *record and wire forms* live here, so every server crate (HTTP,
//! RMI, the applications, the revocation subsystem) can emit events without
//! depending on the audit log implementation; the chained, signed,
//! queryable log itself lives in `snowflake-audit`.

use crate::principal::Principal;
use crate::statement::Time;
use snowflake_crypto::HashVal;
use snowflake_sexpr::{ParseError, Sexp};
use std::fmt;

/// The verdict of one authorization decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The request was authorized and served.
    Grant,
    /// The request was refused (bad proof, missing proof, issuer mismatch,
    /// failed app-level check, or a challenge sent instead of service).
    Deny,
    /// The request was shed before any authorization ran (bounded runtime
    /// at capacity → 503 / `RmiFault::Busy`).  The request was *not*
    /// processed.
    Shed,
    /// A revocation event: a certificate was declared dead and warm state
    /// depending on it was invalidated.
    Revoke,
}

impl Decision {
    /// The wire name of the decision.
    pub fn name(self) -> &'static str {
        match self {
            Decision::Grant => "grant",
            Decision::Deny => "deny",
            Decision::Shed => "shed",
            Decision::Revoke => "revoke",
        }
    }

    /// Parses the form produced by [`Decision::name`].
    pub fn from_name(name: &str) -> Option<Decision> {
        match name {
            "grant" => Some(Decision::Grant),
            "deny" => Some(Decision::Deny),
            "shed" => Some(Decision::Shed),
            "revoke" => Some(Decision::Revoke),
            _ => None,
        }
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One authorization decision, with its full speaks-for provenance.
///
/// Every grant, deny, shed, and revocation across the serving surfaces
/// produces one of these.  `cert_hashes` is the proof's revocation
/// provenance ([`crate::Proof::cert_hashes`]): the exact set of signed
/// certificates the decision rested on, so any historical grant can be
/// re-examined — *which* delegations justified it, and whether any was
/// since revoked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionEvent {
    /// When the decision was made.
    pub time: Time,
    /// Which decision point: `http`, `http-mac`, `rmi`, `gateway`,
    /// `emaildb`, `web`, `revocation`, …
    pub surface: String,
    /// The principal the request was attributed to, when one was
    /// established (sheds and challenge denials have none).
    pub subject: Option<Principal>,
    /// The object the decision was about: a resource path, an RMI
    /// `object`, a certificate hash for revocations.
    pub object: String,
    /// The action requested: an HTTP method, an RMI method, a database op.
    pub action: String,
    /// The verdict.
    pub decision: Decision,
    /// Human-readable detail (the deny reason, the cache tier that
    /// answered, the shed cause).
    pub detail: String,
    /// Hashes of the signed certificates the decision depended on — the
    /// proof's speaks-for provenance (empty for sheds and proof-less
    /// denials).
    pub cert_hashes: Vec<HashVal>,
    /// The revocation epoch the decider held (highest installed CRL
    /// serial; 0 when it held none), recording *against which revocation
    /// state* the verdict was reached.
    pub revocation_epoch: u64,
}

impl DecisionEvent {
    /// A new event with empty provenance; use the builder methods to
    /// attach subject, certificates, and the revocation epoch.
    pub fn new(
        time: Time,
        surface: &str,
        decision: Decision,
        object: &str,
        action: &str,
        detail: &str,
    ) -> DecisionEvent {
        DecisionEvent {
            time,
            surface: surface.to_string(),
            subject: None,
            object: object.to_string(),
            action: action.to_string(),
            decision,
            detail: detail.to_string(),
            cert_hashes: Vec::new(),
            revocation_epoch: 0,
        }
    }

    /// Attaches the authenticated subject.
    pub fn with_subject(mut self, subject: Principal) -> DecisionEvent {
        self.subject = Some(subject);
        self
    }

    /// Attaches the proof's certificate provenance.
    pub fn with_certs(mut self, certs: Vec<HashVal>) -> DecisionEvent {
        self.cert_hashes = certs;
        self
    }

    /// Attaches the decider's revocation epoch.
    pub fn with_epoch(mut self, epoch: u64) -> DecisionEvent {
        self.revocation_epoch = epoch;
        self
    }

    /// Serializes to
    /// `(decision (time n) (surface s) (object o) (action a) (verdict v)
    ///   (detail d) (epoch n) (subject p)? (certs h…)?)`.
    pub fn to_sexp(&self) -> Sexp {
        let mut body = vec![
            Sexp::tagged("time", vec![Sexp::int(self.time.0)]),
            Sexp::tagged("surface", vec![Sexp::from(self.surface.as_str())]),
            Sexp::tagged("object", vec![Sexp::from(self.object.as_str())]),
            Sexp::tagged("action", vec![Sexp::from(self.action.as_str())]),
            Sexp::tagged("verdict", vec![Sexp::from(self.decision.name())]),
            Sexp::tagged("detail", vec![Sexp::from(self.detail.as_str())]),
            Sexp::tagged("epoch", vec![Sexp::int(self.revocation_epoch)]),
        ];
        if let Some(subject) = &self.subject {
            body.push(Sexp::tagged("subject", vec![subject.to_sexp()]));
        }
        if !self.cert_hashes.is_empty() {
            body.push(Sexp::tagged(
                "certs",
                self.cert_hashes.iter().map(HashVal::to_sexp).collect(),
            ));
        }
        Sexp::tagged("decision", body)
    }

    /// Parses the form produced by [`DecisionEvent::to_sexp`].
    pub fn from_sexp(e: &Sexp) -> Result<DecisionEvent, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        if e.tag_name() != Some("decision") {
            return Err(bad("expected (decision …)"));
        }
        let field_str = |name: &str| -> Result<String, ParseError> {
            e.find_value(name)
                .and_then(Sexp::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(name))
        };
        let field_int =
            |name: &str| -> Result<u64, ParseError> {
                e.find_value(name).and_then(Sexp::as_u64).ok_or_else(|| bad(name))
            };
        let decision = Decision::from_name(&field_str("verdict")?)
            .ok_or_else(|| bad("unknown verdict"))?;
        let subject = match e.find("subject") {
            Some(s) => Some(Principal::from_sexp(
                s.tag_body()
                    .and_then(<[Sexp]>::first)
                    .ok_or_else(|| bad("subject body"))?,
            )?),
            None => None,
        };
        let cert_hashes = match e.find("certs") {
            Some(c) => c
                .tag_body()
                .unwrap_or(&[])
                .iter()
                .map(HashVal::from_sexp)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        Ok(DecisionEvent {
            time: Time(field_int("time")?),
            surface: field_str("surface")?,
            subject,
            object: field_str("object")?,
            action: field_str("action")?,
            decision,
            detail: field_str("detail")?,
            cert_hashes,
            revocation_epoch: field_int("epoch")?,
        })
    }
}

/// The interface a decision point reports through.
///
/// Implementations must **never block**: decision points sit on request
/// hot paths and the contract is fire-and-forget.  The production
/// implementation (`snowflake-audit`'s `AuditSink`) enqueues on a bounded
/// queue and *counts* what it cannot accept, exactly like every other
/// queue in the serving path.
pub trait AuditEmitter: Send + Sync {
    /// Reports one decision.  Must not block; overflow is dropped and
    /// counted by the implementation.
    fn emit(&self, event: DecisionEvent);
}

/// An emitter that discards everything (the default when no audit
/// subsystem is attached).
pub struct NullEmitter;

impl AuditEmitter for NullEmitter {
    fn emit(&self, _event: DecisionEvent) {}
}

/// A late-bound emitter slot for decision points.
///
/// Every server that emits audit events holds one of these: the slot
/// starts empty (auditing off) and an emitter is attached at wiring
/// time.  [`EmitterSlot::emit_with`] builds the event only when one is
/// attached, so un-audited deployments pay one uncontended lock and
/// nothing else.
#[derive(Default)]
pub struct EmitterSlot(std::sync::RwLock<Option<std::sync::Arc<dyn AuditEmitter>>>);

impl EmitterSlot {
    /// An empty slot (auditing off).
    pub fn new() -> EmitterSlot {
        EmitterSlot::default()
    }

    /// Attaches (or replaces) the emitter.
    pub fn set(&self, emitter: std::sync::Arc<dyn AuditEmitter>) {
        use crate::sync::RwLockExt;
        *self.0.pwrite() = Some(emitter);
    }

    /// Emits `build()`'s event iff an emitter is attached; the closure
    /// (which may clone principals and provenance) runs only then, and
    /// outside the slot lock.  The slot is set-rarely/read-often: emits
    /// take the read lock, so concurrent requests never serialize here.
    pub fn emit_with(&self, build: impl FnOnce() -> DecisionEvent) {
        use crate::sync::RwLockExt;
        let emitter = self.0.pread().clone();
        if let Some(emitter) = emitter {
            emitter.emit(build());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_sexp_roundtrip() {
        let ev = DecisionEvent::new(
            Time(42),
            "rmi",
            Decision::Grant,
            "email-db",
            "select",
            "cache hit",
        )
        .with_subject(Principal::message(b"alice"))
        .with_certs(vec![HashVal::of(b"cert-1"), HashVal::of(b"cert-2")])
        .with_epoch(7);
        let back = DecisionEvent::from_sexp(&ev.to_sexp()).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn minimal_event_roundtrip() {
        let ev = DecisionEvent::new(Time(0), "http", Decision::Shed, "tcp-accept", "connect", "busy");
        let back = DecisionEvent::from_sexp(&ev.to_sexp()).unwrap();
        assert_eq!(back, ev);
        assert!(back.subject.is_none());
        assert!(back.cert_hashes.is_empty());
    }

    #[test]
    fn decision_names_roundtrip() {
        for d in [Decision::Grant, Decision::Deny, Decision::Shed, Decision::Revoke] {
            assert_eq!(Decision::from_name(d.name()), Some(d));
        }
        assert_eq!(Decision::from_name("maybe"), None);
    }

    #[test]
    fn malformed_events_rejected() {
        for src in [
            "(not-a-decision)",
            "(decision (time 1))",
            "(decision (time 1) (surface s) (object o) (action a) (verdict sideways) (detail d) (epoch 0))",
        ] {
            assert!(DecisionEvent::from_sexp(&Sexp::parse(src.as_bytes()).unwrap()).is_err());
        }
    }
}
