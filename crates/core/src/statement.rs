//! Statements: the delegation form `B =T⇒ A` and its validity window.
//!
//! "The primary form of statement is `B =T⇒ A`, read 'Bob speaks for Alice
//! regarding the statements in set T'. … the *speaks for* captures
//! delegation, and the *regarding* captures restriction" (paper §3).
//! Expiration is "encoded … as part of the restriction of a delegation, so
//! that each proof need be verified only once" (§4.3): [`Validity`] is
//! intersected exactly like tags when proofs compose, and request matching
//! automatically disregards expired conclusions.

use crate::principal::Principal;
use snowflake_sexpr::{ParseError, Sexp};
use snowflake_tags::Tag;
use std::fmt;

/// A point in time, in seconds since the Unix epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Time(pub u64);

impl Time {
    /// The current wall-clock time.
    pub fn now() -> Time {
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Time(secs)
    }

    /// This time plus `secs` seconds.
    pub fn plus(self, secs: u64) -> Time {
        Time(self.0.saturating_add(secs))
    }
}

/// A validity window (both bounds inclusive; `None` = unbounded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Validity {
    /// Statement is not valid before this time.
    pub not_before: Option<Time>,
    /// Statement is not valid after this time.
    pub not_after: Option<Time>,
}

impl Validity {
    /// The always-valid window.
    pub fn always() -> Validity {
        Validity::default()
    }

    /// Valid from now until `t`.
    pub fn until(t: Time) -> Validity {
        Validity {
            not_before: None,
            not_after: Some(t),
        }
    }

    /// Valid during `[from, to]`.
    pub fn between(from: Time, to: Time) -> Validity {
        Validity {
            not_before: Some(from),
            not_after: Some(to),
        }
    }

    /// Does the window contain `t`?
    pub fn contains(&self, t: Time) -> bool {
        self.not_before.map_or(true, |nb| t >= nb) && self.not_after.map_or(true, |na| t <= na)
    }

    /// Intersects two windows; `None` when they do not overlap.
    pub fn intersect(&self, other: &Validity) -> Option<Validity> {
        let not_before = match (self.not_before, other.not_before) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let not_after = match (self.not_after, other.not_after) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if let (Some(nb), Some(na)) = (not_before, not_after) {
            if nb > na {
                return None;
            }
        }
        Some(Validity {
            not_before,
            not_after,
        })
    }

    /// Is `self` entirely contained in `outer`?
    pub fn within(&self, outer: &Validity) -> bool {
        let nb_ok = match (outer.not_before, self.not_before) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(o), Some(s)) => s >= o,
        };
        let na_ok = match (outer.not_after, self.not_after) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(o), Some(s)) => s <= o,
        };
        nb_ok && na_ok
    }

    /// Serializes to `(valid [(not-before t)] [(not-after t)])`.
    pub fn to_sexp(&self) -> Sexp {
        let mut body = Vec::new();
        if let Some(t) = self.not_before {
            body.push(Sexp::tagged("not-before", vec![Sexp::int(t.0)]));
        }
        if let Some(t) = self.not_after {
            body.push(Sexp::tagged("not-after", vec![Sexp::int(t.0)]));
        }
        Sexp::tagged("valid", body)
    }

    /// Parses the form produced by [`Validity::to_sexp`].
    pub fn from_sexp(e: &Sexp) -> Result<Validity, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        if e.tag_name() != Some("valid") {
            return Err(bad("expected (valid …)"));
        }
        let not_before = e
            .find_value("not-before")
            .map(|v| v.as_u64())
            .flatten()
            .map(Time);
        let not_after = e
            .find_value("not-after")
            .map(|v| v.as_u64())
            .flatten()
            .map(Time);
        // Reject windows that could never hold.
        if let (Some(nb), Some(na)) = (not_before, not_after) {
            if nb > na {
                return Err(bad("not-before after not-after"));
            }
        }
        Ok(Validity {
            not_before,
            not_after,
        })
    }
}

/// The statement `subject =tag⇒ issuer`, optionally re-delegable.
///
/// `delegable` is SPKI's *propagate* bit: whether the subject may extend the
/// received authority onward to further subjects.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Delegation {
    /// Who receives authority (the speaker).
    pub subject: Principal,
    /// Whose authority is spoken for.
    pub issuer: Principal,
    /// What statements the delegation covers.
    pub tag: Tag,
    /// When the delegation holds.
    pub validity: Validity,
    /// May the subject re-delegate?
    pub delegable: bool,
}

impl Delegation {
    /// A convenience constructor for an unrestricted, always-valid,
    /// re-delegable statement (used by axioms like hash identity).
    pub fn axiom(subject: Principal, issuer: Principal) -> Delegation {
        Delegation {
            subject,
            issuer,
            tag: Tag::Star,
            validity: Validity::always(),
            delegable: true,
        }
    }

    /// Serializes to `(cert (issuer …) (subject …) (tag …) (valid …) [propagate])`.
    ///
    /// The layout intentionally mirrors an SPKI certificate body; this is
    /// the exact byte string that gets signed.
    pub fn to_sexp(&self) -> Sexp {
        let mut body = vec![
            Sexp::tagged("issuer", vec![self.issuer.to_sexp()]),
            Sexp::tagged("subject", vec![self.subject.to_sexp()]),
            self.tag.to_sexp(),
            self.validity.to_sexp(),
        ];
        if self.delegable {
            body.push(Sexp::list(vec![Sexp::from("propagate")]));
        }
        Sexp::tagged("cert", body)
    }

    /// Parses the form produced by [`Delegation::to_sexp`].
    pub fn from_sexp(e: &Sexp) -> Result<Delegation, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        if e.tag_name() != Some("cert") {
            return Err(bad("expected (cert …)"));
        }
        let issuer = Principal::from_sexp(
            e.find_value("issuer")
                .ok_or_else(|| bad("missing issuer"))?,
        )?;
        let subject = Principal::from_sexp(
            e.find_value("subject")
                .ok_or_else(|| bad("missing subject"))?,
        )?;
        let tag = Tag::parse(e.find("tag").ok_or_else(|| bad("missing tag"))?)?;
        let validity = match e.find("valid") {
            Some(v) => Validity::from_sexp(v)?,
            None => Validity::always(),
        };
        let delegable = e.find("propagate").is_some();
        Ok(Delegation {
            subject,
            issuer,
            tag,
            validity,
            delegable,
        })
    }

    /// Hash of the canonical form — the statement-as-principal identity and
    /// the key revocation lists use to name certificates.
    pub fn hash(&self) -> snowflake_crypto::HashVal {
        snowflake_crypto::HashVal::of_sexp(&self.to_sexp())
    }
}

impl fmt::Debug for Delegation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ={:?}⇒ {}{}",
            self.subject.describe(),
            self.tag,
            self.issuer.describe(),
            if self.delegable { " (propagate)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_contains() {
        let v = Validity::between(Time(10), Time(20));
        assert!(!v.contains(Time(9)));
        assert!(v.contains(Time(10)));
        assert!(v.contains(Time(20)));
        assert!(!v.contains(Time(21)));
        assert!(Validity::always().contains(Time(0)));
        assert!(Validity::always().contains(Time(u64::MAX)));
    }

    #[test]
    fn validity_intersection() {
        let a = Validity::between(Time(10), Time(30));
        let b = Validity::between(Time(20), Time(40));
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, Validity::between(Time(20), Time(30)));
        assert!(a.intersect(&Validity::always()).unwrap() == a);
        // Disjoint windows.
        let c = Validity::between(Time(50), Time(60));
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn validity_within() {
        let outer = Validity::between(Time(10), Time(40));
        assert!(Validity::between(Time(20), Time(30)).within(&outer));
        assert!(outer.within(&outer));
        assert!(!Validity::between(Time(5), Time(30)).within(&outer));
        assert!(!Validity::always().within(&outer));
        assert!(outer.within(&Validity::always()));
    }

    #[test]
    fn validity_sexp_roundtrip() {
        for v in [
            Validity::always(),
            Validity::until(Time(12345)),
            Validity::between(Time(10), Time(99)),
            Validity {
                not_before: Some(Time(7)),
                not_after: None,
            },
        ] {
            assert_eq!(Validity::from_sexp(&v.to_sexp()).unwrap(), v);
        }
    }

    #[test]
    fn validity_rejects_inverted() {
        let e = Sexp::parse(b"(valid (not-before 100) (not-after 50))").unwrap();
        assert!(Validity::from_sexp(&e).is_err());
    }

    #[test]
    fn delegation_sexp_roundtrip() {
        let d = Delegation {
            subject: Principal::message(b"bob"),
            issuer: Principal::message(b"alice"),
            tag: Tag::named("web", vec![Tag::named("method", vec![Tag::atom("GET")])]),
            validity: Validity::until(Time(1_000_000)),
            delegable: true,
        };
        let e = d.to_sexp();
        assert_eq!(Delegation::from_sexp(&e).unwrap(), d);
        // Non-delegable variant differs in encoding.
        let nd = Delegation {
            delegable: false,
            ..d.clone()
        };
        assert_ne!(nd.to_sexp().canonical(), e.canonical());
        assert_ne!(nd.hash(), d.hash());
    }

    #[test]
    fn time_helpers() {
        assert!(Time::now().0 > 1_600_000_000, "clock should be past 2020");
        assert_eq!(Time(5).plus(10), Time(15));
        assert_eq!(Time(u64::MAX).plus(10), Time(u64::MAX));
    }
}
