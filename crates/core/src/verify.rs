//! The verifier's local trusted state.
//!
//! Proofs arrive from untrusted parties; what makes verification meaningful
//! is the verifier's own knowledge: the current time, which live channels it
//! has itself authenticated, which local identities its in-process broker
//! vouches for, and what revocation data it holds.  [`VerifyCtx`] carries
//! exactly that knowledge, keeping the proof-checking engine minimal — the
//! paper's "minimal verification engine" design goal.

use crate::cert::Certificate;
use crate::proof::ProofError;
use crate::revocation::{Crl, Revalidation, RevocationPolicy};
use crate::statement::{Delegation, Time};
use snowflake_crypto::HashVal;
use std::collections::{HashMap, HashSet};

/// Trusted local state used while verifying proofs.
#[derive(Debug, Default, Clone)]
pub struct VerifyCtx {
    /// The verification time (conclusions must be valid at this instant).
    pub now: Time,
    /// Assumption statements this verifier's own machinery vouches for
    /// (channel bindings, utterances witnessed on channels, local-broker
    /// vouchers, MAC-session bindings).
    assumptions: HashSet<HashVal>,
    /// Current CRLs, keyed by validator key hash.
    crls: HashMap<HashVal, Crl>,
    /// Current revalidations, keyed by certificate hash.
    revalidations: HashMap<HashVal, Revalidation>,
}

impl Default for Time {
    fn default() -> Self {
        Time(0)
    }
}

impl VerifyCtx {
    /// An empty context at time `now` (no assumptions, no revocation data).
    pub fn at(now: Time) -> VerifyCtx {
        VerifyCtx {
            now,
            ..Default::default()
        }
    }

    /// An empty context at the current wall-clock time.
    pub fn now() -> VerifyCtx {
        Self::at(Time::now())
    }

    /// Records that this verifier's own machinery vouches for `stmt`.
    ///
    /// Channel layers call this when a handshake binds a channel to a peer
    /// key, when a message is witnessed emanating from a channel, or when a
    /// local broker vouches an identity.
    pub fn assume(&mut self, stmt: &Delegation) {
        self.assumptions.insert(stmt.hash());
    }

    /// Does this verifier vouch for `stmt`?
    pub fn assumes(&self, stmt: &Delegation) -> bool {
        self.assumptions.contains(&stmt.hash())
    }

    /// Installs a CRL (replacing any previous list from the same validator).
    pub fn install_crl(&mut self, crl: Crl) {
        self.crls.insert(crl.signer.hash(), crl);
    }

    /// Installs a revalidation.
    pub fn install_revalidation(&mut self, r: Revalidation) {
        self.revalidations.insert(r.cert_hash.clone(), r);
    }

    /// Enforces a certificate's revocation policy, if any.
    pub fn check_revocation(&self, cert: &Certificate) -> Result<(), ProofError> {
        let Some(policy) = &cert.revocation else {
            return Ok(());
        };
        match policy {
            RevocationPolicy::Crl { validator } => {
                let crl = self.crls.get(validator).ok_or_else(|| {
                    ProofError::Revoked("no current CRL from required validator".into())
                })?;
                crl.check(validator, self.now)
                    .map_err(ProofError::Revoked)?;
                if crl.revokes(&cert.hash()) {
                    return Err(ProofError::Revoked("certificate is on the CRL".into()));
                }
                Ok(())
            }
            RevocationPolicy::Revalidate { validator } => {
                let hash = cert.hash();
                let reval = self.revalidations.get(&hash).ok_or_else(|| {
                    ProofError::Revoked("no current revalidation for certificate".into())
                })?;
                reval
                    .check(validator, &hash, self.now)
                    .map_err(ProofError::Revoked)?;
                Ok(())
            }
        }
    }

    /// Number of assumption statements currently vouched.
    pub fn assumption_count(&self) -> usize {
        self.assumptions.len()
    }
}
