//! The verifier's local trusted state.
//!
//! Proofs arrive from untrusted parties; what makes verification meaningful
//! is the verifier's own knowledge: the current time, which live channels it
//! has itself authenticated, which local identities its in-process broker
//! vouches for, and what revocation data it holds.  [`VerifyCtx`] carries
//! exactly that knowledge, keeping the proof-checking engine minimal — the
//! paper's "minimal verification engine" design goal.
//!
//! Revocation data reaches the context two ways: artifacts can be
//! *installed* directly ([`VerifyCtx::install_crl`],
//! [`VerifyCtx::install_revalidation`]), or a pluggable
//! [`RevocationSource`] can be attached whose cache the context consults on
//! demand.  Sources answer from local state only — a verifier-side
//! freshness agent refreshes them *outside* the verify path, so proof
//! checking never blocks on a network fetch.

use crate::cert::Certificate;
use crate::memo::ChainMemo;
use crate::principal::Principal;
use crate::proof::{Proof, ProofError};
use crate::revocation::{Crl, Revalidation, RevocationPolicy};
use crate::statement::{Delegation, Time, Validity};
use snowflake_crypto::HashVal;
use snowflake_tags::Tag;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A cache-backed supplier of revocation artifacts.
///
/// Implementations must answer **without blocking on I/O**: they return
/// whatever current artifact they already hold (a freshness agent keeps
/// that cache warm from its own refresh loop and push subscriptions).
/// Returned artifacts are still fully re-checked — signature, signer
/// identity, currency — by [`VerifyCtx::check_revocation`], so a buggy or
/// hostile source can cause spurious denials but never spurious approvals.
pub trait RevocationSource: Send + Sync {
    /// The current CRL from the validator with this key hash, if one is
    /// cached and valid at `now`.  Returned behind an `Arc` so the hot
    /// path shares the cached list (and its built-once membership index)
    /// instead of cloning it per verification.
    fn crl(&self, validator: &HashVal, now: Time) -> Option<Arc<Crl>>;

    /// A current revalidation of the certificate with this hash, if one is
    /// cached and valid at `now`.
    fn revalidation(&self, cert_hash: &HashVal, now: Time) -> Option<Revalidation>;
}

/// Trusted local state used while verifying proofs.
#[derive(Default, Clone)]
pub struct VerifyCtx {
    /// The verification time (conclusions must be valid at this instant).
    pub now: Time,
    /// Assumption statements this verifier's own machinery vouches for
    /// (channel bindings, utterances witnessed on channels, local-broker
    /// vouchers, MAC-session bindings).
    assumptions: HashSet<HashVal>,
    /// Current CRLs, keyed by validator key hash.
    crls: HashMap<HashVal, Crl>,
    /// Current revalidations, keyed by certificate hash.
    revalidations: HashMap<HashVal, Revalidation>,
    /// Pluggable supplier consulted when no (current) artifact is installed.
    source: Option<Arc<dyn RevocationSource>>,
    /// Verified-chain memo consulted by [`VerifyCtx::verify_cached`];
    /// absent, every verification runs cold.
    memo: Option<Arc<ChainMemo>>,
}

/// A resolved CRL: either borrowed from the context's installed map or
/// shared out of a [`RevocationSource`] cache.  One resolution routine
/// feeds *both* [`VerifyCtx::check_revocation`] and the memo fingerprint,
/// so the artifact the fingerprint names is exactly the artifact the cold
/// path would consult — any divergence there would let a memo hit answer
/// for a different revocation state than a cold verify.
enum CrlRef<'a> {
    Installed(&'a Crl),
    Fetched(Arc<Crl>),
}

impl CrlRef<'_> {
    fn get(&self) -> &Crl {
        match self {
            CrlRef::Installed(c) => c,
            CrlRef::Fetched(c) => c,
        }
    }
}

/// A resolved revalidation (see [`CrlRef`]).
enum RevalRef<'a> {
    Installed(&'a Revalidation),
    Fetched(Revalidation),
}

impl RevalRef<'_> {
    fn get(&self) -> &Revalidation {
        match self {
            RevalRef::Installed(r) => r,
            RevalRef::Fetched(r) => r,
        }
    }
}

impl fmt::Debug for VerifyCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VerifyCtx")
            .field("now", &self.now)
            .field("assumptions", &self.assumptions.len())
            .field("crls", &self.crls.len())
            .field("revalidations", &self.revalidations.len())
            .field("source", &self.source.is_some())
            .field("memo", &self.memo.is_some())
            .finish()
    }
}

impl Default for Time {
    fn default() -> Self {
        Time(0)
    }
}

impl VerifyCtx {
    /// An empty context at time `now` (no assumptions, no revocation data).
    pub fn at(now: Time) -> VerifyCtx {
        VerifyCtx {
            now,
            ..Default::default()
        }
    }

    /// An empty context at the current wall-clock time.
    pub fn now() -> VerifyCtx {
        Self::at(Time::now())
    }

    /// Records that this verifier's own machinery vouches for `stmt`.
    ///
    /// Channel layers call this when a handshake binds a channel to a peer
    /// key, when a message is witnessed emanating from a channel, or when a
    /// local broker vouches an identity.
    pub fn assume(&mut self, stmt: &Delegation) {
        self.assumptions.insert(stmt.hash());
    }

    /// Does this verifier vouch for `stmt`?
    pub fn assumes(&self, stmt: &Delegation) -> bool {
        self.assumptions.contains(&stmt.hash())
    }

    /// Installs a CRL (replacing any previous list from the same validator).
    pub fn install_crl(&mut self, crl: Crl) {
        self.crls.insert(crl.signer.hash(), crl);
    }

    /// Installs a revalidation.
    pub fn install_revalidation(&mut self, r: Revalidation) {
        self.revalidations.insert(r.cert_hash.clone(), r);
    }

    /// Attaches a pluggable revocation source (e.g. a freshness agent)
    /// consulted when no current artifact is installed directly.
    pub fn set_revocation_source(&mut self, source: Arc<dyn RevocationSource>) {
        self.source = Some(source);
    }

    /// Builder form of [`VerifyCtx::set_revocation_source`].
    pub fn with_revocation_source(mut self, source: Arc<dyn RevocationSource>) -> VerifyCtx {
        self.set_revocation_source(source);
        self
    }

    /// Resolves which CRL from `validator` governs verification right now.
    ///
    /// Between a directly installed, still-current list and one the
    /// pluggable source holds, the *newer* (higher-serial) list wins: a
    /// pushed revocation must not be shadowed by a hand-installed list
    /// that happens to still be inside its window.  A stale installed
    /// list only surfaces when nothing current exists (its currency check
    /// will then fail downstream with an error naming currency, not
    /// absence).  Shared by [`VerifyCtx::check_revocation`] and the memo
    /// fingerprint — see [`CrlRef`].
    fn resolve_crl(&self, validator: &HashVal) -> Option<CrlRef<'_>> {
        let installed = self.crls.get(validator);
        let fetched = self
            .source
            .as_ref()
            .and_then(|s| s.crl(validator, self.now));
        let installed_current = installed.filter(|c| c.validity.contains(self.now));
        let fetched_current = fetched
            .clone()
            .filter(|c| c.validity.contains(self.now));
        match (installed_current, fetched_current) {
            (Some(i), Some(f)) => Some(if f.serial > i.serial {
                CrlRef::Fetched(f)
            } else {
                CrlRef::Installed(i)
            }),
            (Some(i), None) => Some(CrlRef::Installed(i)),
            (None, Some(f)) => Some(CrlRef::Fetched(f)),
            (None, None) => installed.map(CrlRef::Installed),
        }
    }

    /// Resolves which revalidation of the certificate hashed `hash`
    /// governs verification right now (installed-and-current first, then
    /// the source, then a stale installed one for its currency error).
    fn resolve_revalidation(&self, hash: &HashVal) -> Option<RevalRef<'_>> {
        let installed = self.revalidations.get(hash);
        if let Some(r) = installed.filter(|r| r.validity.contains(self.now)) {
            return Some(RevalRef::Installed(r));
        }
        if let Some(f) = self
            .source
            .as_ref()
            .and_then(|s| s.revalidation(hash, self.now))
        {
            return Some(RevalRef::Fetched(f));
        }
        installed.map(RevalRef::Installed)
    }

    /// Enforces a certificate's revocation policy, if any.
    pub fn check_revocation(&self, cert: &Certificate) -> Result<(), ProofError> {
        let Some(policy) = &cert.revocation else {
            return Ok(());
        };
        match policy {
            RevocationPolicy::Crl { validator } => {
                let Some(resolved) = self.resolve_crl(validator) else {
                    return Err(ProofError::Revoked(
                        "no current CRL from required validator".into(),
                    ));
                };
                let crl = resolved.get();
                crl.check(validator, self.now)
                    .map_err(ProofError::Revoked)?;
                if crl.revokes(&cert.hash()) {
                    return Err(ProofError::Revoked("certificate is on the CRL".into()));
                }
                Ok(())
            }
            RevocationPolicy::Revalidate { validator } => {
                let hash = cert.hash();
                let Some(resolved) = self.resolve_revalidation(&hash) else {
                    return Err(ProofError::Revoked(
                        "no current revalidation for certificate".into(),
                    ));
                };
                resolved
                    .get()
                    .check(validator, &hash, self.now)
                    .map_err(ProofError::Revoked)?;
                Ok(())
            }
        }
    }

    /// Attaches a verified-chain memo (shared across contexts/threads).
    pub fn set_chain_memo(&mut self, memo: Arc<ChainMemo>) {
        self.memo = Some(memo);
    }

    /// Builder form of [`VerifyCtx::set_chain_memo`].
    pub fn with_chain_memo(mut self, memo: Arc<ChainMemo>) -> VerifyCtx {
        self.set_chain_memo(memo);
        self
    }

    /// The attached verified-chain memo, if any.
    pub fn chain_memo(&self) -> Option<&Arc<ChainMemo>> {
        self.memo.as_ref()
    }

    /// Verifies `proof`, answering from the attached [`ChainMemo`] when a
    /// prior successful verification of the same chain under the same
    /// revocation/assumption state is still valid.  Semantically identical
    /// to [`Proof::verify`] — only successes are memoized, and the memo
    /// key pins everything the cold path would consult (see
    /// [`VerifyCtx::memo_fingerprint`]).
    pub fn verify_cached(&self, proof: &Proof) -> Result<(), ProofError> {
        let Some(memo) = &self.memo else {
            return proof.verify(self);
        };
        let (fingerprint, valid_until) = self.memo_fingerprint(proof);
        let proof_hash = proof.hash();
        if memo.lookup(&proof_hash, &fingerprint, self.now) {
            return Ok(());
        }
        let epoch = memo.push_epoch();
        proof.verify(self)?;
        memo.record(
            &proof_hash,
            &fingerprint,
            self.now,
            valid_until,
            proof.cert_hashes(),
            epoch,
        );
        Ok(())
    }

    /// The memoized entry point server surfaces use: verifies `proof`
    /// (via the memo when one is attached) and then always re-checks the
    /// conclusion against the request — subject, issuer, tag, and expiry
    /// are never answered from the cache.
    pub fn authorize(
        &self,
        proof: &Proof,
        speaker: &Principal,
        issuer: &Principal,
        request: &Tag,
    ) -> Result<(), ProofError> {
        self.verify_cached(proof)?;
        proof.check_conclusion(speaker, issuer, request, self.now)
    }

    /// Fingerprints everything [`Proof::verify`] would consult from this
    /// context for `proof`, plus a conservative `valid_until`.
    ///
    /// The fingerprint folds the revocation epoch, each assumption leaf's
    /// vouched/unvouched bit, and for each signed-certificate leaf the
    /// **content hash** (the full signed wire bytes — body, signer, and
    /// signature) of the revocation artifact
    /// [`VerifyCtx::check_revocation`] would resolve — through the *same*
    /// [`VerifyCtx::resolve_crl`] / [`VerifyCtx::resolve_revalidation`]
    /// helpers, so fingerprint and cold path can never disagree about
    /// which artifact governs.  Hashing the artifact's *content*, not its
    /// (signer, serial, window) identity, is load-bearing: a validator
    /// that reissues a different revoked-set under a reused serial and
    /// window (or a source that swaps a same-serial list) must change the
    /// fingerprint, or a memo hit would keep answering for the old list
    /// while the cold path enforces the new one.  `valid_until` is the
    /// minimum validity end of every consulted artifact: past it, a
    /// then-current artifact may have lapsed (and the cold path would
    /// fail or fall back to a stale list), so a memo hit must not outlive
    /// it.  Certificate-conclusion expiry needs no folding —
    /// `Proof::verify` is time-dependent only through artifact currency,
    /// and conclusion expiry is re-checked on every request by
    /// [`Proof::check_conclusion`].
    pub fn memo_fingerprint(&self, proof: &Proof) -> (HashVal, Option<Time>) {
        fn min_end(valid_until: &mut Option<Time>, v: &Validity) {
            if let Some(end) = v.not_after {
                *valid_until = Some(match *valid_until {
                    Some(cur) if cur <= end => cur,
                    _ => end,
                });
            }
        }
        let mut buf = Vec::new();
        let mut valid_until: Option<Time> = None;
        buf.extend_from_slice(&self.revocation_epoch().to_be_bytes());
        for lemma in proof.lemmas() {
            match lemma {
                Proof::Assumption { stmt, .. } => {
                    buf.push(b'A');
                    buf.extend_from_slice(&stmt.hash().bytes);
                    buf.push(self.assumes(stmt) as u8);
                }
                Proof::SignedCert(cert) => match &cert.revocation {
                    None => {
                        buf.push(b'-');
                        buf.extend_from_slice(&cert.hash().bytes);
                    }
                    Some(RevocationPolicy::Crl { validator }) => {
                        buf.push(b'L');
                        buf.extend_from_slice(&validator.bytes);
                        buf.extend_from_slice(&cert.hash().bytes);
                        match self.resolve_crl(validator) {
                            Some(resolved) => {
                                let crl = resolved.get();
                                buf.extend_from_slice(&crl.content_hash().bytes);
                                min_end(&mut valid_until, &crl.validity);
                            }
                            None => buf.push(b'?'),
                        }
                    }
                    Some(RevocationPolicy::Revalidate { validator }) => {
                        buf.push(b'R');
                        buf.extend_from_slice(&validator.bytes);
                        let hash = cert.hash();
                        buf.extend_from_slice(&hash.bytes);
                        match self.resolve_revalidation(&hash) {
                            Some(resolved) => {
                                let reval = resolved.get();
                                buf.extend_from_slice(&reval.content_hash().bytes);
                                min_end(&mut valid_until, &reval.validity);
                            }
                            None => buf.push(b'?'),
                        }
                    }
                },
                _ => {}
            }
        }
        (HashVal::of(&buf), valid_until)
    }

    /// Number of assumption statements currently vouched.
    pub fn assumption_count(&self) -> usize {
        self.assumptions.len()
    }

    /// The revocation epoch this verifier holds: the highest serial among
    /// its directly installed CRLs (0 when none are installed).  Audit
    /// records carry this so a historical decision can be matched to the
    /// revocation state it was made against.  CRLs held only by a
    /// pluggable [`RevocationSource`] are not enumerable here; deciders
    /// that rely on a source exclusively record epoch 0.
    pub fn revocation_epoch(&self) -> u64 {
        self.crls.values().map(|c| c.serial).max().unwrap_or(0)
    }
}
