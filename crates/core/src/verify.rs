//! The verifier's local trusted state.
//!
//! Proofs arrive from untrusted parties; what makes verification meaningful
//! is the verifier's own knowledge: the current time, which live channels it
//! has itself authenticated, which local identities its in-process broker
//! vouches for, and what revocation data it holds.  [`VerifyCtx`] carries
//! exactly that knowledge, keeping the proof-checking engine minimal — the
//! paper's "minimal verification engine" design goal.
//!
//! Revocation data reaches the context two ways: artifacts can be
//! *installed* directly ([`VerifyCtx::install_crl`],
//! [`VerifyCtx::install_revalidation`]), or a pluggable
//! [`RevocationSource`] can be attached whose cache the context consults on
//! demand.  Sources answer from local state only — a verifier-side
//! freshness agent refreshes them *outside* the verify path, so proof
//! checking never blocks on a network fetch.

use crate::cert::Certificate;
use crate::proof::ProofError;
use crate::revocation::{Crl, Revalidation, RevocationPolicy};
use crate::statement::{Delegation, Time};
use snowflake_crypto::HashVal;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A cache-backed supplier of revocation artifacts.
///
/// Implementations must answer **without blocking on I/O**: they return
/// whatever current artifact they already hold (a freshness agent keeps
/// that cache warm from its own refresh loop and push subscriptions).
/// Returned artifacts are still fully re-checked — signature, signer
/// identity, currency — by [`VerifyCtx::check_revocation`], so a buggy or
/// hostile source can cause spurious denials but never spurious approvals.
pub trait RevocationSource: Send + Sync {
    /// The current CRL from the validator with this key hash, if one is
    /// cached and valid at `now`.  Returned behind an `Arc` so the hot
    /// path shares the cached list (and its built-once membership index)
    /// instead of cloning it per verification.
    fn crl(&self, validator: &HashVal, now: Time) -> Option<Arc<Crl>>;

    /// A current revalidation of the certificate with this hash, if one is
    /// cached and valid at `now`.
    fn revalidation(&self, cert_hash: &HashVal, now: Time) -> Option<Revalidation>;
}

/// Trusted local state used while verifying proofs.
#[derive(Default, Clone)]
pub struct VerifyCtx {
    /// The verification time (conclusions must be valid at this instant).
    pub now: Time,
    /// Assumption statements this verifier's own machinery vouches for
    /// (channel bindings, utterances witnessed on channels, local-broker
    /// vouchers, MAC-session bindings).
    assumptions: HashSet<HashVal>,
    /// Current CRLs, keyed by validator key hash.
    crls: HashMap<HashVal, Crl>,
    /// Current revalidations, keyed by certificate hash.
    revalidations: HashMap<HashVal, Revalidation>,
    /// Pluggable supplier consulted when no (current) artifact is installed.
    source: Option<Arc<dyn RevocationSource>>,
}

impl fmt::Debug for VerifyCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VerifyCtx")
            .field("now", &self.now)
            .field("assumptions", &self.assumptions.len())
            .field("crls", &self.crls.len())
            .field("revalidations", &self.revalidations.len())
            .field("source", &self.source.is_some())
            .finish()
    }
}

impl Default for Time {
    fn default() -> Self {
        Time(0)
    }
}

impl VerifyCtx {
    /// An empty context at time `now` (no assumptions, no revocation data).
    pub fn at(now: Time) -> VerifyCtx {
        VerifyCtx {
            now,
            ..Default::default()
        }
    }

    /// An empty context at the current wall-clock time.
    pub fn now() -> VerifyCtx {
        Self::at(Time::now())
    }

    /// Records that this verifier's own machinery vouches for `stmt`.
    ///
    /// Channel layers call this when a handshake binds a channel to a peer
    /// key, when a message is witnessed emanating from a channel, or when a
    /// local broker vouches an identity.
    pub fn assume(&mut self, stmt: &Delegation) {
        self.assumptions.insert(stmt.hash());
    }

    /// Does this verifier vouch for `stmt`?
    pub fn assumes(&self, stmt: &Delegation) -> bool {
        self.assumptions.contains(&stmt.hash())
    }

    /// Installs a CRL (replacing any previous list from the same validator).
    pub fn install_crl(&mut self, crl: Crl) {
        self.crls.insert(crl.signer.hash(), crl);
    }

    /// Installs a revalidation.
    pub fn install_revalidation(&mut self, r: Revalidation) {
        self.revalidations.insert(r.cert_hash.clone(), r);
    }

    /// Attaches a pluggable revocation source (e.g. a freshness agent)
    /// consulted when no current artifact is installed directly.
    pub fn set_revocation_source(&mut self, source: Arc<dyn RevocationSource>) {
        self.source = Some(source);
    }

    /// Builder form of [`VerifyCtx::set_revocation_source`].
    pub fn with_revocation_source(mut self, source: Arc<dyn RevocationSource>) -> VerifyCtx {
        self.set_revocation_source(source);
        self
    }

    /// Enforces a certificate's revocation policy, if any.
    pub fn check_revocation(&self, cert: &Certificate) -> Result<(), ProofError> {
        let Some(policy) = &cert.revocation else {
            return Ok(());
        };
        match policy {
            RevocationPolicy::Crl { validator } => {
                // Between a directly installed, still-current list and one
                // the pluggable source holds, the *newer* (higher-serial)
                // list wins: a pushed revocation must not be shadowed by a
                // hand-installed list that happens to still be inside its
                // window.  A stale installed list only surfaces when
                // nothing current exists, so the error names currency,
                // not absence.
                let installed = self.crls.get(validator);
                let fetched = self
                    .source
                    .as_ref()
                    .and_then(|s| s.crl(validator, self.now));
                let installed_current = installed.filter(|c| c.validity.contains(self.now));
                let fetched_current = fetched
                    .as_deref()
                    .filter(|c| c.validity.contains(self.now));
                let crl = match (installed_current, fetched_current) {
                    (Some(i), Some(f)) => {
                        if f.serial > i.serial {
                            f
                        } else {
                            i
                        }
                    }
                    (Some(i), None) => i,
                    (None, Some(f)) => f,
                    (None, None) => match installed {
                        Some(stale) => stale,
                        None => {
                            return Err(ProofError::Revoked(
                                "no current CRL from required validator".into(),
                            ))
                        }
                    },
                };
                crl.check(validator, self.now)
                    .map_err(ProofError::Revoked)?;
                if crl.revokes(&cert.hash()) {
                    return Err(ProofError::Revoked("certificate is on the CRL".into()));
                }
                Ok(())
            }
            RevocationPolicy::Revalidate { validator } => {
                let hash = cert.hash();
                let fetched;
                let installed = self.revalidations.get(&hash);
                let reval = match installed.filter(|r| r.validity.contains(self.now)) {
                    Some(r) => r,
                    None => {
                        fetched = self
                            .source
                            .as_ref()
                            .and_then(|s| s.revalidation(&hash, self.now));
                        match fetched.as_ref().or(installed) {
                            Some(r) => r,
                            None => {
                                return Err(ProofError::Revoked(
                                    "no current revalidation for certificate".into(),
                                ))
                            }
                        }
                    }
                };
                reval
                    .check(validator, &hash, self.now)
                    .map_err(ProofError::Revoked)?;
                Ok(())
            }
        }
    }

    /// Number of assumption statements currently vouched.
    pub fn assumption_count(&self) -> usize {
        self.assumptions.len()
    }

    /// The revocation epoch this verifier holds: the highest serial among
    /// its directly installed CRLs (0 when none are installed).  Audit
    /// records carry this so a historical decision can be matched to the
    /// revocation state it was made against.  CRLs held only by a
    /// pluggable [`RevocationSource`] are not enumerable here; deciders
    /// that rely on a source exclusively record epoch 0.
    pub fn revocation_epoch(&self) -> u64 {
        self.crls.values().map(|c| c.serial).max().unwrap_or(0)
    }
}
