//! The Snowflake logic of authority (paper §3–§4).
//!
//! This crate implements the paper's primary contribution: a compact logic
//! of restricted delegation whose statements, principals, and structured
//! proofs give distributed systems **end-to-end authorization** — every
//! resource server can see, verify, and audit the entire chain of authority
//! that justifies a request, no matter how many administrative, network,
//! abstraction, or protocol boundaries the request crossed.
//!
//! # The pieces
//!
//! * [`Principal`] — anything that can make a statement: keys, hashes of
//!   keys or documents, named principals (`K·N`), live channels, MAC
//!   sessions, local-broker identities, and the compound *conjunction*
//!   (`A ∧ B`) and *quoting* (`B | A`) principals of Lampson et al.
//! * [`Delegation`] — the primary statement form `B =T⇒ A`, "B speaks for A
//!   regarding the statements in set T", where `T` is an authorization tag
//!   ([`snowflake_tags::Tag`]) and the validity window is part of the
//!   restriction.
//! * [`Certificate`] — a delegation signed by a key that controls the
//!   issuer; the logical assumption "a digital signature check validates
//!   `K says x`".
//! * [`Proof`] — a structured, self-describing, self-verifying proof tree.
//!   "Every message should say what it means": each node names the inference
//!   rule it applies, maps one-to-one to a verifier, and can be extracted as
//!   a reusable lemma.
//! * [`VerifyCtx`] — the verifier's local trusted state: current time,
//!   channel bindings it has itself witnessed, and revocation data.
//!
//! # Example: delegation across an administrative boundary
//!
//! ```
//! use snowflake_core::*;
//! use snowflake_crypto::{DetRng, Group, KeyPair};
//! use snowflake_tags::Tag;
//!
//! let mut rng = DetRng::new(b"doc-example");
//! let mut rb = move |b: &mut [u8]| rng.fill(b);
//! let alice = KeyPair::generate(Group::test512(), &mut rb);
//! let bob = KeyPair::generate(Group::test512(), &mut rb);
//!
//! // Alice delegates read access on /inbox to Bob, restricted and expiring.
//! let tag = Tag::parse(&snowflake_sexpr::Sexp::parse(
//!     b"(tag (web (method GET) (resourcePath (* prefix /inbox))))").unwrap()).unwrap();
//! let delegation = Delegation {
//!     subject: Principal::key(&bob.public),
//!     issuer: Principal::key(&alice.public),
//!     tag,
//!     validity: Validity::until(Time(2_000_000)),
//!     delegable: false,
//! };
//! let cert = Certificate::issue(&alice, delegation, &mut rb);
//! let proof = Proof::signed_cert(cert);
//!
//! let ctx = VerifyCtx::at(Time(1_000_000));
//! assert!(proof.verify(&ctx).is_ok());
//! ```

#![deny(missing_docs)]

pub mod audit;
mod cert;
pub mod durable;
mod memo;
mod principal;
mod proof;
mod revocation;
pub mod sequence;
pub mod sync;
mod statement;
mod verify;

pub use audit::{AuditEmitter, Decision, DecisionEvent, EmitterSlot, NullEmitter};
pub use cert::Certificate;
pub use durable::{CrashPoint, Durable, RecoveryReport};
pub use memo::{ChainMemo, MemoStats};
pub use principal::{ChannelId, Principal};
pub use proof::{Proof, ProofError};
pub use revocation::{Crl, Revalidation, RevocationPolicy};
pub use sequence::Sequence;
pub use statement::{Delegation, Time, Validity};
pub use verify::{RevocationSource, VerifyCtx};

pub use snowflake_crypto::{HashAlg, HashVal};
pub use snowflake_tags::Tag;
