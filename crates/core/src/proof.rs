//! Structured, self-verifying proofs of authority (paper §4.3).
//!
//! "A proof of authority, like a proof of a mathematical theorem, is simply
//! a collection of statements that together convince the reader of the
//! veracity of the conclusion statement."  Snowflake transmits proofs in
//! *structured* form rather than as SPKI's linear stack-machine sequences,
//! for the paper's three reasons:
//!
//! 1. structured proofs "clearly exhibit their own meaning";
//! 2. each proof component maps one-to-one to the implementation object
//!    that verifies it (each [`Proof`] variant is one inference rule with
//!    one verifier arm);
//! 3. lemmas (subproofs) are trivially extractable for reuse
//!    ([`Proof::lemmas`]) — the Prover "digests" received proofs into
//!    reusable components.
//!
//! Proof objects "may be received from untrusted parties" but their methods
//! — this module — are "loaded from a local code base, so that the results
//! of verification are trustworthy."

use crate::cert::Certificate;
use crate::principal::Principal;
use crate::statement::{Delegation, Time, Validity};
use crate::verify::VerifyCtx;
use snowflake_crypto::{verify_batch, BatchEntry, BatchOutcome, HashAlg, HashVal, PublicKey};
use snowflake_sexpr::{ParseError, Sexp};
use snowflake_tags::Tag;
use std::fmt;

/// Why a proof failed to verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// A signature or certificate-level check failed.
    BadCertificate(String),
    /// An assumption leaf is not trusted by the verifying context.
    UntrustedAssumption(String),
    /// An inference step's side conditions do not hold.
    BadInference(String),
    /// The proof is fine but does not authorize the request at hand.
    NotAuthorizing(String),
    /// A revocation requirement was not satisfied.
    Revoked(String),
    /// Structural decode failure.
    Malformed(String),
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::BadCertificate(m) => write!(f, "bad certificate: {m}"),
            ProofError::UntrustedAssumption(m) => write!(f, "untrusted assumption: {m}"),
            ProofError::BadInference(m) => write!(f, "bad inference: {m}"),
            ProofError::NotAuthorizing(m) => write!(f, "not authorizing: {m}"),
            ProofError::Revoked(m) => write!(f, "revoked: {m}"),
            ProofError::Malformed(m) => write!(f, "malformed proof: {m}"),
        }
    }
}

impl std::error::Error for ProofError {}

/// A structured proof that `conclusion().subject` speaks for
/// `conclusion().issuer` regarding `conclusion().tag`.
#[derive(Clone, PartialEq, Eq)]
pub enum Proof {
    /// Leaf: a signed certificate validates `issuer says (subject ⇒ issuer)`.
    SignedCert(Box<Certificate>),
    /// Leaf: an assumption vouched for by the verifier's own machinery —
    /// "statements that a principal believes based on some verification
    /// outside the logic", e.g. a channel binding (`M ⇒ K_CH`) or a local
    /// broker's vouching.  `authority` names the mechanism for audit trails.
    Assumption {
        /// The assumed statement.
        stmt: Delegation,
        /// Which mechanism vouches (e.g. `ssh-channel`, `local-broker`,
        /// `mac-session`).
        authority: String,
    },
    /// Axiom: `A =(*)⇒ A`.
    Reflex(Principal),
    /// From `A =T⇒ B` and `B =U⇒ C` (delegable), conclude `A =T∩U⇒ C`.
    Transitivity(Box<Proof>, Box<Proof>),
    /// From `A =T⇒ B`, conclude `A =T'⇒ B` for any `T' ⊆ T` (and narrower
    /// validity, and delegable→non-delegable).
    Weaken {
        /// The stronger proof.
        inner: Box<Proof>,
        /// The weakened conclusion; must be implied by `inner`'s.
        conclusion: Delegation,
    },
    /// Quoting is monotone in the quotee: from `B =T⇒ A` conclude
    /// `Q|B =T⇒ Q|A`.
    QuoteQuotee {
        /// Proof of `B ⇒ A`.
        inner: Box<Proof>,
        /// The quoter `Q`.
        quoter: Principal,
    },
    /// Quoting is monotone in the quoter: from `B =T⇒ A` conclude
    /// `B|Q =T⇒ A|Q`.
    QuoteQuoter {
        /// Proof of `B ⇒ A`.
        inner: Box<Proof>,
        /// The quotee `Q`.
        quotee: Principal,
    },
    /// From `A =T₁⇒ B₁ … A =Tₙ⇒ Bₙ`, conclude `A =∩Tᵢ⇒ B₁∧…∧Bₙ`.
    ConjIntro(Vec<Proof>),
    /// Axiom: `B₁∧…∧Bₙ =(*)⇒ Bᵢ` (whatever the conjunction says, each
    /// conjunct said).
    ConjProj {
        /// The conjunction principal.
        conjunction: Principal,
        /// Which conjunct is projected out.
        index: usize,
    },
    /// From proofs `A ⇒ sᵢ` for `k` distinct subjects of a threshold
    /// principal, conclude `A ⇒ threshold`.
    ThresholdIntro {
        /// The threshold principal being satisfied.
        threshold: Principal,
        /// `(index, proof)` pairs; at least `k` with distinct indices.
        proofs: Vec<(usize, Proof)>,
    },
    /// Name monotonicity (Figure 1): from `P =T⇒ Q` conclude `P·N =T⇒ Q·N`.
    NameMono {
        /// Proof of `P ⇒ Q`.
        inner: Box<Proof>,
        /// The name `N` appended on both sides.
        name: String,
    },
    /// Hash identity (Figure 1): `H(K) ⇒ K` (or `K ⇒ H(K)`), checkable by
    /// recomputing the hash.
    HashIdent {
        /// The key.
        key: Box<PublicKey>,
        /// Hash algorithm of the hash-principal side.
        alg: HashAlg,
        /// Direction: `true` proves `H(K) ⇒ K`, `false` proves `K ⇒ H(K)`.
        hash_to_key: bool,
    },
}

impl Proof {
    /// Wraps a certificate as a leaf proof.
    pub fn signed_cert(cert: Certificate) -> Proof {
        Proof::SignedCert(Box::new(cert))
    }

    /// Composes two proofs by transitivity.
    pub fn then(self, next: Proof) -> Proof {
        Proof::Transitivity(Box::new(self), Box::new(next))
    }

    /// The statement this proof concludes.
    ///
    /// Purely structural — no verification happens here; an unverified
    /// conclusion is a *claim*.
    pub fn conclusion(&self) -> Delegation {
        match self {
            Proof::SignedCert(cert) => cert.delegation.clone(),
            Proof::Assumption { stmt, .. } => stmt.clone(),
            Proof::Reflex(p) => Delegation::axiom(p.clone(), p.clone()),
            Proof::Transitivity(left, right) => {
                let l = left.conclusion();
                let r = right.conclusion();
                let tag = l.tag.intersect(&r.tag).unwrap_or(Tag::Set(Vec::new()));
                let validity = l
                    .validity
                    .intersect(&r.validity)
                    .unwrap_or(Validity::between(Time(1), Time(0)));
                Delegation {
                    subject: l.subject,
                    issuer: r.issuer,
                    tag,
                    validity,
                    delegable: l.delegable && r.delegable,
                }
            }
            Proof::Weaken { conclusion, .. } => conclusion.clone(),
            Proof::QuoteQuotee { inner, quoter } => {
                let c = inner.conclusion();
                Delegation {
                    subject: Principal::quoting(quoter.clone(), c.subject),
                    issuer: Principal::quoting(quoter.clone(), c.issuer),
                    ..c
                }
            }
            Proof::QuoteQuoter { inner, quotee } => {
                let c = inner.conclusion();
                Delegation {
                    subject: Principal::quoting(c.subject, quotee.clone()),
                    issuer: Principal::quoting(c.issuer, quotee.clone()),
                    ..c
                }
            }
            Proof::ConjIntro(proofs) => {
                let concls: Vec<Delegation> = proofs.iter().map(Proof::conclusion).collect();
                let subject = concls
                    .first()
                    .map(|c| c.subject.clone())
                    .unwrap_or(Principal::Conjunction(Vec::new()));
                let mut tag = Tag::Star;
                let mut validity = Validity::always();
                let mut delegable = true;
                for c in &concls {
                    tag = tag.intersect(&c.tag).unwrap_or(Tag::Set(Vec::new()));
                    validity = validity
                        .intersect(&c.validity)
                        .unwrap_or(Validity::between(Time(1), Time(0)));
                    delegable &= c.delegable;
                }
                let issuer = Principal::conjunction(concls.into_iter().map(|c| c.issuer).collect());
                Delegation {
                    subject,
                    issuer,
                    tag,
                    validity,
                    delegable,
                }
            }
            Proof::ConjProj { conjunction, index } => {
                let member = match conjunction {
                    Principal::Conjunction(items) => {
                        items.get(*index).cloned().unwrap_or(conjunction.clone())
                    }
                    _ => conjunction.clone(),
                };
                Delegation::axiom(conjunction.clone(), member)
            }
            Proof::ThresholdIntro { threshold, proofs } => {
                let subject = proofs
                    .first()
                    .map(|(_, p)| p.conclusion().subject)
                    .unwrap_or(threshold.clone());
                let mut tag = Tag::Star;
                let mut validity = Validity::always();
                let mut delegable = true;
                for (_, p) in proofs {
                    let c = p.conclusion();
                    tag = tag.intersect(&c.tag).unwrap_or(Tag::Set(Vec::new()));
                    validity = validity
                        .intersect(&c.validity)
                        .unwrap_or(Validity::between(Time(1), Time(0)));
                    delegable &= c.delegable;
                }
                Delegation {
                    subject,
                    issuer: threshold.clone(),
                    tag,
                    validity,
                    delegable,
                }
            }
            Proof::NameMono { inner, name } => {
                let c = inner.conclusion();
                Delegation {
                    subject: Principal::name(c.subject, name.clone()),
                    issuer: Principal::name(c.issuer, name.clone()),
                    ..c
                }
            }
            Proof::HashIdent {
                key,
                alg,
                hash_to_key,
            } => {
                let key_p = Principal::key(key);
                let hash_p = Principal::KeyHash(crate::cert::key_hash_with(key, *alg));
                if *hash_to_key {
                    Delegation::axiom(hash_p, key_p)
                } else {
                    Delegation::axiom(key_p, hash_p)
                }
            }
        }
    }

    /// Verifies the proof: every leaf is justified and every inference step
    /// is correctly applied.
    ///
    /// Runs in two passes: a structural walk (inference side conditions,
    /// assumption vouching, revocation, signer/issuer control — all cheap)
    /// that collects the signed-certificate leaves, then one
    /// `schnorr::verify_batch` over every distinct certificate signature.
    /// A multi-certificate chain pays roughly one multi-exponentiation
    /// instead of one full verification per certificate.
    pub fn verify(&self, ctx: &VerifyCtx) -> Result<(), ProofError> {
        let mut certs: Vec<&Certificate> = Vec::new();
        self.verify_structure(ctx, &mut certs)?;
        Self::verify_cert_signatures(&certs)
    }

    /// The structural pass of [`Proof::verify`]: everything except
    /// certificate signature verification.  Distinct certificate leaves
    /// are appended to `certs` for the caller to signature-check (batched).
    fn verify_structure<'a>(
        &'a self,
        ctx: &VerifyCtx,
        certs: &mut Vec<&'a Certificate>,
    ) -> Result<(), ProofError> {
        match self {
            Proof::SignedCert(cert) => {
                cert.check_structure().map_err(ProofError::BadCertificate)?;
                ctx.check_revocation(cert)?;
                if !certs.iter().any(|c| *c == cert.as_ref()) {
                    certs.push(cert);
                }
                Ok(())
            }
            Proof::Assumption { stmt, authority } => {
                if ctx.assumes(stmt) {
                    Ok(())
                } else {
                    Err(ProofError::UntrustedAssumption(format!(
                        "{authority}: {stmt:?} not vouched by this verifier"
                    )))
                }
            }
            Proof::Reflex(_) => Ok(()),
            Proof::Transitivity(left, right) => {
                left.verify_structure(ctx, certs)?;
                right.verify_structure(ctx, certs)?;
                let l = left.conclusion();
                let r = right.conclusion();
                if l.issuer != r.subject {
                    return Err(ProofError::BadInference(format!(
                        "transitivity gap: {} vs {}",
                        l.issuer.describe(),
                        r.subject.describe()
                    )));
                }
                if !r.delegable {
                    return Err(ProofError::BadInference(
                        "transitivity through a non-delegable statement".into(),
                    ));
                }
                if l.tag.intersect(&r.tag).is_none() {
                    return Err(ProofError::BadInference("empty tag intersection".into()));
                }
                if l.validity.intersect(&r.validity).is_none() {
                    return Err(ProofError::BadInference("disjoint validity windows".into()));
                }
                Ok(())
            }
            Proof::Weaken { inner, conclusion } => {
                inner.verify_structure(ctx, certs)?;
                let strong = inner.conclusion();
                if strong.subject != conclusion.subject || strong.issuer != conclusion.issuer {
                    return Err(ProofError::BadInference(
                        "weakening may not change principals".into(),
                    ));
                }
                if !strong.tag.implies(&conclusion.tag) {
                    return Err(ProofError::BadInference(
                        "weakened tag is not a subset".into(),
                    ));
                }
                if !conclusion.validity.within(&strong.validity) {
                    return Err(ProofError::BadInference(
                        "weakened validity is not contained".into(),
                    ));
                }
                if conclusion.delegable && !strong.delegable {
                    return Err(ProofError::BadInference(
                        "weakening cannot add delegability".into(),
                    ));
                }
                Ok(())
            }
            Proof::QuoteQuotee { inner, .. } | Proof::QuoteQuoter { inner, .. } => {
                inner.verify_structure(ctx, certs)
            }
            Proof::ConjIntro(proofs) => {
                if proofs.len() < 2 {
                    return Err(ProofError::BadInference(
                        "conjunction introduction needs ≥2 proofs".into(),
                    ));
                }
                let subject = proofs[0].conclusion().subject;
                for p in proofs {
                    p.verify_structure(ctx, certs)?;
                    if p.conclusion().subject != subject {
                        return Err(ProofError::BadInference(
                            "conjunction introduction requires a common subject".into(),
                        ));
                    }
                }
                Ok(())
            }
            Proof::ConjProj { conjunction, index } => match conjunction {
                Principal::Conjunction(items) if *index < items.len() => Ok(()),
                _ => Err(ProofError::BadInference(
                    "conjunction projection out of range".into(),
                )),
            },
            Proof::ThresholdIntro { threshold, proofs } => {
                let Principal::Threshold { k, subjects } = threshold else {
                    return Err(ProofError::BadInference(
                        "threshold introduction needs a threshold principal".into(),
                    ));
                };
                let mut seen = std::collections::HashSet::new();
                let common_subject = proofs
                    .first()
                    .map(|(_, p)| p.conclusion().subject)
                    .ok_or_else(|| ProofError::BadInference("no threshold proofs".into()))?;
                for (i, p) in proofs {
                    p.verify_structure(ctx, certs)?;
                    let c = p.conclusion();
                    if c.subject != common_subject {
                        return Err(ProofError::BadInference(
                            "threshold proofs require a common subject".into(),
                        ));
                    }
                    let target = subjects.get(*i).ok_or_else(|| {
                        ProofError::BadInference("threshold index out of range".into())
                    })?;
                    if &c.issuer != target {
                        return Err(ProofError::BadInference(format!(
                            "threshold proof {i} concludes for {} not {}",
                            c.issuer.describe(),
                            target.describe()
                        )));
                    }
                    seen.insert(*i);
                }
                if seen.len() < *k {
                    return Err(ProofError::BadInference(format!(
                        "threshold needs {k} distinct subjects, got {}",
                        seen.len()
                    )));
                }
                Ok(())
            }
            Proof::NameMono { inner, .. } => inner.verify_structure(ctx, certs),
            Proof::HashIdent { key, alg, .. } => {
                // The hash is recomputed in `conclusion()`; nothing can be
                // forged here, but check the digest length invariant anyway.
                let h = crate::cert::key_hash_with(key, *alg);
                if h.bytes.len() != alg.digest_len() {
                    return Err(ProofError::BadInference("hash length mismatch".into()));
                }
                Ok(())
            }
        }
    }

    /// The signature pass of [`Proof::verify`]: checks every collected
    /// certificate's Schnorr signature, batched into one random-linear-
    /// combination multi-exponentiation when the chain holds several.
    /// On batch failure the individual fallback inside `verify_batch`
    /// pinpoints the culprits, so the error names the first bad leaf.
    fn verify_cert_signatures(certs: &[&Certificate]) -> Result<(), ProofError> {
        match certs {
            [] => Ok(()),
            [cert] => {
                if cert.signer.verify(&cert.signed_bytes(), &cert.signature) {
                    Ok(())
                } else {
                    Err(ProofError::BadCertificate(
                        "signature verification failed".into(),
                    ))
                }
            }
            certs => {
                let messages: Vec<Vec<u8>> = certs.iter().map(|c| c.signed_bytes()).collect();
                let entries: Vec<BatchEntry<'_>> = certs
                    .iter()
                    .zip(&messages)
                    .map(|(c, m)| BatchEntry {
                        key: &c.signer,
                        message: m,
                        sig: &c.signature,
                    })
                    .collect();
                match verify_batch(&entries) {
                    BatchOutcome::AllValid => Ok(()),
                    BatchOutcome::Invalid(bad) => {
                        let which = bad
                            .iter()
                            .map(|&i| format!("{:?}", certs[i].delegation))
                            .collect::<Vec<_>>()
                            .join("; ");
                        Err(ProofError::BadCertificate(format!(
                            "signature verification failed for: {which}"
                        )))
                    }
                }
            }
        }
    }

    /// Verifies and then checks that the conclusion authorizes `speaker` to
    /// perform `request` on behalf of `issuer` at time `now`.
    ///
    /// "The step of matching a request to a proof automatically disregards
    /// expired conclusions."
    pub fn authorizes(
        &self,
        speaker: &Principal,
        issuer: &Principal,
        request: &Tag,
        ctx: &VerifyCtx,
    ) -> Result<(), ProofError> {
        self.verify(ctx)?;
        self.check_conclusion(speaker, issuer, request, ctx.now)
    }

    /// The conclusion-matching half of [`Proof::authorizes`]: purely
    /// structural (no signature work), so `VerifyCtx::authorize` re-runs
    /// it on every request even when the chain verification itself was a
    /// memo hit — expiry of the *conclusion* is never cached.
    pub fn check_conclusion(
        &self,
        speaker: &Principal,
        issuer: &Principal,
        request: &Tag,
        now: Time,
    ) -> Result<(), ProofError> {
        let c = self.conclusion();
        if &c.subject != speaker {
            return Err(ProofError::NotAuthorizing(format!(
                "proof subject {} is not the speaker {}",
                c.subject.describe(),
                speaker.describe()
            )));
        }
        if &c.issuer != issuer {
            return Err(ProofError::NotAuthorizing(format!(
                "proof issuer {} is not the resource issuer {}",
                c.issuer.describe(),
                issuer.describe()
            )));
        }
        if !c.tag.permits(request) {
            return Err(ProofError::NotAuthorizing(format!(
                "restriction {:?} does not permit request {:?}",
                c.tag, request
            )));
        }
        if !c.validity.contains(now) {
            return Err(ProofError::NotAuthorizing("conclusion expired".into()));
        }
        Ok(())
    }

    /// Enumerates all subproofs (lemmas), outermost first.
    ///
    /// "It is simple to extract lemmas (subproofs) from structured proofs,
    /// allowing the prover to digest proofs into reusable components."
    pub fn lemmas(&self) -> Vec<&Proof> {
        let mut out = Vec::new();
        self.collect_lemmas(&mut out);
        out
    }

    fn collect_lemmas<'a>(&'a self, out: &mut Vec<&'a Proof>) {
        out.push(self);
        match self {
            Proof::Transitivity(l, r) => {
                l.collect_lemmas(out);
                r.collect_lemmas(out);
            }
            Proof::Weaken { inner, .. }
            | Proof::QuoteQuotee { inner, .. }
            | Proof::QuoteQuoter { inner, .. }
            | Proof::NameMono { inner, .. } => inner.collect_lemmas(out),
            Proof::ConjIntro(ps) => {
                for p in ps {
                    p.collect_lemmas(out);
                }
            }
            Proof::ThresholdIntro { proofs, .. } => {
                for (_, p) in proofs {
                    p.collect_lemmas(out);
                }
            }
            Proof::SignedCert(_)
            | Proof::Assumption { .. }
            | Proof::Reflex(_)
            | Proof::ConjProj { .. }
            | Proof::HashIdent { .. } => {}
        }
    }

    /// The number of nodes in the proof tree.
    pub fn size(&self) -> usize {
        self.lemmas().len()
    }

    /// The hashes of every signed certificate this proof depends on
    /// (deduplicated) — the proof's *revocation provenance*.
    ///
    /// Caches that retain conclusions derived from a proof (prover shortcut
    /// edges, MAC sessions, verified-request entries, RMI proof caches)
    /// record these hashes so that revoking one certificate can evict
    /// exactly the state that depended on it.
    pub fn cert_hashes(&self) -> Vec<HashVal> {
        let mut out = Vec::new();
        for lemma in self.lemmas() {
            if let Proof::SignedCert(cert) = lemma {
                let h = cert.hash();
                if !out.contains(&h) {
                    out.push(h);
                }
            }
        }
        out
    }

    /// Renders an indented, human-readable audit trail of the proof.
    pub fn audit_trail(&self) -> String {
        let mut s = String::new();
        self.render_audit(&mut s, 0);
        s
    }

    fn rule_name(&self) -> &'static str {
        match self {
            Proof::SignedCert(_) => "signed-certificate",
            Proof::Assumption { .. } => "assumption",
            Proof::Reflex(_) => "reflexivity",
            Proof::Transitivity(_, _) => "transitivity",
            Proof::Weaken { .. } => "weakening",
            Proof::QuoteQuotee { .. } => "quote-monotonicity(quotee)",
            Proof::QuoteQuoter { .. } => "quote-monotonicity(quoter)",
            Proof::ConjIntro(_) => "conjunction-introduction",
            Proof::ConjProj { .. } => "conjunction-projection",
            Proof::ThresholdIntro { .. } => "threshold-introduction",
            Proof::NameMono { .. } => "name-monotonicity",
            Proof::HashIdent { .. } => "hash-identity",
        }
    }

    fn render_audit(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let c = self.conclusion();
        out.push_str(&format!(
            "{}: {} ⇒ {}",
            self.rule_name(),
            c.subject.describe(),
            c.issuer.describe()
        ));
        if let Proof::Assumption { authority, .. } = self {
            out.push_str(&format!(" [vouched by {authority}]"));
        }
        out.push('\n');
        match self {
            Proof::Transitivity(l, r) => {
                l.render_audit(out, depth + 1);
                r.render_audit(out, depth + 1);
            }
            Proof::Weaken { inner, .. }
            | Proof::QuoteQuotee { inner, .. }
            | Proof::QuoteQuoter { inner, .. }
            | Proof::NameMono { inner, .. } => inner.render_audit(out, depth + 1),
            Proof::ConjIntro(ps) => {
                for p in ps {
                    p.render_audit(out, depth + 1);
                }
            }
            Proof::ThresholdIntro { proofs, .. } => {
                for (_, p) in proofs {
                    p.render_audit(out, depth + 1);
                }
            }
            _ => {}
        }
    }

    /// Serializes the proof tree to an S-expression.
    pub fn to_sexp(&self) -> Sexp {
        match self {
            Proof::SignedCert(cert) => cert.to_sexp(),
            Proof::Assumption { stmt, authority } => Sexp::tagged(
                "assumption",
                vec![Sexp::from(authority.as_str()), stmt.to_sexp()],
            ),
            Proof::Reflex(p) => Sexp::tagged("reflex", vec![p.to_sexp()]),
            Proof::Transitivity(l, r) => {
                Sexp::tagged("transitivity", vec![l.to_sexp(), r.to_sexp()])
            }
            Proof::Weaken { inner, conclusion } => {
                Sexp::tagged("weaken", vec![inner.to_sexp(), conclusion.to_sexp()])
            }
            Proof::QuoteQuotee { inner, quoter } => {
                Sexp::tagged("quote-quotee", vec![quoter.to_sexp(), inner.to_sexp()])
            }
            Proof::QuoteQuoter { inner, quotee } => {
                Sexp::tagged("quote-quoter", vec![quotee.to_sexp(), inner.to_sexp()])
            }
            Proof::ConjIntro(ps) => {
                Sexp::tagged("conj-intro", ps.iter().map(Proof::to_sexp).collect())
            }
            Proof::ConjProj { conjunction, index } => Sexp::tagged(
                "conj-proj",
                vec![conjunction.to_sexp(), Sexp::int(*index as u64)],
            ),
            Proof::ThresholdIntro { threshold, proofs } => {
                let mut body = vec![threshold.to_sexp()];
                for (i, p) in proofs {
                    body.push(Sexp::list(vec![Sexp::int(*i as u64), p.to_sexp()]));
                }
                Sexp::tagged("threshold-intro", body)
            }
            Proof::NameMono { inner, name } => Sexp::tagged(
                "name-mono",
                vec![Sexp::from(name.as_str()), inner.to_sexp()],
            ),
            Proof::HashIdent {
                key,
                alg,
                hash_to_key,
            } => Sexp::tagged(
                "hash-ident",
                vec![
                    key.to_sexp(),
                    Sexp::from(alg.name()),
                    Sexp::from(if *hash_to_key {
                        "hash-to-key"
                    } else {
                        "key-to-hash"
                    }),
                ],
            ),
        }
    }

    /// Parses the form produced by [`Proof::to_sexp`].
    pub fn from_sexp(e: &Sexp) -> Result<Proof, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        let body = e.tag_body().unwrap_or(&[]);
        match e.tag_name() {
            Some("signed-cert") => Ok(Proof::SignedCert(Box::new(Certificate::from_sexp(e)?))),
            Some("assumption") => {
                if body.len() != 2 {
                    return Err(bad("assumption takes authority + stmt"));
                }
                let authority = body[0]
                    .as_str()
                    .ok_or_else(|| bad("authority"))?
                    .to_string();
                let stmt = Delegation::from_sexp(&body[1])?;
                Ok(Proof::Assumption { stmt, authority })
            }
            Some("reflex") => {
                let p = body.first().ok_or_else(|| bad("reflex principal"))?;
                Ok(Proof::Reflex(Principal::from_sexp(p)?))
            }
            Some("transitivity") => {
                if body.len() != 2 {
                    return Err(bad("transitivity takes two proofs"));
                }
                Ok(Proof::Transitivity(
                    Box::new(Proof::from_sexp(&body[0])?),
                    Box::new(Proof::from_sexp(&body[1])?),
                ))
            }
            Some("weaken") => {
                if body.len() != 2 {
                    return Err(bad("weaken takes proof + conclusion"));
                }
                Ok(Proof::Weaken {
                    inner: Box::new(Proof::from_sexp(&body[0])?),
                    conclusion: Delegation::from_sexp(&body[1])?,
                })
            }
            Some("quote-quotee") => {
                if body.len() != 2 {
                    return Err(bad("quote-quotee takes quoter + proof"));
                }
                Ok(Proof::QuoteQuotee {
                    quoter: Principal::from_sexp(&body[0])?,
                    inner: Box::new(Proof::from_sexp(&body[1])?),
                })
            }
            Some("quote-quoter") => {
                if body.len() != 2 {
                    return Err(bad("quote-quoter takes quotee + proof"));
                }
                Ok(Proof::QuoteQuoter {
                    quotee: Principal::from_sexp(&body[0])?,
                    inner: Box::new(Proof::from_sexp(&body[1])?),
                })
            }
            Some("conj-intro") => {
                let ps: Result<Vec<Proof>, ParseError> =
                    body.iter().map(Proof::from_sexp).collect();
                Ok(Proof::ConjIntro(ps?))
            }
            Some("conj-proj") => {
                if body.len() != 2 {
                    return Err(bad("conj-proj takes conjunction + index"));
                }
                Ok(Proof::ConjProj {
                    conjunction: Principal::from_sexp(&body[0])?,
                    index: body[1].as_u64().ok_or_else(|| bad("index"))? as usize,
                })
            }
            Some("threshold-intro") => {
                let threshold =
                    Principal::from_sexp(body.first().ok_or_else(|| bad("threshold"))?)?;
                let mut proofs = Vec::new();
                for pair in &body[1..] {
                    let items = pair.as_list().ok_or_else(|| bad("threshold pair"))?;
                    if items.len() != 2 {
                        return Err(bad("threshold pair arity"));
                    }
                    let i = items[0].as_u64().ok_or_else(|| bad("threshold index"))? as usize;
                    proofs.push((i, Proof::from_sexp(&items[1])?));
                }
                Ok(Proof::ThresholdIntro { threshold, proofs })
            }
            Some("name-mono") => {
                if body.len() != 2 {
                    return Err(bad("name-mono takes name + proof"));
                }
                Ok(Proof::NameMono {
                    name: body[0].as_str().ok_or_else(|| bad("name"))?.to_string(),
                    inner: Box::new(Proof::from_sexp(&body[1])?),
                })
            }
            Some("hash-ident") => {
                if body.len() != 3 {
                    return Err(bad("hash-ident takes key + alg + direction"));
                }
                let key = PublicKey::from_sexp(&body[0])?;
                let alg = body[1]
                    .as_str()
                    .and_then(HashAlg::from_name)
                    .ok_or_else(|| bad("alg"))?;
                let hash_to_key = match body[2].as_str() {
                    Some("hash-to-key") => true,
                    Some("key-to-hash") => false,
                    _ => return Err(bad("direction")),
                };
                Ok(Proof::HashIdent {
                    key: Box::new(key),
                    alg,
                    hash_to_key,
                })
            }
            _ => Err(bad("unknown proof form")),
        }
    }

    /// The hash of the canonical proof encoding (cache keys etc.).
    pub fn hash(&self) -> HashVal {
        HashVal::of_sexp(&self.to_sexp())
    }
}

impl fmt::Debug for Proof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Proof[{} ⊢ {:?}]", self.rule_name(), self.conclusion())
    }
}
