//! Revocation as statements in the logic (paper §4.1).
//!
//! "Our semantics paper explains how SPKI's revocation mechanisms (lists and
//! one-time revalidations) can be expressed as statements in our logic."
//! A certificate may carry a [`RevocationPolicy`] naming a *validator*
//! principal; the verifier must then hold a current, validator-signed
//! [`Crl`] (that does not list the certificate) or a fresh
//! [`Revalidation`] for the certificate.  Both artifacts are themselves
//! signed statements — there is no out-of-band mechanism.
//!
//! Both artifacts have full signed wire forms ([`Crl::to_sexp`],
//! [`Revalidation::to_sexp`]) so a validator service can serve them over
//! the same transports every other Snowflake statement travels on.

use snowflake_crypto::{HashVal, KeyPair, PublicKey, Signature};
use snowflake_sexpr::{ParseError, Sexp};
use std::collections::HashSet;
use std::sync::OnceLock;

use crate::statement::{Time, Validity};

/// The revocation regime a certificate opts into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RevocationPolicy {
    /// Verifier must hold a current CRL signed by the named validator key
    /// hash, and the certificate must not appear on it.
    Crl {
        /// Hash of the validator's public key.
        validator: HashVal,
    },
    /// Verifier must hold a fresh one-time revalidation of this certificate
    /// signed by the named validator.
    Revalidate {
        /// Hash of the validator's public key.
        validator: HashVal,
    },
}

impl RevocationPolicy {
    /// Serializes to `(revocation (crl|revalidate) <validator>)`.
    pub fn to_sexp(&self) -> Sexp {
        let (kind, validator) = match self {
            RevocationPolicy::Crl { validator } => ("crl", validator),
            RevocationPolicy::Revalidate { validator } => ("revalidate", validator),
        };
        Sexp::tagged("revocation", vec![Sexp::from(kind), validator.to_sexp()])
    }

    /// Parses the form produced by [`RevocationPolicy::to_sexp`].
    pub fn from_sexp(e: &Sexp) -> Result<RevocationPolicy, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        if e.tag_name() != Some("revocation") {
            return Err(bad("expected (revocation …)"));
        }
        let body = e.tag_body().ok_or_else(|| bad("revocation body"))?;
        if body.len() != 2 {
            return Err(bad("revocation takes kind + validator"));
        }
        let validator = HashVal::from_sexp(&body[1])?;
        match body[0].as_str() {
            Some("crl") => Ok(RevocationPolicy::Crl { validator }),
            Some("revalidate") => Ok(RevocationPolicy::Revalidate { validator }),
            _ => Err(bad("unknown revocation kind")),
        }
    }

    /// The validator's key hash.
    pub fn validator(&self) -> &HashVal {
        match self {
            RevocationPolicy::Crl { validator } | RevocationPolicy::Revalidate { validator } => {
                validator
            }
        }
    }
}

/// A signed certificate revocation list.
///
/// The `serial` is part of the signed body and increases with every
/// reissue, so a verifier fed lists out of order (replayed push deltas,
/// raced fetches) can refuse to roll its knowledge backwards.
#[derive(Debug, Clone)]
pub struct Crl {
    /// Monotonically increasing issue number (signed).
    pub serial: u64,
    /// Hashes of revoked certificates.
    pub revoked: Vec<HashVal>,
    /// When this list is authoritative.
    pub validity: Validity,
    /// The validator key that signed the list.
    pub signer: PublicKey,
    /// Signature over the canonical list body.
    pub signature: Signature,
    /// Membership index, built once on first [`Crl::revokes`] call so the
    /// verify hot path is O(1) instead of a linear scan of the list.  Not
    /// part of the wire format or equality; mutating `revoked` after the
    /// first lookup is not supported (it would break the signature anyway).
    index: OnceLock<HashSet<HashVal>>,
    /// Lazily computed [`Crl::content_hash`]; same caveats as `index`.
    content_hash: OnceLock<HashVal>,
}

impl PartialEq for Crl {
    fn eq(&self, other: &Self) -> bool {
        self.serial == other.serial
            && self.revoked == other.revoked
            && self.validity == other.validity
            && self.signer == other.signer
            && self.signature == other.signature
    }
}

impl Eq for Crl {}

impl Crl {
    /// Issues a signed CRL with serial 0 (single-shot uses; services that
    /// reissue should use [`Crl::issue_with_serial`]).
    pub fn issue(
        validator: &KeyPair,
        revoked: Vec<HashVal>,
        validity: Validity,
        rand_bytes: &mut dyn FnMut(&mut [u8]),
    ) -> Crl {
        Self::issue_with_serial(validator, 0, revoked, validity, rand_bytes)
    }

    /// Issues a signed CRL carrying an explicit serial number.
    pub fn issue_with_serial(
        validator: &KeyPair,
        serial: u64,
        revoked: Vec<HashVal>,
        validity: Validity,
        rand_bytes: &mut dyn FnMut(&mut [u8]),
    ) -> Crl {
        let tbs = Self::tbs(serial, &revoked, &validity);
        let signature = validator.sign(&tbs.canonical(), rand_bytes);
        Crl {
            serial,
            revoked,
            validity,
            signer: validator.public.clone(),
            signature,
            index: OnceLock::new(),
            content_hash: OnceLock::new(),
        }
    }

    fn tbs(serial: u64, revoked: &[HashVal], validity: &Validity) -> Sexp {
        let mut body = vec![
            Sexp::tagged("serial", vec![Sexp::int(serial)]),
            validity.to_sexp(),
        ];
        body.extend(revoked.iter().map(HashVal::to_sexp));
        Sexp::tagged("crl", body)
    }

    /// Checks signature, currency, and signer identity.
    pub fn check(&self, expected_validator: &HashVal, now: Time) -> Result<(), String> {
        self.check_unsigned(expected_validator, now)?;
        if !self.signer.verify(&self.signed_bytes(), &self.signature) {
            return Err("CRL signature invalid".into());
        }
        Ok(())
    }

    /// Currency and signer-identity checks *without* the signature.
    ///
    /// A freshness agent ingesting a burst of CRL deltas runs these per
    /// list and then verifies every list's signature in one batch
    /// (`schnorr::verify_batch`); [`Crl::check`] stays the single-list
    /// entry point and performs both halves.
    pub fn check_unsigned(&self, expected_validator: &HashVal, now: Time) -> Result<(), String> {
        if snowflake_crypto::HashVal::digest(
            expected_validator.alg,
            &self.signer.to_sexp().canonical(),
        ) != *expected_validator
        {
            return Err("CRL signed by wrong validator".into());
        }
        if !self.validity.contains(now) {
            return Err("CRL not current".into());
        }
        Ok(())
    }

    /// The canonical to-be-signed bytes [`Crl::signature`] covers.
    pub fn signed_bytes(&self) -> Vec<u8> {
        Self::tbs(self.serial, &self.revoked, &self.validity).canonical()
    }

    /// Hash of the full signed wire form ([`Crl::to_sexp`] canonical
    /// bytes: body, signer, *and* signature) — the identity caches key
    /// this exact artifact under.  Two lists that differ anywhere hash
    /// apart, including a reissue that reuses a serial and validity
    /// window over a different revoked set.  Computed once per instance.
    pub fn content_hash(&self) -> &HashVal {
        self.content_hash
            .get_or_init(|| HashVal::of(&self.to_sexp().canonical()))
    }

    /// Is `cert_hash` on the list?  O(1) after the first call builds the
    /// membership index (large CRLs sit on the verify hot path).
    pub fn revokes(&self, cert_hash: &HashVal) -> bool {
        self.index
            .get_or_init(|| self.revoked.iter().cloned().collect())
            .contains(cert_hash)
    }

    /// Serializes the full signed list:
    /// `(crl-signed <tbs> <signer> <signature>)`.
    pub fn to_sexp(&self) -> Sexp {
        Sexp::tagged(
            "crl-signed",
            vec![
                Self::tbs(self.serial, &self.revoked, &self.validity),
                self.signer.to_sexp(),
                self.signature.to_sexp(),
            ],
        )
    }

    /// Parses the form produced by [`Crl::to_sexp`].
    ///
    /// Parsing does **not** verify the signature; call [`Crl::check`].
    pub fn from_sexp(e: &Sexp) -> Result<Crl, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        if e.tag_name() != Some("crl-signed") {
            return Err(bad("expected (crl-signed …)"));
        }
        let body = e.tag_body().ok_or_else(|| bad("crl-signed body"))?;
        if body.len() != 3 {
            return Err(bad("crl-signed takes tbs, signer, signature"));
        }
        let tbs = &body[0];
        if tbs.tag_name() != Some("crl") {
            return Err(bad("expected (crl …) body"));
        }
        let tbs_body = tbs.tag_body().ok_or_else(|| bad("crl body"))?;
        if tbs_body.len() < 2 {
            return Err(bad("crl takes serial + validity + hashes"));
        }
        let serial = tbs
            .find_value("serial")
            .and_then(Sexp::as_u64)
            .ok_or_else(|| bad("missing serial"))?;
        let validity = Validity::from_sexp(&tbs_body[1])?;
        let revoked: Result<Vec<HashVal>, ParseError> =
            tbs_body[2..].iter().map(HashVal::from_sexp).collect();
        Ok(Crl {
            serial,
            revoked: revoked?,
            validity,
            signer: PublicKey::from_sexp(&body[1])?,
            signature: Signature::from_sexp(&body[2])?,
            index: OnceLock::new(),
            content_hash: OnceLock::new(),
        })
    }
}

/// A signed one-time revalidation of a specific certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Revalidation {
    /// Hash of the certificate being revalidated.
    pub cert_hash: HashVal,
    /// The (short) window during which the revalidation holds.
    pub validity: Validity,
    /// The validator key that signed.
    pub signer: PublicKey,
    /// Signature over the canonical body.
    pub signature: Signature,
}

impl Revalidation {
    /// Issues a signed revalidation for `cert_hash`.
    pub fn issue(
        validator: &KeyPair,
        cert_hash: HashVal,
        validity: Validity,
        rand_bytes: &mut dyn FnMut(&mut [u8]),
    ) -> Revalidation {
        let tbs = Self::tbs(&cert_hash, &validity);
        let signature = validator.sign(&tbs.canonical(), rand_bytes);
        Revalidation {
            cert_hash,
            validity,
            signer: validator.public.clone(),
            signature,
        }
    }

    fn tbs(cert_hash: &HashVal, validity: &Validity) -> Sexp {
        Sexp::tagged(
            "revalidation",
            vec![cert_hash.to_sexp(), validity.to_sexp()],
        )
    }

    /// Checks signature, currency, signer identity, and target certificate.
    pub fn check(
        &self,
        expected_validator: &HashVal,
        cert_hash: &HashVal,
        now: Time,
    ) -> Result<(), String> {
        if &self.cert_hash != cert_hash {
            return Err("revalidation covers a different certificate".into());
        }
        if snowflake_crypto::HashVal::digest(
            expected_validator.alg,
            &self.signer.to_sexp().canonical(),
        ) != *expected_validator
        {
            return Err("revalidation signed by wrong validator".into());
        }
        if !self.validity.contains(now) {
            return Err("revalidation expired".into());
        }
        let tbs = Self::tbs(&self.cert_hash, &self.validity);
        if !self.signer.verify(&tbs.canonical(), &self.signature) {
            return Err("revalidation signature invalid".into());
        }
        Ok(())
    }

    /// Hash of the full signed wire form ([`Revalidation::to_sexp`]
    /// canonical bytes) — see [`Crl::content_hash`].  Revalidation bodies
    /// are a few hundred bytes, so this is computed on demand.
    pub fn content_hash(&self) -> HashVal {
        HashVal::of(&self.to_sexp().canonical())
    }

    /// Serializes the full signed revalidation:
    /// `(revalidation-signed <tbs> <signer> <signature>)`.
    pub fn to_sexp(&self) -> Sexp {
        Sexp::tagged(
            "revalidation-signed",
            vec![
                Self::tbs(&self.cert_hash, &self.validity),
                self.signer.to_sexp(),
                self.signature.to_sexp(),
            ],
        )
    }

    /// Parses the form produced by [`Revalidation::to_sexp`].
    ///
    /// Parsing does **not** verify the signature; call [`Revalidation::check`].
    pub fn from_sexp(e: &Sexp) -> Result<Revalidation, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        if e.tag_name() != Some("revalidation-signed") {
            return Err(bad("expected (revalidation-signed …)"));
        }
        let body = e.tag_body().ok_or_else(|| bad("revalidation-signed body"))?;
        if body.len() != 3 {
            return Err(bad("revalidation-signed takes tbs, signer, signature"));
        }
        let tbs_body = body[0]
            .tag_body()
            .filter(|_| body[0].tag_name() == Some("revalidation"))
            .ok_or_else(|| bad("expected (revalidation …) body"))?;
        if tbs_body.len() != 2 {
            return Err(bad("revalidation takes cert-hash + validity"));
        }
        Ok(Revalidation {
            cert_hash: HashVal::from_sexp(&tbs_body[0])?,
            validity: Validity::from_sexp(&tbs_body[1])?,
            signer: PublicKey::from_sexp(&body[1])?,
            signature: Signature::from_sexp(&body[2])?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowflake_crypto::{DetRng, Group};

    fn rng(seed: &str) -> impl FnMut(&mut [u8]) {
        let mut r = DetRng::new(seed.as_bytes());
        move |b: &mut [u8]| r.fill(b)
    }

    #[test]
    fn policy_sexp_roundtrip() {
        let v = HashVal::of(b"validator-key");
        for p in [
            RevocationPolicy::Crl {
                validator: v.clone(),
            },
            RevocationPolicy::Revalidate { validator: v },
        ] {
            assert_eq!(RevocationPolicy::from_sexp(&p.to_sexp()).unwrap(), p);
        }
    }

    #[test]
    fn crl_check() {
        let mut r = rng("crl");
        let validator = KeyPair::generate(Group::test512(), &mut r);
        let vhash = validator.public.hash();
        let bad_cert = HashVal::of(b"revoked cert");
        let crl = Crl::issue(
            &validator,
            vec![bad_cert.clone()],
            Validity::between(Time(100), Time(200)),
            &mut r,
        );
        assert!(crl.check(&vhash, Time(150)).is_ok());
        assert!(crl.check(&vhash, Time(250)).is_err(), "stale CRL");
        assert!(
            crl.check(&HashVal::of(b"other"), Time(150)).is_err(),
            "wrong validator"
        );
        assert!(crl.revokes(&bad_cert));
        assert!(!crl.revokes(&HashVal::of(b"innocent")));
    }

    #[test]
    fn crl_tamper_detected() {
        let mut r = rng("crl2");
        let validator = KeyPair::generate(Group::test512(), &mut r);
        let vhash = validator.public.hash();
        let mut crl = Crl::issue(&validator, vec![], Validity::always(), &mut r);
        // Adversary adds a revocation entry without re-signing.
        crl.revoked.push(HashVal::of(b"sneaky"));
        assert!(crl.check(&vhash, Time(1)).is_err());
    }

    #[test]
    fn crl_serial_is_signed() {
        let mut r = rng("crl-serial");
        let validator = KeyPair::generate(Group::test512(), &mut r);
        let vhash = validator.public.hash();
        let mut crl =
            Crl::issue_with_serial(&validator, 7, vec![], Validity::always(), &mut r);
        assert!(crl.check(&vhash, Time(1)).is_ok());
        // An adversary cannot replay the list under a newer serial.
        crl.serial = 8;
        assert!(crl.check(&vhash, Time(1)).is_err());
    }

    #[test]
    fn crl_membership_scales() {
        let mut r = rng("crl-big");
        let validator = KeyPair::generate(Group::test512(), &mut r);
        let revoked: Vec<HashVal> = (0..4_096u32)
            .map(|i| HashVal::of(&i.to_be_bytes()))
            .collect();
        let crl = Crl::issue(&validator, revoked, Validity::always(), &mut r);
        // Every listed hash answers true, absent ones false; the index is
        // built once, so this loop is O(n) total rather than O(n²).
        for i in 0..4_096u32 {
            assert!(crl.revokes(&HashVal::of(&i.to_be_bytes())));
        }
        assert!(!crl.revokes(&HashVal::of(b"innocent")));
    }

    #[test]
    fn crl_sexp_roundtrip() {
        let mut r = rng("crl-wire");
        let validator = KeyPair::generate(Group::test512(), &mut r);
        let vhash = validator.public.hash();
        let crl = Crl::issue_with_serial(
            &validator,
            42,
            vec![HashVal::of(b"a"), HashVal::of(b"b")],
            Validity::between(Time(5), Time(500)),
            &mut r,
        );
        let back = Crl::from_sexp(&crl.to_sexp()).unwrap();
        assert_eq!(back, crl);
        assert!(back.check(&vhash, Time(50)).is_ok());
        assert!(back.revokes(&HashVal::of(b"a")));
        // And through the transport encoding, as a header or frame would
        // carry it.
        let transported = Sexp::parse(crl.to_sexp().transport().as_bytes()).unwrap();
        assert_eq!(Crl::from_sexp(&transported).unwrap(), crl);
    }

    #[test]
    fn revalidation_check() {
        let mut r = rng("reval");
        let validator = KeyPair::generate(Group::test512(), &mut r);
        let vhash = validator.public.hash();
        let cert = HashVal::of(b"cert");
        let reval = Revalidation::issue(
            &validator,
            cert.clone(),
            Validity::between(Time(10), Time(20)),
            &mut r,
        );
        assert!(reval.check(&vhash, &cert, Time(15)).is_ok());
        assert!(reval.check(&vhash, &cert, Time(25)).is_err(), "expired");
        assert!(
            reval
                .check(&vhash, &HashVal::of(b"other"), Time(15))
                .is_err(),
            "wrong cert"
        );
    }

    #[test]
    fn revalidation_sexp_roundtrip() {
        let mut r = rng("reval-wire");
        let validator = KeyPair::generate(Group::test512(), &mut r);
        let vhash = validator.public.hash();
        let cert = HashVal::of(b"cert");
        let reval = Revalidation::issue(
            &validator,
            cert.clone(),
            Validity::between(Time(10), Time(20)),
            &mut r,
        );
        let back = Revalidation::from_sexp(&reval.to_sexp()).unwrap();
        assert_eq!(back, reval);
        assert!(back.check(&vhash, &cert, Time(15)).is_ok());
    }
}
