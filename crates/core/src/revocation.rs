//! Revocation as statements in the logic (paper §4.1).
//!
//! "Our semantics paper explains how SPKI's revocation mechanisms (lists and
//! one-time revalidations) can be expressed as statements in our logic."
//! A certificate may carry a [`RevocationPolicy`] naming a *validator*
//! principal; the verifier must then hold a current, validator-signed
//! [`Crl`] (that does not list the certificate) or a fresh
//! [`Revalidation`] for the certificate.  Both artifacts are themselves
//! signed statements — there is no out-of-band mechanism.

use snowflake_crypto::{HashVal, KeyPair, PublicKey, Signature};
use snowflake_sexpr::{ParseError, Sexp};

use crate::statement::{Time, Validity};

/// The revocation regime a certificate opts into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RevocationPolicy {
    /// Verifier must hold a current CRL signed by the named validator key
    /// hash, and the certificate must not appear on it.
    Crl {
        /// Hash of the validator's public key.
        validator: HashVal,
    },
    /// Verifier must hold a fresh one-time revalidation of this certificate
    /// signed by the named validator.
    Revalidate {
        /// Hash of the validator's public key.
        validator: HashVal,
    },
}

impl RevocationPolicy {
    /// Serializes to `(revocation (crl|revalidate) <validator>)`.
    pub fn to_sexp(&self) -> Sexp {
        let (kind, validator) = match self {
            RevocationPolicy::Crl { validator } => ("crl", validator),
            RevocationPolicy::Revalidate { validator } => ("revalidate", validator),
        };
        Sexp::tagged("revocation", vec![Sexp::from(kind), validator.to_sexp()])
    }

    /// Parses the form produced by [`RevocationPolicy::to_sexp`].
    pub fn from_sexp(e: &Sexp) -> Result<RevocationPolicy, ParseError> {
        let bad = |m: &str| ParseError {
            offset: 0,
            message: m.into(),
        };
        if e.tag_name() != Some("revocation") {
            return Err(bad("expected (revocation …)"));
        }
        let body = e.tag_body().ok_or_else(|| bad("revocation body"))?;
        if body.len() != 2 {
            return Err(bad("revocation takes kind + validator"));
        }
        let validator = HashVal::from_sexp(&body[1])?;
        match body[0].as_str() {
            Some("crl") => Ok(RevocationPolicy::Crl { validator }),
            Some("revalidate") => Ok(RevocationPolicy::Revalidate { validator }),
            _ => Err(bad("unknown revocation kind")),
        }
    }

    /// The validator's key hash.
    pub fn validator(&self) -> &HashVal {
        match self {
            RevocationPolicy::Crl { validator } | RevocationPolicy::Revalidate { validator } => {
                validator
            }
        }
    }
}

/// A signed certificate revocation list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crl {
    /// Hashes of revoked certificates.
    pub revoked: Vec<HashVal>,
    /// When this list is authoritative.
    pub validity: Validity,
    /// The validator key that signed the list.
    pub signer: PublicKey,
    /// Signature over the canonical list body.
    pub signature: Signature,
}

impl Crl {
    /// Issues a signed CRL.
    pub fn issue(
        validator: &KeyPair,
        revoked: Vec<HashVal>,
        validity: Validity,
        rand_bytes: &mut dyn FnMut(&mut [u8]),
    ) -> Crl {
        let tbs = Self::tbs(&revoked, &validity);
        let signature = validator.sign(&tbs.canonical(), rand_bytes);
        Crl {
            revoked,
            validity,
            signer: validator.public.clone(),
            signature,
        }
    }

    fn tbs(revoked: &[HashVal], validity: &Validity) -> Sexp {
        let mut body = vec![validity.to_sexp()];
        body.extend(revoked.iter().map(HashVal::to_sexp));
        Sexp::tagged("crl", body)
    }

    /// Checks signature, currency, and signer identity.
    pub fn check(&self, expected_validator: &HashVal, now: Time) -> Result<(), String> {
        if snowflake_crypto::HashVal::digest(
            expected_validator.alg,
            &self.signer.to_sexp().canonical(),
        ) != *expected_validator
        {
            return Err("CRL signed by wrong validator".into());
        }
        if !self.validity.contains(now) {
            return Err("CRL not current".into());
        }
        let tbs = Self::tbs(&self.revoked, &self.validity);
        if !self.signer.verify(&tbs.canonical(), &self.signature) {
            return Err("CRL signature invalid".into());
        }
        Ok(())
    }

    /// Is `cert_hash` on the list?
    pub fn revokes(&self, cert_hash: &HashVal) -> bool {
        self.revoked.contains(cert_hash)
    }
}

/// A signed one-time revalidation of a specific certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Revalidation {
    /// Hash of the certificate being revalidated.
    pub cert_hash: HashVal,
    /// The (short) window during which the revalidation holds.
    pub validity: Validity,
    /// The validator key that signed.
    pub signer: PublicKey,
    /// Signature over the canonical body.
    pub signature: Signature,
}

impl Revalidation {
    /// Issues a signed revalidation for `cert_hash`.
    pub fn issue(
        validator: &KeyPair,
        cert_hash: HashVal,
        validity: Validity,
        rand_bytes: &mut dyn FnMut(&mut [u8]),
    ) -> Revalidation {
        let tbs = Self::tbs(&cert_hash, &validity);
        let signature = validator.sign(&tbs.canonical(), rand_bytes);
        Revalidation {
            cert_hash,
            validity,
            signer: validator.public.clone(),
            signature,
        }
    }

    fn tbs(cert_hash: &HashVal, validity: &Validity) -> Sexp {
        Sexp::tagged(
            "revalidation",
            vec![cert_hash.to_sexp(), validity.to_sexp()],
        )
    }

    /// Checks signature, currency, signer identity, and target certificate.
    pub fn check(
        &self,
        expected_validator: &HashVal,
        cert_hash: &HashVal,
        now: Time,
    ) -> Result<(), String> {
        if &self.cert_hash != cert_hash {
            return Err("revalidation covers a different certificate".into());
        }
        if snowflake_crypto::HashVal::digest(
            expected_validator.alg,
            &self.signer.to_sexp().canonical(),
        ) != *expected_validator
        {
            return Err("revalidation signed by wrong validator".into());
        }
        if !self.validity.contains(now) {
            return Err("revalidation expired".into());
        }
        let tbs = Self::tbs(&self.cert_hash, &self.validity);
        if !self.signer.verify(&tbs.canonical(), &self.signature) {
            return Err("revalidation signature invalid".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowflake_crypto::{DetRng, Group};

    fn rng(seed: &str) -> impl FnMut(&mut [u8]) {
        let mut r = DetRng::new(seed.as_bytes());
        move |b: &mut [u8]| r.fill(b)
    }

    #[test]
    fn policy_sexp_roundtrip() {
        let v = HashVal::of(b"validator-key");
        for p in [
            RevocationPolicy::Crl {
                validator: v.clone(),
            },
            RevocationPolicy::Revalidate { validator: v },
        ] {
            assert_eq!(RevocationPolicy::from_sexp(&p.to_sexp()).unwrap(), p);
        }
    }

    #[test]
    fn crl_check() {
        let mut r = rng("crl");
        let validator = KeyPair::generate(Group::test512(), &mut r);
        let vhash = validator.public.hash();
        let bad_cert = HashVal::of(b"revoked cert");
        let crl = Crl::issue(
            &validator,
            vec![bad_cert.clone()],
            Validity::between(Time(100), Time(200)),
            &mut r,
        );
        assert!(crl.check(&vhash, Time(150)).is_ok());
        assert!(crl.check(&vhash, Time(250)).is_err(), "stale CRL");
        assert!(
            crl.check(&HashVal::of(b"other"), Time(150)).is_err(),
            "wrong validator"
        );
        assert!(crl.revokes(&bad_cert));
        assert!(!crl.revokes(&HashVal::of(b"innocent")));
    }

    #[test]
    fn crl_tamper_detected() {
        let mut r = rng("crl2");
        let validator = KeyPair::generate(Group::test512(), &mut r);
        let vhash = validator.public.hash();
        let mut crl = Crl::issue(&validator, vec![], Validity::always(), &mut r);
        // Adversary adds a revocation entry without re-signing.
        crl.revoked.push(HashVal::of(b"sneaky"));
        assert!(crl.check(&vhash, Time(1)).is_err());
    }

    #[test]
    fn revalidation_check() {
        let mut r = rng("reval");
        let validator = KeyPair::generate(Group::test512(), &mut r);
        let vhash = validator.public.hash();
        let cert = HashVal::of(b"cert");
        let reval = Revalidation::issue(
            &validator,
            cert.clone(),
            Validity::between(Time(10), Time(20)),
            &mut r,
        );
        assert!(reval.check(&vhash, &cert, Time(15)).is_ok());
        assert!(reval.check(&vhash, &cert, Time(25)).is_err(), "expired");
        assert!(
            reval
                .check(&vhash, &HashVal::of(b"other"), Time(15))
                .is_err(),
            "wrong cert"
        );
    }
}
