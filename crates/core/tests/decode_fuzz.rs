//! Decoder robustness: untrusted wire bytes must never panic any `from_sexp`
//! decoder, and random valid objects must round-trip.

use proptest::prelude::*;
use snowflake_core::{Certificate, Delegation, Principal, Proof, Validity};
use snowflake_crypto::HashVal;
use snowflake_sexpr::Sexp;
use snowflake_tags::Tag;

fn arb_principal() -> impl Strategy<Value = Principal> {
    let leaf = prop_oneof![
        proptest::collection::vec(any::<u8>(), 1..16)
            .prop_map(|b| Principal::Message(HashVal::of(&b))),
        proptest::collection::vec(any::<u8>(), 1..16).prop_map(|b| Principal::Mac(HashVal::of(&b))),
        ("[a-z]{1,8}", proptest::collection::vec(any::<u8>(), 1..8)).prop_map(|(id, b)| {
            Principal::Local {
                broker: HashVal::of(&b),
                id,
            }
        }),
        ("[a-z]{1,6}", proptest::collection::vec(any::<u8>(), 1..8)).prop_map(|(kind, b)| {
            Principal::Channel(snowflake_core::ChannelId {
                kind,
                id: HashVal::of(&b),
            })
        }),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (inner.clone(), "[a-z]{1,6}").prop_map(|(base, name)| Principal::name(base, name)),
            (inner.clone(), inner.clone()).prop_map(|(q, e)| Principal::quoting(q, e)),
            proptest::collection::vec(inner, 2..4).prop_map(Principal::conjunction),
        ]
    })
}

proptest! {
    /// Arbitrary bytes through every decoder: errors allowed, panics not.
    #[test]
    fn decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(sexp) = Sexp::parse(&bytes) {
            let _ = Principal::from_sexp(&sexp);
            let _ = Delegation::from_sexp(&sexp);
            let _ = Certificate::from_sexp(&sexp);
            let _ = Proof::from_sexp(&sexp);
            let _ = Tag::parse(&sexp);
            let _ = Validity::from_sexp(&sexp);
            let _ = HashVal::from_sexp(&sexp);
        }
    }

    /// Structured-looking but adversarial S-expressions (valid syntax,
    /// random tag names and shapes) through the decoders.
    #[test]
    fn structured_garbage_never_panics(
        name in "[a-z-]{1,12}",
        children in proptest::collection::vec("[a-zA-Z0-9]{0,12}", 0..6),
    ) {
        let body: Vec<Sexp> = children.iter().map(|c| Sexp::from(c.as_str())).collect();
        let e = Sexp::tagged(&name, body);
        let _ = Principal::from_sexp(&e);
        let _ = Delegation::from_sexp(&e);
        let _ = Certificate::from_sexp(&e);
        let _ = Proof::from_sexp(&e);
        let _ = Tag::parse(&e);
    }

    /// Random well-formed principals round-trip exactly.
    #[test]
    fn principals_roundtrip(p in arb_principal()) {
        let e = p.to_sexp();
        prop_assert_eq!(Principal::from_sexp(&e).unwrap(), p.clone());
        // And through the transport encoding.
        let t = Sexp::parse(e.transport().as_bytes()).unwrap();
        prop_assert_eq!(Principal::from_sexp(&t).unwrap(), p);
    }

    /// Describe never panics and is non-empty for any principal.
    #[test]
    fn describe_total(p in arb_principal()) {
        prop_assert!(!p.describe().is_empty());
    }
}
