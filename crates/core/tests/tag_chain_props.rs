//! Property tests on the interaction of tags, validity windows, and the
//! delegation rules — the security-critical composition invariants.

use proptest::prelude::*;
use snowflake_core::{Delegation, Principal, Proof, Tag, Time, Validity, VerifyCtx};
use snowflake_crypto::HashVal;
use snowflake_tags::{Bound, RangeOrdering};

fn arb_tag() -> impl Strategy<Value = Tag> {
    let leaf = prop_oneof![
        Just(Tag::Star),
        "[a-z]{1,6}".prop_map(|s| Tag::Atom(s.into_bytes())),
        "[a-z]{0,3}".prop_map(|s| Tag::Prefix(s.into_bytes())),
        (0u32..50, 50u32..100).prop_map(|(lo, hi)| Tag::Range {
            ordering: RangeOrdering::Numeric,
            low: Some(Bound {
                value: lo.to_string().into_bytes(),
                inclusive: true
            }),
            high: Some(Bound {
                value: hi.to_string().into_bytes(),
                inclusive: true
            }),
        }),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Tag::List),
            proptest::collection::vec(inner, 1..3).prop_map(Tag::Set),
        ]
    })
}

fn arb_validity() -> impl Strategy<Value = Validity> {
    prop_oneof![
        Just(Validity::always()),
        (0u64..500, 500u64..1000).prop_map(|(a, b)| Validity::between(Time(a), Time(b))),
        (0u64..1000).prop_map(|t| Validity::until(Time(t))),
    ]
}

/// Assumption-backed delegation chains (cheap — no signatures) let us
/// property-test the *composition rules* in volume.
fn assumed(subject: Principal, issuer: Principal, tag: Tag, validity: Validity) -> Proof {
    Proof::Assumption {
        stmt: Delegation {
            subject,
            issuer,
            tag,
            validity,
            delegable: true,
        },
        authority: "prop-test".into(),
    }
}

fn p(n: u8) -> Principal {
    Principal::Message(HashVal::of(&[n]))
}

proptest! {
    /// Composed validity is the intersection: the chain never authorizes at
    /// a time either link excludes.
    #[test]
    fn chain_validity_is_intersection(v1 in arb_validity(), v2 in arb_validity(),
                                      at in 0u64..1200) {
        let link1 = assumed(p(1), p(2), Tag::Star, v1);
        let link2 = assumed(p(2), p(3), Tag::Star, v2);
        let chain = link1.then(link2);
        let mut ctx = VerifyCtx::at(Time(at));
        for l in chain.lemmas() {
            if let Proof::Assumption { stmt, .. } = l {
                ctx.assume(stmt);
            }
        }
        let authorized = chain.authorizes(&p(1), &p(3), &Tag::Star, &ctx).is_ok();
        let both_valid = v1.contains(Time(at)) && v2.contains(Time(at))
            && v1.intersect(&v2).is_some();
        prop_assert_eq!(authorized, both_valid && chain.verify(&ctx).is_ok());
        if authorized {
            prop_assert!(both_valid);
        }
    }

    /// Weakening soundness: any conclusion produced by a valid Weaken node
    /// authorizes only requests the inner proof also authorizes.
    #[test]
    fn weakening_cannot_escalate(t_strong in arb_tag(), t_weak in arb_tag(),
                                 req in arb_tag()) {
        let inner = assumed(p(1), p(2), t_strong.clone(), Validity::always());
        let weak = Proof::Weaken {
            inner: Box::new(inner.clone()),
            conclusion: Delegation {
                subject: p(1),
                issuer: p(2),
                tag: t_weak,
                validity: Validity::always(),
                delegable: false,
            },
        };
        let mut ctx = VerifyCtx::at(Time(0));
        if let Proof::Assumption { stmt, .. } = &inner {
            ctx.assume(stmt);
        }
        if weak.verify(&ctx).is_ok() && weak.conclusion().tag.permits(&req) {
            prop_assert!(
                t_strong.permits(&req),
                "weakened proof authorized a request the original would not"
            );
        }
    }

    /// Quoting monotonicity preserves tags and validity exactly.
    #[test]
    fn quoting_preserves_restriction(t in arb_tag(), v in arb_validity()) {
        let inner = assumed(p(1), p(2), t.clone(), v);
        let quoted = Proof::QuoteQuotee {
            inner: Box::new(inner),
            quoter: p(9),
        };
        let c = quoted.conclusion();
        prop_assert_eq!(c.tag, t);
        prop_assert_eq!(c.validity, v);
        prop_assert_eq!(c.subject, Principal::quoting(p(9), p(1)));
        prop_assert_eq!(c.issuer, Principal::quoting(p(9), p(2)));
    }

    /// Conjunction introduction: the conclusion tag permits exactly the
    /// requests every branch permits.
    #[test]
    fn conjunction_tag_is_meet(t1 in arb_tag(), t2 in arb_tag(), req in arb_tag()) {
        let b1 = assumed(p(1), p(2), t1.clone(), Validity::always());
        let b2 = assumed(p(1), p(3), t2.clone(), Validity::always());
        let conj = Proof::ConjIntro(vec![b1, b2]);
        let c = conj.conclusion();
        if c.tag.permits(&req) {
            prop_assert!(t1.permits(&req));
            prop_assert!(t2.permits(&req));
        }
    }
}
