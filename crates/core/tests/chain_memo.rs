//! The verified-chain memo must be invisible except for speed.
//!
//! Claims under test: a context with a memo attached returns answers
//! byte-identical to a cold context on the same inputs (honest and
//! tampered, warm and cold); revoking a certificate — by push eviction,
//! by a newly installed CRL, or by the governing artifact lapsing —
//! makes the memo fail closed; and the exported counters prove that a
//! warm re-presented chain was answered without re-verification.

use proptest::prelude::*;
use snowflake_core::{
    Certificate, ChainMemo, Crl, Delegation, Principal, Proof, ProofError, RevocationPolicy, Tag,
    Time, Validity, VerifyCtx,
};
use snowflake_crypto::{DetRng, Group, KeyPair};
use std::sync::{Arc, OnceLock};

fn rng(seed: &str) -> impl FnMut(&mut [u8]) {
    let mut r = DetRng::new(seed.as_bytes());
    move |b: &mut [u8]| r.fill(b)
}

/// Deterministic signer pool (key generation dominates test time).
fn keys() -> &'static Vec<KeyPair> {
    static K: OnceLock<Vec<KeyPair>> = OnceLock::new();
    K.get_or_init(|| {
        let mut r = rng("chain-memo-keys");
        (0..4).map(|_| KeyPair::generate(Group::test512(), &mut r)).collect()
    })
}

fn deleg(subject: &KeyPair, issuer: &KeyPair, delegable: bool) -> Delegation {
    Delegation {
        subject: Principal::key(&subject.public),
        issuer: Principal::key(&issuer.public),
        tag: Tag::named("web", vec![]),
        validity: Validity::until(Time(10_000)),
        delegable,
    }
}

/// carol ⇒ bob ⇒ alice as a two-certificate transitivity chain, with an
/// optional tamper: 1 breaks the first signature, 2 breaks the second.
fn two_cert_chain(seed: u64, tamper: usize) -> Proof {
    let [alice, bob, carol, _] = &keys()[..] else { unreachable!() };
    let mut r = rng(&format!("chain-{seed}"));
    let mut c1 = Certificate::issue(bob, deleg(carol, bob, false), &mut r);
    let mut c2 = Certificate::issue(alice, deleg(bob, alice, true), &mut r);
    if tamper == 1 {
        c1.delegation.tag = Tag::Star;
    } else if tamper == 2 {
        c2.delegation.tag = Tag::Star;
    }
    Proof::signed_cert(c1).then(Proof::signed_cert(c2))
}

fn authorize_result(ctx: &VerifyCtx, proof: &Proof) -> String {
    let [alice, _, carol, _] = &keys()[..] else { unreachable!() };
    let request = Tag::named("web", vec![]);
    format!(
        "{:?}",
        ctx.authorize(
            proof,
            &Principal::key(&carol.public),
            &Principal::key(&alice.public),
            &request,
        )
    )
}

proptest! {
    /// Memoized answers are byte-identical to cold ones — on the cold
    /// (inserting) pass, on the warm (hit) pass, honest or tampered.
    #[test]
    fn memoized_answers_match_cold(seed in any::<u64>(), tamper in 0usize..3, at in 1u64..20_000) {
        let proof = two_cert_chain(seed, tamper);
        let cold_ctx = VerifyCtx::at(Time(at));
        let memo = Arc::new(ChainMemo::new(64));
        let warm_ctx = VerifyCtx::at(Time(at)).with_chain_memo(memo.clone());
        let cold = authorize_result(&cold_ctx, &proof);
        let first = authorize_result(&warm_ctx, &proof);
        let second = authorize_result(&warm_ctx, &proof);
        prop_assert_eq!(&first, &cold, "cold-insert pass diverged");
        prop_assert_eq!(&second, &cold, "warm pass diverged");
        if tamper == 0 {
            // The chain itself is valid, so its verification memoizes even
            // when the conclusion is expired — expiry is re-checked on
            // every request by check_conclusion, never from the cache.
            prop_assert_eq!(cold.starts_with("Ok"), at <= 10_000, "{}", cold);
            let stats = memo.stats();
            prop_assert_eq!(stats.hits, 1, "second authorize must be a memo hit");
            prop_assert_eq!(stats.inserts, 1);
        } else {
            prop_assert!(cold.starts_with("Err"));
            prop_assert_eq!(memo.stats().inserts, 0, "failed verifications are never memoized");
        }
    }
}

#[test]
fn warm_hit_skips_verification_and_counters_prove_it() {
    let proof = two_cert_chain(1, 0);
    let memo = Arc::new(ChainMemo::new(64));
    let ctx = VerifyCtx::at(Time(100)).with_chain_memo(memo.clone());
    assert!(ctx.verify_cached(&proof).is_ok());
    let after_cold = memo.stats();
    assert_eq!((after_cold.hits, after_cold.misses, after_cold.inserts), (0, 1, 1));
    for _ in 0..10 {
        assert!(ctx.verify_cached(&proof).is_ok());
    }
    let s = memo.stats();
    assert_eq!(s.hits, 10, "every re-presentation is a hit");
    assert_eq!(s.inserts, 1, "nothing was re-verified or re-inserted");
}

#[test]
fn push_eviction_fails_closed_mid_session() {
    // A servlet-style session: proof verified warm, then the issuer's
    // certificate is revoked and pushed. The memo entry dies with the
    // push, and a context holding the new CRL denies — the memo cannot
    // resurrect the pre-revocation answer.
    let [alice, bob, carol, validator] = &keys()[..] else { unreachable!() };
    let mut r = rng("push-evict");
    let policy = RevocationPolicy::Crl { validator: validator.public.hash() };
    let c1 = Certificate::issue(bob, deleg(carol, bob, false), &mut r);
    let c2 = Certificate::issue_with_revocation(
        alice,
        deleg(bob, alice, true),
        Some(policy),
        &mut r,
    );
    let c2_hash = c2.hash();
    let proof = Proof::signed_cert(c1).then(Proof::signed_cert(c2.clone()));

    let memo = Arc::new(ChainMemo::new(64));
    let empty_crl = Crl::issue(validator, vec![], Validity::until(Time(10_000)), &mut r);
    let mut ctx = VerifyCtx::at(Time(100)).with_chain_memo(memo.clone());
    ctx.install_crl(empty_crl);
    assert!(ctx.verify_cached(&proof).is_ok());
    assert!(ctx.verify_cached(&proof).is_ok());
    assert_eq!(memo.stats().hits, 1);

    // Revocation push: the bus evicts by cert hash...
    assert_eq!(memo.evict_cert(&c2_hash), 1);
    assert_eq!(memo.stats().revocation_evictions, 1);
    // ...and the freshness machinery installs the revoking CRL.
    let revoking =
        Crl::issue_with_serial(validator, 1, vec![c2_hash], Validity::until(Time(10_000)), &mut r);
    ctx.install_crl(revoking);
    match ctx.verify_cached(&proof) {
        Err(ProofError::Revoked(_)) => {}
        other => panic!("revoked chain must be denied, got {other:?}"),
    }
    assert_eq!(memo.stats().hits, 1, "no hit after revocation");
}

#[test]
fn new_crl_serial_misses_even_without_push() {
    // Defense in depth: even if the push eviction were lost, installing a
    // higher-serial CRL changes the fingerprint (and the revocation
    // epoch), so the stale entry can never answer.
    let [alice, bob, carol, validator] = &keys()[..] else { unreachable!() };
    let mut r = rng("serial-miss");
    let policy = RevocationPolicy::Crl { validator: validator.public.hash() };
    let c1 = Certificate::issue(bob, deleg(carol, bob, false), &mut r);
    let c2 = Certificate::issue_with_revocation(alice, deleg(bob, alice, true), Some(policy), &mut r);
    let c2_hash = c2.hash();
    let proof = Proof::signed_cert(c1).then(Proof::signed_cert(c2));

    let memo = Arc::new(ChainMemo::new(64));
    let mut ctx = VerifyCtx::at(Time(100)).with_chain_memo(memo.clone());
    ctx.install_crl(Crl::issue(validator, vec![], Validity::until(Time(10_000)), &mut r));
    assert!(ctx.verify_cached(&proof).is_ok());

    // No evict_cert call — only the context learns of the revocation.
    let revoking =
        Crl::issue_with_serial(validator, 7, vec![c2_hash], Validity::until(Time(10_000)), &mut r);
    ctx.install_crl(revoking);
    assert!(ctx.verify_cached(&proof).is_err(), "stale memo entry must not answer");
}

#[test]
fn same_serial_reissue_misses() {
    // The fingerprint pins the governing CRL by *content*, not identity:
    // a validator that reissues a different revoked-set under the same
    // serial and validity window (so neither the serial fold nor the
    // revocation epoch moves) must still change the fingerprint — the
    // cold path now enforces the new list, and a memo hit answering for
    // the old one would survive a revocation until the window lapsed.
    let [alice, bob, carol, validator] = &keys()[..] else { unreachable!() };
    let mut r = rng("same-serial-reissue");
    let policy = RevocationPolicy::Crl { validator: validator.public.hash() };
    let c1 = Certificate::issue(bob, deleg(carol, bob, false), &mut r);
    let c2 = Certificate::issue_with_revocation(alice, deleg(bob, alice, true), Some(policy), &mut r);
    let c2_hash = c2.hash();
    let proof = Proof::signed_cert(c1).then(Proof::signed_cert(c2));

    let memo = Arc::new(ChainMemo::new(64));
    let mut ctx = VerifyCtx::at(Time(100)).with_chain_memo(memo.clone());
    let window = Validity::until(Time(10_000));
    ctx.install_crl(Crl::issue_with_serial(validator, 5, vec![], window.clone(), &mut r));
    assert!(ctx.verify_cached(&proof).is_ok());
    assert!(ctx.verify_cached(&proof).is_ok());
    assert_eq!(memo.stats().hits, 1);

    // Reissue under the *same* serial and window, now revoking c2.
    ctx.install_crl(Crl::issue_with_serial(validator, 5, vec![c2_hash], window, &mut r));
    match ctx.verify_cached(&proof) {
        Err(ProofError::Revoked(_)) => {}
        other => panic!("reissued list must govern, got {other:?}"),
    }
    assert_eq!(memo.stats().hits, 1, "stale entry must not answer for the reissued list");
}

#[test]
fn memo_hit_cannot_outlive_consulted_artifact() {
    // The stale-CRL hazard: a CRL valid on [0, 100] governs the chain and
    // the chain verifies (and is memoized) at t=50. At t=150 a cold
    // verify fails — the only CRL available is no longer current — so the
    // memo hit must expire with the artifact, not with the entry.
    let [alice, bob, carol, validator] = &keys()[..] else { unreachable!() };
    let mut r = rng("artifact-window");
    let policy = RevocationPolicy::Crl { validator: validator.public.hash() };
    let c1 = Certificate::issue(bob, deleg(carol, bob, false), &mut r);
    let c2 = Certificate::issue_with_revocation(alice, deleg(bob, alice, true), Some(policy), &mut r);
    let proof = Proof::signed_cert(c1).then(Proof::signed_cert(c2));

    let memo = Arc::new(ChainMemo::new(64));
    let mut ctx = VerifyCtx::at(Time(50)).with_chain_memo(memo.clone());
    ctx.install_crl(Crl::issue(
        validator,
        vec![],
        Validity::between(Time(0), Time(100)),
        &mut r,
    ));
    assert!(ctx.verify_cached(&proof).is_ok());
    assert!(ctx.verify_cached(&proof).is_ok(), "warm inside the window");
    assert_eq!(memo.stats().hits, 1);

    ctx.now = Time(150);
    let res = ctx.verify_cached(&proof);
    assert!(res.is_err(), "past the CRL window the chain must be re-denied, got {res:?}");
    assert_eq!(memo.stats().hits, 1, "no hit past the artifact's validity end");
}

#[test]
fn assumption_vouching_is_part_of_the_key() {
    // Same proof, two contexts sharing one memo: only the context that
    // vouches the assumption may hit.
    let [alice, _, carol, _] = &keys()[..] else { unreachable!() };
    let stmt = deleg(carol, alice, false);
    let proof = Proof::Assumption { stmt: stmt.clone(), authority: "mac-session".into() };

    let memo = Arc::new(ChainMemo::new(64));
    let mut vouching = VerifyCtx::at(Time(10)).with_chain_memo(memo.clone());
    vouching.assume(&stmt);
    let silent = VerifyCtx::at(Time(10)).with_chain_memo(memo.clone());

    assert!(vouching.verify_cached(&proof).is_ok());
    assert!(vouching.verify_cached(&proof).is_ok());
    assert_eq!(memo.stats().hits, 1);
    assert!(silent.verify_cached(&proof).is_err(), "unvouched context must not hit");
    assert_eq!(memo.stats().hits, 1);
}
