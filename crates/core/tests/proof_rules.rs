//! Tests for every inference rule of the proof engine, including a faithful
//! reconstruction of the paper's Figure 1 structured proof.

use snowflake_core::*;
use snowflake_crypto::{DetRng, Group, HashAlg, KeyPair};
use snowflake_sexpr::Sexp;
use snowflake_tags::Tag;

fn rng(seed: &str) -> impl FnMut(&mut [u8]) {
    let mut r = DetRng::new(seed.as_bytes());
    move |b: &mut [u8]| r.fill(b)
}

fn kp(r: &mut impl FnMut(&mut [u8])) -> KeyPair {
    KeyPair::generate(Group::test512(), r)
}

fn tag(src: &str) -> Tag {
    Tag::parse(&Sexp::parse(src.as_bytes()).unwrap()).unwrap()
}

fn grant(
    from: &KeyPair,
    to: &KeyPair,
    t: &str,
    delegable: bool,
    r: &mut impl FnMut(&mut [u8]),
) -> Proof {
    let d = Delegation {
        subject: Principal::key(&to.public),
        issuer: Principal::key(&from.public),
        tag: tag(t),
        validity: Validity::always(),
        delegable,
    };
    Proof::signed_cert(Certificate::issue(from, d, r))
}

#[test]
fn transitivity_chains_and_narrows() {
    let mut r = rng("chain");
    let (alice, bob, carol) = (kp(&mut r), kp(&mut r), kp(&mut r));
    // Alice ⇒ grants Bob (web), delegable; Bob grants Carol (web (method GET)).
    let a_to_b = grant(&alice, &bob, "(web)", true, &mut r);
    let b_to_c = grant(&bob, &carol, "(web (method GET))", false, &mut r);
    // carol ⇒ bob ⇒ alice: left is the subject-side proof.
    let chain = b_to_c.then(a_to_b);
    let ctx = VerifyCtx::at(Time(100));
    chain.verify(&ctx).unwrap();

    let c = chain.conclusion();
    assert_eq!(c.subject, Principal::key(&carol.public));
    assert_eq!(c.issuer, Principal::key(&alice.public));
    // The composed tag is the intersection.
    assert!(c
        .tag
        .permits(&tag("(web (method GET) (resourcePath \"/x\"))")));
    assert!(!c.tag.permits(&tag("(web (method POST))")));
    assert!(!c.delegable, "non-delegable link poisons the chain");
}

#[test]
fn transitivity_requires_delegable_tail() {
    let mut r = rng("nodelegate");
    let (alice, bob, carol) = (kp(&mut r), kp(&mut r), kp(&mut r));
    // Alice grants Bob WITHOUT the propagate bit.
    let a_to_b = grant(&alice, &bob, "(web)", false, &mut r);
    let b_to_c = grant(&bob, &carol, "(web)", true, &mut r);
    let chain = b_to_c.then(a_to_b);
    let err = chain.verify(&VerifyCtx::at(Time(0))).unwrap_err();
    assert!(matches!(err, ProofError::BadInference(_)), "{err}");
}

#[test]
fn transitivity_rejects_principal_gap() {
    let mut r = rng("gap");
    let (alice, bob, carol, dave) = (kp(&mut r), kp(&mut r), kp(&mut r), kp(&mut r));
    let a_to_b = grant(&alice, &bob, "(web)", true, &mut r);
    // Proof about dave ⇒ carol cannot chain onto bob ⇒ alice.
    let c_to_d = grant(&carol, &dave, "(web)", true, &mut r);
    let broken = c_to_d.then(a_to_b);
    assert!(broken.verify(&VerifyCtx::at(Time(0))).is_err());
}

#[test]
fn transitivity_rejects_disjoint_tags() {
    let mut r = rng("disjoint");
    let (alice, bob, carol) = (kp(&mut r), kp(&mut r), kp(&mut r));
    let a_to_b = grant(&alice, &bob, "(web (method GET))", true, &mut r);
    let b_to_c = grant(&bob, &carol, "(db (op select))", true, &mut r);
    let chain = b_to_c.then(a_to_b);
    assert!(chain.verify(&VerifyCtx::at(Time(0))).is_err());
}

#[test]
fn weakening_restricts_but_never_escalates() {
    let mut r = rng("weaken");
    let (alice, bob) = (kp(&mut r), kp(&mut r));
    let full = grant(&alice, &bob, "(web)", true, &mut r);
    let weak_concl = Delegation {
        subject: Principal::key(&bob.public),
        issuer: Principal::key(&alice.public),
        tag: tag("(web (method GET))"),
        validity: Validity::until(Time(500)),
        delegable: false,
    };
    let weak = Proof::Weaken {
        inner: Box::new(full.clone()),
        conclusion: weak_concl.clone(),
    };
    weak.verify(&VerifyCtx::at(Time(100))).unwrap();

    // Escalating the tag is rejected.
    let escalated = Proof::Weaken {
        inner: Box::new(grant(&alice, &bob, "(web (method GET))", true, &mut r)),
        conclusion: Delegation {
            tag: tag("(web)"),
            ..weak_concl.clone()
        },
    };
    assert!(escalated.verify(&VerifyCtx::at(Time(100))).is_err());

    // Changing principals is rejected.
    let swapped = Proof::Weaken {
        inner: Box::new(full),
        conclusion: Delegation {
            subject: Principal::key(&alice.public),
            ..weak_concl
        },
    };
    assert!(swapped.verify(&VerifyCtx::at(Time(100))).is_err());
}

#[test]
fn quoting_monotonicity_both_sides() {
    let mut r = rng("quote");
    let (alice, bob) = (kp(&mut r), kp(&mut r));
    let gateway = Principal::Local {
        broker: HashVal::of(b"host"),
        id: "gateway".into(),
    };
    let b_to_a = grant(&alice, &bob, "(db)", true, &mut r);

    // Quotee side: G|Bob ⇒ G|Alice.
    let q = Proof::QuoteQuotee {
        inner: Box::new(b_to_a.clone()),
        quoter: gateway.clone(),
    };
    q.verify(&VerifyCtx::at(Time(0))).unwrap();
    let c = q.conclusion();
    assert_eq!(
        c.subject,
        Principal::quoting(gateway.clone(), Principal::key(&bob.public))
    );
    assert_eq!(
        c.issuer,
        Principal::quoting(gateway.clone(), Principal::key(&alice.public))
    );

    // Quoter side: Bob|G ⇒ Alice|G.
    let q2 = Proof::QuoteQuoter {
        inner: Box::new(b_to_a),
        quotee: gateway.clone(),
    };
    q2.verify(&VerifyCtx::at(Time(0))).unwrap();
    let c2 = q2.conclusion();
    assert_eq!(
        c2.subject,
        Principal::quoting(Principal::key(&bob.public), gateway.clone())
    );
    assert_eq!(
        c2.issuer,
        Principal::quoting(Principal::key(&alice.public), gateway)
    );
}

#[test]
fn conjunction_intro_and_projection() {
    let mut r = rng("conj");
    let (alice, fs, client) = (kp(&mut r), kp(&mut r), kp(&mut r));
    // The §2.3 disk-block scenario: client ⇒ Alice and client ⇒ FS give
    // client ⇒ Alice ∧ FS.
    let to_alice = grant(&alice, &client, "(disk)", true, &mut r);
    let to_fs = grant(&fs, &client, "(disk (op read))", true, &mut r);
    let conj = Proof::ConjIntro(vec![to_alice, to_fs]);
    conj.verify(&VerifyCtx::at(Time(0))).unwrap();
    let c = conj.conclusion();
    assert_eq!(
        c.issuer,
        Principal::conjunction(vec![
            Principal::key(&alice.public),
            Principal::key(&fs.public)
        ])
    );
    // Tag is the intersection of both grants.
    assert!(c.tag.permits(&tag("(disk (op read))")));
    assert!(!c.tag.permits(&tag("(disk (op write))")));

    // Projection axiom: Alice∧FS ⇒ Alice.
    let conj_p = Principal::conjunction(vec![
        Principal::key(&alice.public),
        Principal::key(&fs.public),
    ]);
    let proj = Proof::ConjProj {
        conjunction: conj_p.clone(),
        index: 0,
    };
    proj.verify(&VerifyCtx::at(Time(0))).unwrap();
    let pc = proj.conclusion();
    assert_eq!(pc.subject, conj_p);
    // Out-of-range projection fails.
    let bad = Proof::ConjProj {
        conjunction: conj_p,
        index: 9,
    };
    assert!(bad.verify(&VerifyCtx::at(Time(0))).is_err());
}

#[test]
fn conjunction_intro_requires_common_subject() {
    let mut r = rng("conj2");
    let (alice, fs, c1, c2) = (kp(&mut r), kp(&mut r), kp(&mut r), kp(&mut r));
    let p1 = grant(&alice, &c1, "(disk)", true, &mut r);
    let p2 = grant(&fs, &c2, "(disk)", true, &mut r);
    let conj = Proof::ConjIntro(vec![p1, p2]);
    assert!(conj.verify(&VerifyCtx::at(Time(0))).is_err());
}

#[test]
fn threshold_k_of_n() {
    let mut r = rng("threshold");
    let (s1, s2, s3, client) = (kp(&mut r), kp(&mut r), kp(&mut r), kp(&mut r));
    let threshold = Principal::Threshold {
        k: 2,
        subjects: vec![
            Principal::key(&s1.public),
            Principal::key(&s2.public),
            Principal::key(&s3.public),
        ],
    };
    let p1 = grant(&s1, &client, "(vault)", true, &mut r);
    let p2 = grant(&s2, &client, "(vault)", true, &mut r);

    let ok = Proof::ThresholdIntro {
        threshold: threshold.clone(),
        proofs: vec![(0, p1.clone()), (1, p2.clone())],
    };
    ok.verify(&VerifyCtx::at(Time(0))).unwrap();
    assert_eq!(ok.conclusion().issuer, threshold);

    // Only one distinct subject: fails.
    let dup = Proof::ThresholdIntro {
        threshold: threshold.clone(),
        proofs: vec![(0, p1.clone()), (0, p1.clone())],
    };
    assert!(dup.verify(&VerifyCtx::at(Time(0))).is_err());

    // Proof targets the wrong subject slot: fails.
    let misplaced = Proof::ThresholdIntro {
        threshold,
        proofs: vec![(1, p1), (0, p2)],
    };
    assert!(misplaced.verify(&VerifyCtx::at(Time(0))).is_err());
}

/// The paper's Figure 1: a structured proof that document D is the object
/// client C associates with the name N.
///
/// ```text
/// transitivity
/// ├─ transitivity
/// │  ├─ signed-certificate  H_D ⇒ K_S
/// │  └─ signed-certificate  K_S ⇒ H_{K_C}·N
/// └─ name-monotonicity      H_{K_C}·N ⇒ K_C·N
///    └─ hash-identity       H_{K_C} ⇒ K_C
/// ```
#[test]
fn figure1_structured_proof() {
    let mut r = rng("figure1");
    let server = kp(&mut r); // K_S
    let client = kp(&mut r); // K_C
    let document = b"the content of document D";
    let h_d = Principal::message(document); // H_D

    // signed-certificate: H_D ⇒ K_S (the server vouches for the document).
    let cert1 = Certificate::issue(
        &server,
        Delegation {
            subject: h_d.clone(),
            issuer: Principal::key(&server.public),
            tag: Tag::Star,
            // The short-lived statement the paper mentions.
            validity: Validity::until(Time(1_000)),
            delegable: true,
        },
        &mut r,
    );

    // signed-certificate: K_S ⇒ H_{K_C}·N (the client's name cert, issued
    // under the hash of the client's key).
    let hkc = Principal::key_hash(&client.public);
    let name_n = Principal::name(hkc.clone(), "N");
    let cert2 = Certificate::issue(
        &client,
        Delegation {
            subject: Principal::key(&server.public),
            issuer: name_n.clone(),
            tag: Tag::Star,
            validity: Validity::always(),
            delegable: true,
        },
        &mut r,
    );

    // hash-identity: H_{K_C} ⇒ K_C, then name-monotonicity lifts it to
    // H_{K_C}·N ⇒ K_C·N.
    let hash_ident = Proof::HashIdent {
        key: Box::new(client.public.clone()),
        alg: HashAlg::Sha256,
        hash_to_key: true,
    };
    let name_mono = Proof::NameMono {
        inner: Box::new(hash_ident),
        name: "N".into(),
    };

    // Assemble exactly the Figure 1 tree.
    let ks_to_name = Proof::signed_cert(cert2).then(name_mono);
    let full = Proof::signed_cert(cert1).then(ks_to_name.clone());

    let ctx = VerifyCtx::at(Time(500));
    full.verify(&ctx).unwrap();
    let c = full.conclusion();
    assert_eq!(c.subject, h_d);
    assert_eq!(
        c.issuer,
        Principal::name(Principal::key(&client.public), "N")
    );

    // The topmost statement expires with the short-lived H_D ⇒ K_S…
    assert!(!c.validity.contains(Time(2_000)));
    let expired_ctx = VerifyCtx::at(Time(2_000));
    assert!(full
        .authorizes(&c.subject, &c.issuer, &Tag::Star, &expired_ctx)
        .is_err());

    // …but the still-useful lemma K_S ⇒ K_C·N can be extracted and reused.
    let lemma = ks_to_name;
    lemma.verify(&expired_ctx).unwrap();
    let lc = lemma.conclusion();
    assert_eq!(lc.subject, Principal::key(&server.public));
    assert_eq!(
        lc.issuer,
        Principal::name(Principal::key(&client.public), "N")
    );
    assert!(lc.validity.contains(Time(2_000)));

    // The lemma also appears in the full proof's lemma enumeration.
    let lemmas = full.lemmas();
    assert!(lemmas.iter().any(|l| l.conclusion() == lc));
    assert_eq!(full.size(), 6, "Figure 1 has six proof nodes");
}

#[test]
fn expiry_is_part_of_the_restriction() {
    let mut r = rng("expiry");
    let (alice, bob) = (kp(&mut r), kp(&mut r));
    let d = Delegation {
        subject: Principal::key(&bob.public),
        issuer: Principal::key(&alice.public),
        tag: tag("(web)"),
        validity: Validity::between(Time(100), Time(200)),
        delegable: false,
    };
    let proof = Proof::signed_cert(Certificate::issue(&alice, d, &mut r));
    let subject = Principal::key(&bob.public);
    let issuer = Principal::key(&alice.public);
    let req = tag("(web (method GET))");

    // Valid in-window, rejected outside — with no re-verification needed:
    // matching disregards expired conclusions.
    assert!(proof
        .authorizes(&subject, &issuer, &req, &VerifyCtx::at(Time(150)))
        .is_ok());
    assert!(proof
        .authorizes(&subject, &issuer, &req, &VerifyCtx::at(Time(50)))
        .is_err());
    assert!(proof
        .authorizes(&subject, &issuer, &req, &VerifyCtx::at(Time(250)))
        .is_err());
}

#[test]
fn authorizes_checks_speaker_issuer_and_tag() {
    let mut r = rng("authz");
    let (alice, bob, eve) = (kp(&mut r), kp(&mut r), kp(&mut r));
    let proof = grant(&alice, &bob, "(web (method GET))", false, &mut r);
    let ctx = VerifyCtx::at(Time(0));
    let bob_p = Principal::key(&bob.public);
    let alice_p = Principal::key(&alice.public);

    assert!(proof
        .authorizes(&bob_p, &alice_p, &tag("(web (method GET))"), &ctx)
        .is_ok());
    // Wrong speaker.
    assert!(proof
        .authorizes(
            &Principal::key(&eve.public),
            &alice_p,
            &tag("(web (method GET))"),
            &ctx
        )
        .is_err());
    // Wrong issuer.
    assert!(proof
        .authorizes(
            &bob_p,
            &Principal::key(&eve.public),
            &tag("(web (method GET))"),
            &ctx
        )
        .is_err());
    // Request outside the restriction.
    assert!(proof
        .authorizes(&bob_p, &alice_p, &tag("(web (method DELETE))"), &ctx)
        .is_err());
}

#[test]
fn assumptions_require_verifier_vouching() {
    let ch = Principal::Channel(ChannelId {
        kind: "ssh".into(),
        id: HashVal::of(b"sess"),
    });
    let key_p = Principal::message(b"peer-key-stand-in");
    let stmt = Delegation::axiom(ch, key_p);
    let proof = Proof::Assumption {
        stmt: stmt.clone(),
        authority: "ssh-channel".into(),
    };

    // Unvouched: rejected.
    assert!(matches!(
        proof.verify(&VerifyCtx::at(Time(0))),
        Err(ProofError::UntrustedAssumption(_))
    ));
    // Vouched by the verifier's own channel machinery: accepted.
    let mut ctx = VerifyCtx::at(Time(0));
    ctx.assume(&stmt);
    proof.verify(&ctx).unwrap();
    // The audit trail names the vouching mechanism.
    assert!(proof.audit_trail().contains("ssh-channel"));
}

#[test]
fn proof_sexp_roundtrip_all_rules() {
    let mut r = rng("roundtrip");
    let (alice, bob) = (kp(&mut r), kp(&mut r));
    let base = grant(&alice, &bob, "(web)", true, &mut r);
    let gateway = Principal::Local {
        broker: HashVal::of(b"b"),
        id: "gw".into(),
    };
    let conj = Principal::conjunction(vec![Principal::message(b"x"), Principal::message(b"y")]);
    let threshold = Principal::Threshold {
        k: 1,
        subjects: vec![Principal::key(&alice.public)],
    };

    let samples: Vec<Proof> = vec![
        base.clone(),
        Proof::Assumption {
            stmt: Delegation::axiom(Principal::message(b"m"), Principal::message(b"k")),
            authority: "local-broker".into(),
        },
        Proof::Reflex(Principal::message(b"self")),
        base.clone()
            .then(grant(&bob, &alice, "(web)", true, &mut r)),
        Proof::Weaken {
            inner: Box::new(base.clone()),
            conclusion: Delegation {
                subject: Principal::key(&bob.public),
                issuer: Principal::key(&alice.public),
                tag: tag("(web (method GET))"),
                validity: Validity::always(),
                delegable: false,
            },
        },
        Proof::QuoteQuotee {
            inner: Box::new(base.clone()),
            quoter: gateway.clone(),
        },
        Proof::QuoteQuoter {
            inner: Box::new(base.clone()),
            quotee: gateway,
        },
        Proof::ConjIntro(vec![base.clone(), base.clone()]),
        Proof::ConjProj {
            conjunction: conj,
            index: 1,
        },
        Proof::ThresholdIntro {
            threshold,
            proofs: vec![(0, grant(&alice, &bob, "(x)", true, &mut r))],
        },
        Proof::NameMono {
            inner: Box::new(base.clone()),
            name: "mail".into(),
        },
        Proof::HashIdent {
            key: Box::new(alice.public.clone()),
            alg: HashAlg::Sha256,
            hash_to_key: true,
        },
        Proof::HashIdent {
            key: Box::new(alice.public.clone()),
            alg: HashAlg::Md5,
            hash_to_key: false,
        },
    ];

    for p in samples {
        let e = p.to_sexp();
        let back = Proof::from_sexp(&e).unwrap_or_else(|err| panic!("{p:?}: {err}"));
        assert_eq!(back, p);
        // Conclusions survive the round trip.
        assert_eq!(back.conclusion(), p.conclusion());
        // And the transport encoding (HTTP header form) as well.
        let transported = Sexp::parse(e.transport().as_bytes()).unwrap();
        assert_eq!(Proof::from_sexp(&transported).unwrap(), p);
    }
}

#[test]
fn knowledge_of_proof_bestows_nothing() {
    // "While they prove that a given principal has authority, knowledge of
    // the proof by an adversary does not bestow authority on the adversary."
    let mut r = rng("adversary");
    let (alice, bob, eve) = (kp(&mut r), kp(&mut r), kp(&mut r));
    let proof = grant(&alice, &bob, "(web)", false, &mut r);
    let ctx = VerifyCtx::at(Time(0));

    // Eve holds the proof bytes; replaying them names Bob, not Eve.
    let stolen = Proof::from_sexp(&proof.to_sexp()).unwrap();
    assert!(stolen
        .authorizes(
            &Principal::key(&eve.public),
            &Principal::key(&alice.public),
            &tag("(web)"),
            &ctx
        )
        .is_err());

    // Eve cannot rewrite the subject — with only her own key, the best she
    // can mint is a statement about *Eve's* authority space.
    let replacement = Certificate::issue(
        &eve,
        Delegation {
            subject: Principal::key(&eve.public),
            issuer: Principal::key(&eve.public),
            tag: tag("(web)"),
            validity: Validity::always(),
            delegable: false,
        },
        &mut r,
    );
    let forged = Proof::from_sexp(&replacement.to_sexp()).unwrap();
    assert!(forged
        .authorizes(
            &Principal::key(&eve.public),
            &Principal::key(&alice.public),
            &tag("(web)"),
            &ctx
        )
        .is_err());
}

#[test]
fn revocation_crl_flow() {
    let mut r = rng("crl-flow");
    let (alice, bob, validator) = (kp(&mut r), kp(&mut r), kp(&mut r));
    let d = Delegation {
        subject: Principal::key(&bob.public),
        issuer: Principal::key(&alice.public),
        tag: tag("(web)"),
        validity: Validity::always(),
        delegable: false,
    };
    let cert = Certificate::issue_with_revocation(
        &alice,
        d,
        Some(RevocationPolicy::Crl {
            validator: validator.public.hash(),
        }),
        &mut r,
    );
    let cert_hash = cert.hash();
    let proof = Proof::signed_cert(cert);

    // No CRL installed: cannot verify.
    let ctx = VerifyCtx::at(Time(100));
    assert!(matches!(proof.verify(&ctx), Err(ProofError::Revoked(_))));

    // Clean CRL: verifies.
    let mut ctx_ok = VerifyCtx::at(Time(100));
    ctx_ok.install_crl(Crl::issue(
        &validator,
        vec![],
        Validity::until(Time(1_000)),
        &mut r,
    ));
    proof.verify(&ctx_ok).unwrap();

    // CRL listing the cert: revoked.
    let mut ctx_revoked = VerifyCtx::at(Time(100));
    ctx_revoked.install_crl(Crl::issue(
        &validator,
        vec![cert_hash],
        Validity::until(Time(1_000)),
        &mut r,
    ));
    assert!(matches!(
        proof.verify(&ctx_revoked),
        Err(ProofError::Revoked(_))
    ));

    // Stale CRL: not acceptable.
    let mut ctx_stale = VerifyCtx::at(Time(5_000));
    ctx_stale.install_crl(Crl::issue(
        &validator,
        vec![],
        Validity::until(Time(1_000)),
        &mut r,
    ));
    assert!(matches!(
        proof.verify(&ctx_stale),
        Err(ProofError::Revoked(_))
    ));
}

#[test]
fn revocation_revalidation_flow() {
    let mut r = rng("reval-flow");
    let (alice, bob, validator) = (kp(&mut r), kp(&mut r), kp(&mut r));
    let d = Delegation {
        subject: Principal::key(&bob.public),
        issuer: Principal::key(&alice.public),
        tag: tag("(web)"),
        validity: Validity::always(),
        delegable: false,
    };
    let cert = Certificate::issue_with_revocation(
        &alice,
        d,
        Some(RevocationPolicy::Revalidate {
            validator: validator.public.hash(),
        }),
        &mut r,
    );
    let cert_hash = cert.hash();
    let proof = Proof::signed_cert(cert);

    // Without a fresh revalidation: rejected.
    assert!(proof.verify(&VerifyCtx::at(Time(100))).is_err());

    // With a fresh one-time revalidation: accepted.
    let mut ctx = VerifyCtx::at(Time(100));
    ctx.install_revalidation(Revalidation::issue(
        &validator,
        cert_hash,
        Validity::between(Time(90), Time(110)),
        &mut r,
    ));
    proof.verify(&ctx).unwrap();

    // Once the revalidation window passes, the proof no longer verifies.
    let mut ctx_late = VerifyCtx::at(Time(200));
    ctx_late.install_revalidation(Revalidation::issue(
        &validator,
        proof.hash(), // wrong target hash on purpose? No — reuse correct one below
        Validity::between(Time(90), Time(110)),
        &mut r,
    ));
    assert!(proof.verify(&ctx_late).is_err());
}

#[test]
fn audit_trail_shows_end_to_end_chain() {
    let mut r = rng("audit");
    let (alice, bob, carol) = (kp(&mut r), kp(&mut r), kp(&mut r));
    let chain =
        grant(&bob, &carol, "(web)", true, &mut r).then(grant(&alice, &bob, "(web)", true, &mut r));
    let trail = chain.audit_trail();
    assert!(trail.contains("transitivity"));
    assert_eq!(trail.matches("signed-certificate").count(), 2);
}

#[test]
fn reflexivity_holds() {
    let p = Principal::message(b"self");
    let proof = Proof::Reflex(p.clone());
    proof.verify(&VerifyCtx::at(Time(0))).unwrap();
    let c = proof.conclusion();
    assert_eq!(c.subject, p);
    assert_eq!(c.issuer, p);
}
