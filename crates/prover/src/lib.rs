//! The Prover: proof collection, caching, and construction (paper §4.4).
//!
//! "A `Prover` object helps Snowflake applications collect and create
//! proofs.  It has three tasks: it collects delegations, caches proofs, and
//! constructs new delegations."
//!
//! The Prover maintains a graph whose nodes are principals and whose edges
//! are proofs of delegation from one principal to the next (Figure 2).  It:
//!
//! * **digests** incoming multi-step proofs into their component lemmas so
//!   each becomes an independent edge;
//! * adds **shortcut edges** for every derived proof it computes, forming a
//!   cache that "eliminates most deep traversals of the graph";
//! * searches **breadth-first**, working backwards from the required issuer
//!   (the paper's example: from node `S` back to the final node `A`);
//! * stores **closures** for controlled principals (objects that know the
//!   private key), letting it *complete* new proofs by delegating restricted
//!   authority from a controlled principal to a new subject — this is how a
//!   client delegates its authority to a channel key (`K_CH ⇒ A` in the
//!   paper's example).
//!
//! The Prover is deliberately simple and incomplete: the general
//! access-control decision problem with conjunction and quoting is
//! exponential (Abadi et al.), but "in the common case … proofs are built
//! incrementally with graph traversals of constant depth."

#![deny(missing_docs)]

use snowflake_core::sync::{LockExt, RwLockExt};
use snowflake_core::{Certificate, Delegation, Principal, Proof, Time, Validity};
use snowflake_crypto::KeyPair;
use snowflake_tags::Tag;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// An object that can exercise a controlled principal's authority.
pub enum Closure {
    /// Holds a private key; can sign new delegations from principals the
    /// key controls.
    SigningKey(Box<KeyPair>),
}

/// One edge of the delegation graph: a proof that `subject ⇒ issuer`.
#[derive(Clone)]
struct Edge {
    subject: Principal,
    /// The proof's conclusion, cached so searches never re-derive it from
    /// the (possibly deep) proof tree.
    conclusion: Delegation,
    proof: Arc<Proof>,
    /// Hashes of the signed certificates the proof depends on — its
    /// revocation provenance.  [`Prover::invalidate_cert`] removes exactly
    /// the edges whose provenance names a revoked certificate.
    certs: Arc<[snowflake_core::HashVal]>,
    /// Shortcut edges are derived proofs cached after a successful search
    /// (the dotted edges of Figure 2).
    shortcut: bool,
}

/// Statistics about the Prover's graph, exposed for benchmarks and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProverStats {
    /// Number of non-shortcut edges.
    pub base_edges: usize,
    /// Number of cached shortcut edges.
    pub shortcut_edges: usize,
    /// Number of controlled (final) principals.
    pub finals: usize,
    /// BFS node expansions performed since creation.
    pub expansions: u64,
    /// Edges removed by targeted certificate invalidation since creation.
    pub invalidated_edges: u64,
    /// `invalidate_cert` calls since creation.
    pub cert_invalidations: u64,
}

/// Collects delegations, caches proofs, and constructs new delegations.
///
/// All methods take `&self`; internal state is lock-protected so a single
/// Prover can serve every connection of an application, as in the paper's
/// client (one Prover per `SSHContext` scope).
///
/// The graph is laid out read-mostly: searches take only the read side of
/// the lock (many may run concurrently), adjacency lists are shared
/// `Arc<[Edge]>` slices so expanding a node never clones edge vectors, and
/// the expansion counter is an atomic bumped outside any lock.  Writers
/// (`add_proof`, `delegate`, shortcut caching) copy-on-write the touched
/// adjacency slices.
pub struct Prover {
    inner: RwLock<Inner>,
    /// BFS node expansions, counted outside the graph lock so read-only
    /// searches never serialize on a writer.
    expansions: AtomicU64,
    /// Edges removed by `invalidate_cert` (cumulative).
    invalidated_edges: AtomicU64,
    /// `invalidate_cert` calls (cumulative).
    cert_invalidations: AtomicU64,
    rng: std::sync::Mutex<Box<dyn FnMut(&mut [u8]) + Send>>,
}

struct Inner {
    /// Edges indexed by *issuer*: `edges[Y]` holds proofs `X ⇒ Y`.
    edges: HashMap<Principal, Arc<[Edge]>>,
    /// Reverse index by *subject*: `by_subject[X]` holds the same proofs
    /// `X ⇒ Y`, so single-hop and cached-shortcut queries resolve by
    /// looking at the subject's few outgoing edges instead of scanning a
    /// potentially huge in-edge list on the issuer.
    by_subject: HashMap<Principal, Arc<[Edge]>>,
    /// Closures for controlled (final) principals, keyed by the principals
    /// they control.
    closures: HashMap<Principal, Arc<Closure>>,
    /// Dedup of inserted proofs by hash.
    known: HashSet<snowflake_core::HashVal>,
}

/// Maximum BFS depth; the paper expects constant-depth traversals in
/// practice, so a small bound guards against adversarial graphs.
const MAX_DEPTH: usize = 24;

/// Maximum widening revisits tracked per node: bounds the search at
/// O(nodes × cap) queue entries even when an adversarial graph offers
/// pairwise-incomparable tags on parallel edges.
const MAX_NODE_FRONTIERS: usize = 8;

impl Prover {
    /// Creates an empty Prover drawing entropy from the OS.
    pub fn new() -> Prover {
        Self::with_rng(Box::new(snowflake_crypto::rand_bytes))
    }

    /// Creates a Prover with a caller-supplied entropy source (tests and
    /// benchmarks use a deterministic one).
    pub fn with_rng(rng: Box<dyn FnMut(&mut [u8]) + Send>) -> Prover {
        Prover {
            inner: RwLock::new(Inner {
                edges: HashMap::new(),
                by_subject: HashMap::new(),
                closures: HashMap::new(),
                known: HashSet::new(),
            }),
            expansions: AtomicU64::new(0),
            invalidated_edges: AtomicU64::new(0),
            cert_invalidations: AtomicU64::new(0),
            rng: std::sync::Mutex::new(rng),
        }
    }

    /// Registers a controlled key: its principals become *final* nodes.
    ///
    /// Both the key principal and its hash principal gain closures, and
    /// hash-identity edges (`H(K) ⇔ K`) are added so searches can bridge the
    /// two representations.
    pub fn add_key(&self, keypair: KeyPair) {
        let key_p = Principal::key(&keypair.public);
        let hash_p = Principal::key_hash(&keypair.public);
        let closure = Arc::new(Closure::SigningKey(Box::new(keypair.clone())));
        {
            let mut inner = self.inner.pwrite();
            inner.closures.insert(key_p, Arc::clone(&closure));
            inner.closures.insert(hash_p, closure);
        }
        // H(K) ⇒ K and K ⇒ H(K) let proofs phrased either way connect.
        for hash_to_key in [true, false] {
            self.add_proof(Proof::HashIdent {
                key: Box::new(keypair.public.clone()),
                alg: snowflake_core::HashAlg::Sha256,
                hash_to_key,
            });
        }
    }

    /// Digests a proof into the graph (paper: "the Prover 'digests' the
    /// proof into its component parts for storage in the graph").
    ///
    /// Every lemma becomes its own edge, and the overall conclusion becomes
    /// an edge too, so partial chains remain reusable after the whole proof
    /// expires.
    pub fn add_proof(&self, proof: Proof) {
        // Collect owned lemma clones first to avoid holding borrows.
        let lemmas: Vec<Proof> = proof.lemmas().into_iter().cloned().collect();
        let mut inner = self.inner.pwrite();
        for lemma in lemmas {
            inner.insert_edge(lemma, false);
        }
    }

    /// Is this principal controlled (final) — can the Prover make it say
    /// things?
    pub fn is_final(&self, p: &Principal) -> bool {
        self.inner.pread().closures.contains_key(p)
    }

    /// Issues a fresh signed delegation `subject =tag⇒ controlled`, where
    /// `controlled` must be a principal this Prover holds a closure for.
    ///
    /// Returns `None` when `controlled` is not final.
    pub fn delegate(
        &self,
        subject: &Principal,
        controlled: &Principal,
        tag: Tag,
        validity: Validity,
        delegable: bool,
    ) -> Option<Proof> {
        let closure = self.inner.pread().closures.get(controlled).cloned()?;
        let Closure::SigningKey(kp) = closure.as_ref();
        let delegation = Delegation {
            subject: subject.clone(),
            issuer: controlled.clone(),
            tag,
            validity,
            delegable,
        };
        let cert = {
            let mut rng = self.rng.plock();
            Certificate::issue(kp, delegation, &mut **rng)
        };
        let proof = Proof::signed_cert(cert);
        self.add_proof(proof.clone());
        Some(proof)
    }

    /// Finds an existing proof that `subject =T⇒ issuer` with `T` covering
    /// `tag`, valid at `now`, by BFS backwards from `issuer`.
    ///
    /// Single-hop answers — including previously cached shortcuts — resolve
    /// through the subject-indexed reverse map without BFS or any write
    /// lock.  On a successful multi-hop search the derived proof is cached
    /// as a shortcut edge.
    pub fn find_proof(
        &self,
        subject: &Principal,
        issuer: &Principal,
        tag: &Tag,
        now: Time,
    ) -> Option<Proof> {
        self.search(subject, issuer, tag, now, false)
    }

    /// Like [`Prover::find_proof`] but only returns chains whose conclusion
    /// keeps the propagate bit — what `complete_proof` needs before it can
    /// extend a chain with a fresh hop.  A plain `find_proof` may answer
    /// with a non-delegable proof even when a delegable alternative exists
    /// (both are correct answers to "does subject speak for issuer?"), so
    /// extension sites must ask for delegability explicitly.
    pub fn find_delegable_proof(
        &self,
        subject: &Principal,
        issuer: &Principal,
        tag: &Tag,
        now: Time,
    ) -> Option<Proof> {
        self.search(subject, issuer, tag, now, true)
    }

    fn search(
        &self,
        subject: &Principal,
        issuer: &Principal,
        tag: &Tag,
        now: Time,
        need_delegable: bool,
    ) -> Option<Proof> {
        if subject == issuer {
            return Some(Proof::Reflex(subject.clone()));
        }
        // Fast path: an existing direct edge (base or shortcut) answers by
        // scanning only the subject's outgoing edges.
        if let Some(found) = self.direct_edge(subject, issuer, tag, now, need_delegable) {
            return Some(found);
        }
        // The invalidation epoch brackets the (read-locked) search: if an
        // `invalidate_cert` completes between the BFS and the caching
        // write below, the found chain may be built on a just-revoked
        // certificate, and caching it would resurrect state the
        // invalidation purged — so the shortcut is skipped (the caller
        // still gets the proof; its verification is the caller's check).
        let epoch = self.cert_invalidations.load(Ordering::Acquire);
        let found = self.bfs(subject, issuer, tag, now, need_delegable)?;
        // Cache multi-step results as shortcut edges (Figure 2's dotted
        // lines): "these shortcuts form a cache that eliminates most deep
        // traversals of the graph."
        if found.size() > 1 {
            let mut inner = self.inner.pwrite();
            if self.cert_invalidations.load(Ordering::Acquire) == epoch {
                inner.insert_edge(found.clone(), true);
            }
        }
        Some(found)
    }

    /// Looks for one existing edge `subject ⇒ issuer` covering `tag` at
    /// `now`, using the reverse map (read lock only).
    ///
    /// With `need_delegable`, non-delegable edges do not answer at all
    /// (the BFS may still find a delegable multi-hop chain).
    fn direct_edge(
        &self,
        subject: &Principal,
        issuer: &Principal,
        tag: &Tag,
        now: Time,
        need_delegable: bool,
    ) -> Option<Proof> {
        let inner = self.inner.pread();
        let out = inner.by_subject.get(subject)?;
        out.iter()
            .find(|e| {
                e.conclusion.issuer == *issuer
                    && (e.conclusion.delegable || !need_delegable)
                    && e.conclusion.validity.contains(now)
                    && e.conclusion.tag.implies(tag)
            })
            .map(|e| (*e.proof).clone())
    }

    /// Completes a proof that `new_subject =tag⇒ issuer` by finding a chain
    /// from a controlled principal to `issuer` and then delegating from the
    /// controlled principal to `new_subject` with the closure.
    ///
    /// This is the paper's channel-authorization step: the Prover "simply
    /// issues a delegation `K_CH ⇒ A` to complete the proof."  Channel and
    /// request-hash subjects need `delegable: false` (they speak directly);
    /// sharing with another *user* needs `delegable: true` so the recipient
    /// can extend the authority to their own channels and requests.
    pub fn complete_proof(
        &self,
        new_subject: &Principal,
        issuer: &Principal,
        tag: &Tag,
        validity: Validity,
        now: Time,
    ) -> Option<Proof> {
        self.complete_proof_delegable(new_subject, issuer, tag, validity, now, false)
    }

    /// Like [`Prover::complete_proof`] with an explicit propagate bit on the
    /// freshly issued hop.
    pub fn complete_proof_delegable(
        &self,
        new_subject: &Principal,
        issuer: &Principal,
        tag: &Tag,
        validity: Validity,
        now: Time,
        delegable: bool,
    ) -> Option<Proof> {
        // Fast path: an existing proof already covers the new subject.
        let existing = if delegable {
            self.find_delegable_proof(new_subject, issuer, tag, now)
        } else {
            self.find_proof(new_subject, issuer, tag, now)
        };
        if let Some(p) = existing {
            return Some(p);
        }
        let finals: Vec<Principal> = self.inner.pread().closures.keys().cloned().collect();
        for final_p in finals {
            // The controlled principal itself is the issuer…
            if &final_p == issuer {
                return self.delegate(new_subject, &final_p, tag.clone(), validity, delegable);
            }
            // …or a delegable chain from the controlled principal to the
            // issuer exists (only delegable chains may grow a fresh hop).
            if let Some(chain) = self.find_delegable_proof(&final_p, issuer, tag, now) {
                let hop = self.delegate(new_subject, &final_p, tag.clone(), validity, delegable)?;
                let full = hop.then(chain);
                self.add_proof(full.clone());
                return Some(full);
            }
        }
        None
    }

    /// Current graph statistics.
    pub fn stats(&self) -> ProverStats {
        let inner = self.inner.pread();
        let mut s = ProverStats {
            finals: inner.closures.len(),
            expansions: self.expansions.load(Ordering::Relaxed),
            invalidated_edges: self.invalidated_edges.load(Ordering::Relaxed),
            cert_invalidations: self.cert_invalidations.load(Ordering::Relaxed),
            ..Default::default()
        };
        for edges in inner.edges.values() {
            for e in edges.iter() {
                if e.shortcut {
                    s.shortcut_edges += 1;
                } else {
                    s.base_edges += 1;
                }
            }
        }
        s
    }

    /// Registers a scrape-time callback exposing [`ProverStats`] under
    /// `sf_prover_*` — the same graph and atomics
    /// [`stats`](Self::stats) reads (collector id `"prover"`).
    pub fn register_metrics(self: &Arc<Self>, registry: &snowflake_metrics::Registry) {
        use snowflake_metrics::Sample;
        registry.set_help(
            "sf_prover_shortcut_edges",
            "Cached derived proofs (the dotted edges of the paper's Figure 2)",
        );
        let prover = Arc::downgrade(self);
        registry.register_collector(
            "prover",
            Arc::new(move |out: &mut Vec<Sample>| {
                let Some(prover) = prover.upgrade() else { return };
                let s = prover.stats();
                out.push(Sample::gauge("sf_prover_base_edges", &[], s.base_edges as f64));
                out.push(Sample::gauge(
                    "sf_prover_shortcut_edges",
                    &[],
                    s.shortcut_edges as f64,
                ));
                out.push(Sample::gauge("sf_prover_finals", &[], s.finals as f64));
                out.push(Sample::counter("sf_prover_expansions_total", &[], s.expansions));
                out.push(Sample::counter(
                    "sf_prover_invalidated_edges_total",
                    &[],
                    s.invalidated_edges,
                ));
                out.push(Sample::counter(
                    "sf_prover_cert_invalidations_total",
                    &[],
                    s.cert_invalidations,
                ));
            }),
        );
    }

    /// Removes every edge — base or shortcut — whose proof depends on the
    /// certificate with this hash, returning how many distinct edges were
    /// dropped.
    ///
    /// This is the targeted form of cache invalidation a revocation push
    /// needs: one revoked certificate evicts exactly the chains built from
    /// it, leaving every other warm shortcut intact (no
    /// [`Prover::clear_shortcuts`] flush).  Removed proofs are forgotten
    /// from the dedup set, so a *re-issued* certificate can be learned
    /// again later.
    pub fn invalidate_cert(&self, cert_hash: &snowflake_core::HashVal) -> usize {
        let inner = &mut *self.inner.pwrite();
        let mut removed_hashes = HashSet::new();
        for map in [&mut inner.edges, &mut inner.by_subject] {
            map.retain(|_, edges| {
                if edges.iter().any(|e| e.certs.contains(cert_hash)) {
                    let kept: Vec<Edge> = edges
                        .iter()
                        .filter(|e| {
                            if e.certs.contains(cert_hash) {
                                removed_hashes.insert(e.proof.hash());
                                false
                            } else {
                                true
                            }
                        })
                        .cloned()
                        .collect();
                    if kept.is_empty() {
                        return false;
                    }
                    *edges = kept.into();
                }
                true
            });
        }
        for h in &removed_hashes {
            inner.known.remove(h);
        }
        let n = removed_hashes.len();
        self.invalidated_edges.fetch_add(n as u64, Ordering::Relaxed);
        // Bumped while the write lock is still held: `search` re-reads the
        // epoch under the same lock before caching a shortcut, so any
        // invalidation that purged the graph is visible there.
        self.cert_invalidations.fetch_add(1, Ordering::Release);
        n
    }

    /// Removes all shortcut edges (used by benchmarks to compare cold/warm
    /// search costs).
    pub fn clear_shortcuts(&self) {
        let inner = &mut *self.inner.pwrite();
        let mut removed_hashes = Vec::new();
        for map in [&mut inner.edges, &mut inner.by_subject] {
            map.retain(|_, edges| {
                if edges.iter().any(|e| e.shortcut) {
                    let kept: Vec<Edge> = edges
                        .iter()
                        .filter(|e| {
                            if e.shortcut {
                                removed_hashes.push(e.proof.hash());
                                false
                            } else {
                                true
                            }
                        })
                        .cloned()
                        .collect();
                    if kept.is_empty() {
                        return false;
                    }
                    *edges = kept.into();
                }
                true
            });
        }
        // Both maps hold every edge, so each shortcut hash appears twice.
        // Allow the shortcuts to be re-learned later.
        for h in removed_hashes {
            inner.known.remove(&h);
        }
    }

    fn bfs(
        &self,
        subject: &Principal,
        issuer: &Principal,
        tag: &Tag,
        now: Time,
        need_delegable: bool,
    ) -> Option<Proof> {
        let inner = self.inner.pread();
        // Queue holds (node, path so far as proof + incrementally composed
        // conclusion, depth).  Composing conclusions incrementally keeps
        // each expansion O(edge) instead of O(path length).
        struct Path {
            proof: Proof,
            concl: Delegation,
        }
        // The authority a path carries at a node: what matters for any
        // further extension through that node.  Only delegable paths are
        // ever enqueued, so the propagate bit needs no tracking.
        struct Reached {
            tag: Tag,
            validity: Validity,
        }
        impl Reached {
            /// Is this at least as wide as the other on both axes — tag
            /// and validity window?
            fn covers(&self, tag: &Tag, validity: &Validity) -> bool {
                validity.within(&self.validity) && self.tag.implies(tag)
            }
        }
        let mut queue: VecDeque<(Principal, Option<Path>, usize)> = VecDeque::new();
        let mut reached: HashMap<Principal, Vec<Reached>> = HashMap::new();
        queue.push_back((issuer.clone(), None, 0));

        while let Some((node, so_far, depth)) = queue.pop_front() {
            if depth >= MAX_DEPTH {
                continue;
            }
            self.expansions.fetch_add(1, Ordering::Relaxed);
            let Some(edges) = inner.edges.get(&node) else {
                continue;
            };
            for edge in edges.iter() {
                // Compose edge (X ⇒ node) with so_far (node ⇒ issuer).
                let candidate = match &so_far {
                    None => Path {
                        proof: (*edge.proof).clone(),
                        concl: edge.conclusion.clone(),
                    },
                    Some(tail) => {
                        // Only delegable tails may be extended.
                        if !tail.concl.delegable {
                            continue;
                        }
                        let Some(t) = edge.conclusion.tag.intersect(&tail.concl.tag) else {
                            continue;
                        };
                        let Some(v) = edge.conclusion.validity.intersect(&tail.concl.validity)
                        else {
                            continue;
                        };
                        Path {
                            proof: (*edge.proof).clone().then(tail.proof.clone()),
                            concl: Delegation {
                                subject: edge.conclusion.subject.clone(),
                                issuer: tail.concl.issuer.clone(),
                                tag: t,
                                validity: v,
                                delegable: edge.conclusion.delegable && tail.concl.delegable,
                            },
                        }
                    }
                };
                if candidate.concl.tag.intersect(tag).is_none() {
                    continue;
                }
                if !candidate.concl.validity.contains(now) {
                    continue;
                }
                if &edge.subject == subject {
                    if candidate.concl.tag.implies(tag)
                        && (candidate.concl.delegable || !need_delegable)
                    {
                        return Some(candidate.proof);
                    }
                    continue;
                }
                // Re-entering the start node can only form a cycle.
                if &edge.subject == issuer {
                    continue;
                }
                // A non-delegable path can never be extended another hop
                // (the tail-delegability check above), so enqueueing it is
                // dead weight — and letting it hold a frontier slot could
                // cap out a live delegable path.
                if !candidate.concl.delegable {
                    continue;
                }
                // A new path through an already-reached node is redundant
                // only when some earlier path covers it on every axis; a
                // narrow first arrival must not shadow a wider alternate,
                // so non-dominated revisits re-enqueue.
                let new = Reached {
                    tag: candidate.concl.tag.clone(),
                    validity: candidate.concl.validity,
                };
                let seen = reached.entry(edge.subject.clone()).or_default();
                if seen.iter().any(|r| r.covers(&new.tag, &new.validity)) {
                    continue;
                }
                // The new path may in turn cover earlier, narrower
                // arrivals; release their slots before the cap check so a
                // wide path always gets through.
                seen.retain(|r| !new.covers(&r.tag, &r.validity));
                // Cap the frontiers tracked per node: pairwise-incomparable
                // tags between the same principals could otherwise enumerate
                // exponentially many paths.  The prover is deliberately
                // incomplete (§4.4); past the cap we keep the first arrivals.
                if seen.len() >= MAX_NODE_FRONTIERS {
                    continue;
                }
                seen.push(new);
                queue.push_back((edge.subject.clone(), Some(candidate), depth + 1));
            }
        }
        None
    }
}

impl Default for Prover {
    fn default() -> Self {
        Self::new()
    }
}

impl Inner {
    fn insert_edge(&mut self, proof: Proof, shortcut: bool) {
        let hash = proof.hash();
        if !self.known.insert(hash) {
            return;
        }
        let concl = proof.conclusion();
        // Reflexive edges add nothing to search.
        if concl.subject == concl.issuer {
            return;
        }
        let edge = Edge {
            subject: concl.subject.clone(),
            conclusion: concl.clone(),
            certs: proof.cert_hashes().into(),
            proof: Arc::new(proof),
            shortcut,
        };
        push_edge(&mut self.by_subject, concl.subject.clone(), edge.clone());
        push_edge(&mut self.edges, concl.issuer, edge);
    }
}

/// Copy-on-write append to an adjacency slice: readers keep iterating their
/// old `Arc` while the map swaps in the extended one.
fn push_edge(map: &mut HashMap<Principal, Arc<[Edge]>>, key: Principal, edge: Edge) {
    match map.entry(key) {
        std::collections::hash_map::Entry::Occupied(mut o) => {
            let old = o.get();
            let mut v = Vec::with_capacity(old.len() + 1);
            v.extend(old.iter().cloned());
            v.push(edge);
            *o.get_mut() = v.into();
        }
        std::collections::hash_map::Entry::Vacant(v) => {
            v.insert(vec![edge].into());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowflake_core::VerifyCtx;
    use snowflake_crypto::{DetRng, Group};
    use snowflake_sexpr::Sexp;

    fn det_prover(seed: &str) -> Prover {
        let mut rng = DetRng::new(seed.as_bytes());
        Prover::with_rng(Box::new(move |b| rng.fill(b)))
    }

    fn kp(seed: &str) -> KeyPair {
        let mut rng = DetRng::new(seed.as_bytes());
        KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
    }

    fn tag(src: &str) -> Tag {
        Tag::parse(&Sexp::parse(src.as_bytes()).unwrap()).unwrap()
    }

    /// Builds a chain k0 → k1 → … → kn of delegable grants (k_{i+1} speaks
    /// for k_i) and returns the prover plus the keys.
    fn chain_prover(n: usize) -> (Prover, Vec<KeyPair>) {
        let prover = det_prover("chain");
        let keys: Vec<KeyPair> = (0..=n).map(|i| kp(&format!("k{i}"))).collect();
        let mut rng = DetRng::new(b"issue");
        for i in 0..n {
            let d = Delegation {
                subject: Principal::key(&keys[i + 1].public),
                issuer: Principal::key(&keys[i].public),
                tag: tag("(web)"),
                validity: Validity::always(),
                delegable: true,
            };
            let cert = Certificate::issue(&keys[i], d, &mut |b| rng.fill(b));
            prover.add_proof(Proof::signed_cert(cert));
        }
        (prover, keys)
    }

    #[test]
    fn finds_single_edge() {
        let (prover, keys) = chain_prover(1);
        let p = prover
            .find_proof(
                &Principal::key(&keys[1].public),
                &Principal::key(&keys[0].public),
                &tag("(web)"),
                Time(0),
            )
            .expect("single edge");
        p.verify(&VerifyCtx::at(Time(0))).unwrap();
    }

    #[test]
    fn finds_deep_chain_and_caches_shortcut() {
        let (prover, keys) = chain_prover(6);
        let subject = Principal::key(&keys[6].public);
        let issuer = Principal::key(&keys[0].public);
        let before = prover.stats();
        let p = prover
            .find_proof(&subject, &issuer, &tag("(web)"), Time(0))
            .expect("chain");
        p.verify(&VerifyCtx::at(Time(0))).unwrap();
        assert_eq!(p.conclusion().subject, subject);
        assert_eq!(p.conclusion().issuer, issuer);

        let after = prover.stats();
        assert!(
            after.shortcut_edges > before.shortcut_edges,
            "shortcut cached"
        );

        // Second query must be answerable in a couple of expansions via the
        // shortcut edge.
        let exp_before = prover.stats().expansions;
        let p2 = prover
            .find_proof(&subject, &issuer, &tag("(web)"), Time(0))
            .expect("cached");
        p2.verify(&VerifyCtx::at(Time(0))).unwrap();
        let exp_after = prover.stats().expansions;
        assert!(
            exp_after - exp_before <= 2,
            "shortcut should answer in ≤2 expansions, took {}",
            exp_after - exp_before
        );
    }

    #[test]
    fn respects_tag_restriction() {
        let (prover, keys) = chain_prover(2);
        let subject = Principal::key(&keys[2].public);
        let issuer = Principal::key(&keys[0].public);
        // The chain only grants (web); a (db) proof must not be found.
        assert!(prover
            .find_proof(&subject, &issuer, &tag("(db)"), Time(0))
            .is_none());
        // A narrower request is fine.
        assert!(prover
            .find_proof(&subject, &issuer, &tag("(web (method GET))"), Time(0))
            .is_some());
    }

    #[test]
    fn respects_expiry() {
        let prover = det_prover("expiry");
        let a = kp("a");
        let b = kp("b");
        let mut rng = DetRng::new(b"i");
        let d = Delegation {
            subject: Principal::key(&b.public),
            issuer: Principal::key(&a.public),
            tag: tag("(web)"),
            validity: Validity::until(Time(100)),
            delegable: false,
        };
        prover.add_proof(Proof::signed_cert(Certificate::issue(&a, d, &mut |x| {
            rng.fill(x)
        })));
        let subject = Principal::key(&b.public);
        let issuer = Principal::key(&a.public);
        assert!(prover
            .find_proof(&subject, &issuer, &tag("(web)"), Time(50))
            .is_some());
        assert!(prover
            .find_proof(&subject, &issuer, &tag("(web)"), Time(150))
            .is_none());
    }

    #[test]
    fn respects_delegable_bit() {
        let prover = det_prover("nodeleg");
        let (a, b, c) = (kp("a"), kp("b"), kp("c"));
        let mut rng = DetRng::new(b"i");
        // a grants b WITHOUT propagate; b grants c.
        let d1 = Delegation {
            subject: Principal::key(&b.public),
            issuer: Principal::key(&a.public),
            tag: tag("(web)"),
            validity: Validity::always(),
            delegable: false,
        };
        let d2 = Delegation {
            subject: Principal::key(&c.public),
            issuer: Principal::key(&b.public),
            tag: tag("(web)"),
            validity: Validity::always(),
            delegable: true,
        };
        prover.add_proof(Proof::signed_cert(Certificate::issue(&a, d1, &mut |x| {
            rng.fill(x)
        })));
        prover.add_proof(Proof::signed_cert(Certificate::issue(&b, d2, &mut |x| {
            rng.fill(x)
        })));
        // c ⇒ a would need to extend through the non-delegable a→b edge.
        assert!(prover
            .find_proof(
                &Principal::key(&c.public),
                &Principal::key(&a.public),
                &tag("(web)"),
                Time(0)
            )
            .is_none());
        // b ⇒ a itself is fine (the non-delegable edge is subject-side).
        assert!(prover
            .find_proof(
                &Principal::key(&b.public),
                &Principal::key(&a.public),
                &tag("(web)"),
                Time(0)
            )
            .is_some());
    }

    #[test]
    fn digests_multi_step_proofs_into_lemmas() {
        let (prover, keys) = chain_prover(3);
        let subject = Principal::key(&keys[3].public);
        let issuer = Principal::key(&keys[0].public);
        let full = prover
            .find_proof(&subject, &issuer, &tag("(web)"), Time(0))
            .unwrap();

        // A fresh prover digesting only the composite proof can still answer
        // queries about the interior lemmas.
        let fresh = det_prover("fresh");
        fresh.add_proof(full);
        let mid = fresh
            .find_proof(
                &Principal::key(&keys[2].public),
                &Principal::key(&keys[0].public),
                &tag("(web)"),
                Time(0),
            )
            .expect("interior lemma available after digestion");
        mid.verify(&VerifyCtx::at(Time(0))).unwrap();
    }

    #[test]
    fn complete_proof_delegates_from_final_principal() {
        // The Figure 2 scenario: prove K_CH ⇒ S where the graph holds
        // A ⇒ … ⇒ S and A is final.
        let prover = det_prover("complete");
        let (alice, server) = (kp("alice"), kp("server"));
        let mut rng = DetRng::new(b"i");
        let d = Delegation {
            subject: Principal::key(&alice.public),
            issuer: Principal::key(&server.public),
            tag: tag("(web)"),
            validity: Validity::always(),
            delegable: true,
        };
        prover.add_proof(Proof::signed_cert(Certificate::issue(
            &server,
            d,
            &mut |x| rng.fill(x),
        )));
        prover.add_key(alice.clone());

        let channel = Principal::Channel(snowflake_core::ChannelId {
            kind: "ssh".into(),
            id: snowflake_core::HashVal::of(b"session-1"),
        });
        let proof = prover
            .complete_proof(
                &channel,
                &Principal::key(&server.public),
                &tag("(web)"),
                Validity::until(Time(1_000)),
                Time(0),
            )
            .expect("completed proof");
        proof.verify(&VerifyCtx::at(Time(0))).unwrap();
        let c = proof.conclusion();
        assert_eq!(c.subject, channel);
        assert_eq!(c.issuer, Principal::key(&server.public));
    }

    #[test]
    fn complete_proof_when_controlled_is_issuer() {
        let prover = det_prover("self-issue");
        let alice = kp("alice");
        prover.add_key(alice.clone());
        let bob = Principal::message(b"bob-stand-in");
        let proof = prover
            .complete_proof(
                &bob,
                &Principal::key(&alice.public),
                &tag("(web)"),
                Validity::always(),
                Time(0),
            )
            .expect("direct delegation");
        proof.verify(&VerifyCtx::at(Time(0))).unwrap();
        assert_eq!(proof.conclusion().subject, bob);
    }

    #[test]
    fn complete_proof_fails_without_authority() {
        let prover = det_prover("noauth");
        let alice = kp("alice");
        let stranger = kp("stranger");
        prover.add_key(alice);
        // No chain from alice to stranger exists.
        assert!(prover
            .complete_proof(
                &Principal::message(b"x"),
                &Principal::key(&stranger.public),
                &tag("(web)"),
                Validity::always(),
                Time(0),
            )
            .is_none());
    }

    #[test]
    fn quoting_gateway_completion() {
        // §6.3: the client proxy delegates to "gateway quoting client".
        let prover = det_prover("gateway");
        let (client, server) = (kp("client"), kp("server"));
        let mut rng = DetRng::new(b"i");
        // Server granted the client (db) access, delegable.
        let d = Delegation {
            subject: Principal::key(&client.public),
            issuer: Principal::key(&server.public),
            tag: tag("(db)"),
            validity: Validity::always(),
            delegable: true,
        };
        prover.add_proof(Proof::signed_cert(Certificate::issue(
            &server,
            d,
            &mut |x| rng.fill(x),
        )));
        prover.add_key(client.clone());

        let gateway = Principal::Local {
            broker: snowflake_core::HashVal::of(b"host"),
            id: "gateway".into(),
        };
        let g_quoting_c = Principal::quoting(gateway, Principal::key(&client.public));
        let proof = prover
            .complete_proof(
                &g_quoting_c,
                &Principal::key(&server.public),
                &tag("(db (op select))"),
                Validity::until(Time(500)),
                Time(0),
            )
            .expect("G|C ⇒ S");
        proof.verify(&VerifyCtx::at(Time(0))).unwrap();
        let c = proof.conclusion();
        assert_eq!(c.subject, g_quoting_c);
        assert_eq!(c.issuer, Principal::key(&server.public));
        // The proof's audit trail shows the gateway's involvement.
        assert!(proof.audit_trail().contains("gateway"));
    }

    #[test]
    fn hash_and_key_principals_bridge() {
        // A delegation phrased to H(K_bob) must be found when searching for
        // Key(K_bob) as the subject, via the hash-identity edges.
        let prover = det_prover("bridge");
        let (alice, bob) = (kp("alice"), kp("bob"));
        let mut rng = DetRng::new(b"i");
        let d = Delegation {
            subject: Principal::key_hash(&bob.public),
            issuer: Principal::key(&alice.public),
            tag: tag("(web)"),
            validity: Validity::always(),
            delegable: true,
        };
        prover.add_proof(Proof::signed_cert(Certificate::issue(
            &alice,
            d,
            &mut |x| rng.fill(x),
        )));
        prover.add_key(bob.clone());

        let p = prover
            .find_proof(
                &Principal::key(&bob.public),
                &Principal::key(&alice.public),
                &tag("(web)"),
                Time(0),
            )
            .expect("bridged via hash identity");
        p.verify(&VerifyCtx::at(Time(0))).unwrap();
    }

    #[test]
    fn reflexive_query() {
        let prover = det_prover("reflex");
        let p = Principal::message(b"me");
        let proof = prover.find_proof(&p, &p, &tag("(x)"), Time(0)).unwrap();
        assert!(matches!(proof, Proof::Reflex(_)));
    }

    #[test]
    fn no_proof_in_empty_graph() {
        let prover = det_prover("empty");
        assert!(prover
            .find_proof(
                &Principal::message(b"a"),
                &Principal::message(b"b"),
                &Tag::Star,
                Time(0)
            )
            .is_none());
    }

    #[test]
    fn cycle_does_not_hang() {
        let prover = det_prover("cycle");
        let (a, b) = (kp("a"), kp("b"));
        let mut rng = DetRng::new(b"i");
        for (from, to) in [(&a, &b), (&b, &a)] {
            let d = Delegation {
                subject: Principal::key(&to.public),
                issuer: Principal::key(&from.public),
                tag: tag("(web)"),
                validity: Validity::always(),
                delegable: true,
            };
            prover.add_proof(Proof::signed_cert(Certificate::issue(from, d, &mut |x| {
                rng.fill(x)
            })));
        }
        // A query for an unrelated subject terminates despite the cycle.
        assert!(prover
            .find_proof(
                &Principal::message(b"nobody"),
                &Principal::key(&a.public),
                &tag("(web)"),
                Time(0)
            )
            .is_none());
    }

    /// Regression: BFS used to mark a node visited on the *first* path
    /// reaching it, so a narrow-tag path through `M` shadowed the wider
    /// alternate path through the same node and the search wrongly failed.
    #[test]
    fn narrow_tag_path_does_not_shadow_wider_path() {
        let prover = det_prover("two-path");
        let (s, m, a) = (kp("s"), kp("m"), kp("a"));
        let mut rng = DetRng::new(b"i");
        let mut grant = |from: &KeyPair, to: &KeyPair, t: Tag| {
            let d = Delegation {
                subject: Principal::key(&to.public),
                issuer: Principal::key(&from.public),
                tag: t,
                validity: Validity::always(),
                delegable: true,
            };
            prover.add_proof(Proof::signed_cert(Certificate::issue(from, d, &mut |x| {
                rng.fill(x)
            })));
        };
        // Narrow M ⇒ S first (GET only), wide M ⇒ S second: the narrow
        // edge reaches M first in BFS order.
        grant(&s, &m, tag("(web (method GET))"));
        grant(&s, &m, tag("(web)"));
        grant(&m, &a, tag("(web)"));

        let p = prover
            .find_proof(
                &Principal::key(&a.public),
                &Principal::key(&s.public),
                &tag("(web)"),
                Time(0),
            )
            .expect("the wide path must be found despite the narrow one arriving first");
        p.verify(&VerifyCtx::at(Time(0))).unwrap();
        assert!(p.conclusion().tag.implies(&tag("(web)")));
    }

    /// The same shadowing through the propagate bit: a non-delegable path
    /// reaching `M` first must not suppress the delegable alternate, which
    /// is the only one that can be extended another hop.
    #[test]
    fn non_delegable_path_does_not_shadow_delegable_path() {
        let prover = det_prover("two-path-delegable");
        let (s, m, a) = (kp("s"), kp("m"), kp("a"));
        let mut rng = DetRng::new(b"i");
        let mut grant = |from: &KeyPair, to: &KeyPair, delegable: bool| {
            let d = Delegation {
                subject: Principal::key(&to.public),
                issuer: Principal::key(&from.public),
                tag: tag("(web)"),
                validity: Validity::always(),
                delegable,
            };
            prover.add_proof(Proof::signed_cert(Certificate::issue(from, d, &mut |x| {
                rng.fill(x)
            })));
        };
        grant(&s, &m, false);
        grant(&s, &m, true);
        grant(&m, &a, true);

        let p = prover
            .find_proof(
                &Principal::key(&a.public),
                &Principal::key(&s.public),
                &tag("(web)"),
                Time(0),
            )
            .expect("the delegable path must be found despite the dead-end arriving first");
        p.verify(&VerifyCtx::at(Time(0))).unwrap();
    }

    /// When a subject holds both a non-delegable and a delegable edge to
    /// the issuer, the delegable-required search must return the delegable
    /// one so callers that need to extend the chain (e.g.
    /// `complete_proof`'s finals loop) are not wrongly denied.
    #[test]
    fn delegable_direct_edge_preferred_over_non_delegable() {
        let prover = det_prover("direct-delegable");
        let (s, f) = (kp("s"), kp("f"));
        let mut rng = DetRng::new(b"i");
        for delegable in [false, true] {
            let d = Delegation {
                subject: Principal::key(&f.public),
                issuer: Principal::key(&s.public),
                tag: tag("(web)"),
                validity: Validity::always(),
                delegable,
            };
            prover.add_proof(Proof::signed_cert(Certificate::issue(&s, d, &mut |x| {
                rng.fill(x)
            })));
        }
        // The plain search finds *an* edge; the delegable-required search
        // must find the delegable sibling specifically.
        assert!(prover
            .find_proof(
                &Principal::key(&f.public),
                &Principal::key(&s.public),
                &tag("(web)"),
                Time(0),
            )
            .is_some());
        let p = prover
            .find_delegable_proof(
                &Principal::key(&f.public),
                &Principal::key(&s.public),
                &tag("(web)"),
                Time(0),
            )
            .expect("edge exists");
        assert!(
            p.conclusion().delegable,
            "the delegable edge must win over the non-delegable one"
        );

        // And the consequence: completing a proof through the controlled
        // principal F works, which requires the delegable F ⇒ S chain.
        prover.add_key(f.clone());
        let channel = Principal::message(b"channel");
        let completed = prover
            .complete_proof(
                &channel,
                &Principal::key(&s.public),
                &tag("(web)"),
                Validity::always(),
                Time(0),
            )
            .expect("delegable chain must be usable for completion");
        completed.verify(&VerifyCtx::at(Time(0))).unwrap();
    }

    /// A non-delegable *direct* edge must not shadow a delegable
    /// *multi-hop* chain when the caller needs to extend the chain: the
    /// fast path may answer plain queries with the direct edge, but the
    /// delegable search must keep looking and completion must succeed.
    #[test]
    fn non_delegable_direct_edge_does_not_shadow_delegable_chain() {
        let prover = det_prover("direct-vs-chain");
        let (s, m, f) = (kp("s"), kp("m"), kp("f"));
        let mut rng = DetRng::new(b"i");
        let mut grant = |from: &KeyPair, to: &KeyPair, delegable: bool| {
            let d = Delegation {
                subject: Principal::key(&to.public),
                issuer: Principal::key(&from.public),
                tag: tag("(web)"),
                validity: Validity::always(),
                delegable,
            };
            prover.add_proof(Proof::signed_cert(Certificate::issue(from, d, &mut |x| {
                rng.fill(x)
            })));
        };
        // Direct F ⇒ S without propagate; delegable chain F ⇒ M ⇒ S.
        grant(&s, &f, false);
        grant(&s, &m, true);
        grant(&m, &f, true);

        let (subject, issuer) = (Principal::key(&f.public), Principal::key(&s.public));
        let p = prover
            .find_delegable_proof(&subject, &issuer, &tag("(web)"), Time(0))
            .expect("the delegable chain must be found past the direct edge");
        assert!(p.conclusion().delegable);
        p.verify(&VerifyCtx::at(Time(0))).unwrap();

        prover.add_key(f.clone());
        let completed = prover
            .complete_proof(
                &Principal::message(b"channel"),
                &issuer,
                &tag("(web)"),
                Validity::always(),
                Time(0),
            )
            .expect("completion must extend the delegable chain");
        completed.verify(&VerifyCtx::at(Time(0))).unwrap();
    }

    /// A wide path arriving after the per-node frontier cap has filled
    /// with narrow incomparable paths must still get through: it covers
    /// (and evicts) the narrow arrivals rather than being dropped at the
    /// cap.
    #[test]
    fn wide_path_reclaims_capped_frontier_slots() {
        let prover = det_prover("cap-evict");
        let (s, m, a) = (kp("s"), kp("m"), kp("a"));
        let mut rng = DetRng::new(b"i");
        let mut grant = |from: &KeyPair, to: &KeyPair, t: Tag| {
            let d = Delegation {
                subject: Principal::key(&to.public),
                issuer: Principal::key(&from.public),
                tag: t,
                validity: Validity::always(),
                delegable: true,
            };
            prover.add_proof(Proof::signed_cert(Certificate::issue(from, d, &mut |x| {
                rng.fill(x)
            })));
        };
        // Fill M's frontier slots with MAX_NODE_FRONTIERS pairwise
        // incomparable narrow tags, then add the wide edge last.
        for method in ["A", "B", "C", "D", "E", "F", "G", "H"] {
            grant(&s, &m, tag(&format!("(web (method {method}))")));
        }
        grant(&s, &m, tag("(web)"));
        grant(&m, &a, tag("(web)"));

        let p = prover
            .find_proof(
                &Principal::key(&a.public),
                &Principal::key(&s.public),
                &tag("(web)"),
                Time(0),
            )
            .expect("the wide path must evict narrow frontier entries, not be capped out");
        p.verify(&VerifyCtx::at(Time(0))).unwrap();
    }

    /// An adversarial graph with parallel incomparable-tag edges at every
    /// hop must not blow the search up: the per-node frontier cap bounds
    /// it, and a query for an absent subject still terminates quickly.
    #[test]
    fn incomparable_parallel_edges_stay_bounded() {
        let prover = det_prover("parallel-edges");
        let keys: Vec<KeyPair> = (0..=10).map(|i| kp(&format!("p{i}"))).collect();
        let mut rng = DetRng::new(b"i");
        for i in 0..10 {
            for t in ["(web (method GET))", "(web (method PUT))", "(db)"] {
                let d = Delegation {
                    subject: Principal::key(&keys[i + 1].public),
                    issuer: Principal::key(&keys[i].public),
                    tag: tag(t),
                    validity: Validity::always(),
                    delegable: true,
                };
                prover.add_proof(Proof::signed_cert(Certificate::issue(
                    &keys[i],
                    d,
                    &mut |x| rng.fill(x),
                )));
            }
        }
        let before = prover.stats().expansions;
        assert!(prover
            .find_proof(
                &Principal::message(b"nobody"),
                &Principal::key(&keys[0].public),
                &tag("(web)"),
                Time(0),
            )
            .is_none());
        let spent = prover.stats().expansions - before;
        // 11 nodes × MAX_NODE_FRONTIERS is the worst case; far below the
        // 3^10 paths an uncapped widening search could enumerate.
        assert!(spent <= 11 * 8 + 1, "search expanded {spent} nodes");
    }

    /// Regression for blunt-flush invalidation: before
    /// `Prover::invalidate_cert`, reacting to one revoked certificate
    /// required `clear_shortcuts` (and that did not even touch base
    /// edges).  Targeted invalidation must (a) kill every chain built on
    /// the revoked certificate, including warm shortcuts, and (b) leave
    /// unrelated warm shortcuts answering without re-search.
    #[test]
    fn invalidate_cert_is_targeted() {
        let prover = det_prover("invalidate");
        let (s, a, b) = (kp("s"), kp("a"), kp("b"));
        let (x, y) = (kp("x"), kp("y"));
        let mut rng = DetRng::new(b"i");
        let mut issue = |from: &KeyPair, to: &KeyPair| {
            let d = Delegation {
                subject: Principal::key(&to.public),
                issuer: Principal::key(&from.public),
                tag: tag("(web)"),
                validity: Validity::always(),
                delegable: true,
            };
            Certificate::issue(from, d, &mut |buf| rng.fill(buf))
        };
        // Chain 1: B ⇒ A ⇒ S (the S→A cert will be revoked).
        let cert_sa = issue(&s, &a);
        let revoked_hash = cert_sa.hash();
        prover.add_proof(Proof::signed_cert(cert_sa));
        prover.add_proof(Proof::signed_cert(issue(&a, &b)));
        // Chain 2: Y ⇒ X ⇒ S, unrelated.
        prover.add_proof(Proof::signed_cert(issue(&s, &x)));
        prover.add_proof(Proof::signed_cert(issue(&x, &y)));

        let issuer = Principal::key(&s.public);
        // Warm both multi-hop chains so shortcut edges exist for each.
        assert!(prover
            .find_proof(&Principal::key(&b.public), &issuer, &tag("(web)"), Time(0))
            .is_some());
        assert!(prover
            .find_proof(&Principal::key(&y.public), &issuer, &tag("(web)"), Time(0))
            .is_some());
        assert_eq!(prover.stats().shortcut_edges, 2);

        // Revoke S→A: the base edge and the B ⇒ S shortcut derived from it
        // must go; nothing else.
        let removed = prover.invalidate_cert(&revoked_hash);
        assert_eq!(removed, 2, "base edge + derived shortcut");
        let stats = prover.stats();
        assert_eq!(stats.invalidated_edges, 2);
        assert_eq!(stats.cert_invalidations, 1);
        assert_eq!(stats.shortcut_edges, 1, "unrelated shortcut survives");

        // The revoked chain no longer answers…
        assert!(prover
            .find_proof(&Principal::key(&b.public), &issuer, &tag("(web)"), Time(0))
            .is_none());
        assert!(prover
            .find_proof(&Principal::key(&a.public), &issuer, &tag("(web)"), Time(0))
            .is_none());
        // …while the unrelated warm shortcut still answers in ≤2 expansions
        // — proof that no blunt `clear_shortcuts` flush was needed.
        let before = prover.stats().expansions;
        assert!(prover
            .find_proof(&Principal::key(&y.public), &issuer, &tag("(web)"), Time(0))
            .is_some());
        assert!(prover.stats().expansions - before <= 2, "warm path kept");

        // A re-issued (distinct) certificate for the same principals can be
        // learned after invalidation.
        let d = Delegation {
            subject: Principal::key(&a.public),
            issuer: issuer.clone(),
            tag: tag("(web)"),
            validity: Validity::until(Time(9_999)),
            delegable: true,
        };
        prover.add_proof(Proof::signed_cert(Certificate::issue(&s, d, &mut |buf| {
            rng.fill(buf)
        })));
        assert!(prover
            .find_proof(&Principal::key(&b.public), &issuer, &tag("(web)"), Time(0))
            .is_some());
    }

    #[test]
    fn stats_reflect_graph() {
        let (prover, _) = chain_prover(4);
        let s = prover.stats();
        assert_eq!(s.base_edges, 4);
        assert_eq!(s.shortcut_edges, 0);
        prover.clear_shortcuts();
        assert_eq!(prover.stats().shortcut_edges, 0);
    }
}
