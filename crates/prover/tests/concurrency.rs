//! Concurrency and equivalence properties of the read-mostly Prover graph:
//! many searches race writers without deadlock or wrong answers, and the
//! shortcut cache never changes what a query returns.

use proptest::prelude::*;
use snowflake_core::{Certificate, Delegation, Principal, Proof, Time, Validity, VerifyCtx};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_prover::Prover;
use snowflake_sexpr::Sexp;
use snowflake_tags::Tag;
use std::sync::{Arc, OnceLock};

/// Key generation dominates test time, so every test draws from one pool.
fn key(i: usize) -> &'static KeyPair {
    static POOL: OnceLock<Vec<KeyPair>> = OnceLock::new();
    &POOL.get_or_init(|| {
        (0..10)
            .map(|i| {
                let mut rng = DetRng::new(format!("pool-key-{i}").as_bytes());
                KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
            })
            .collect()
    })[i]
}

fn tag(src: &str) -> Tag {
    Tag::parse(&Sexp::parse(src.as_bytes()).unwrap()).unwrap()
}

/// A prover holding the delegable chain `key(n) ⇒ … ⇒ key(0)` over `(web)`.
fn chain_prover(n: usize) -> Prover {
    let mut prng = DetRng::new(b"chain-prover");
    let prover = Prover::with_rng(Box::new(move |b| prng.fill(b)));
    let mut rng = DetRng::new(b"chain-issue");
    for i in 0..n {
        let d = Delegation {
            subject: Principal::key(&key(i + 1).public),
            issuer: Principal::key(&key(i).public),
            tag: tag("(web)"),
            validity: Validity::always(),
            delegable: true,
        };
        prover.add_proof(Proof::signed_cert(Certificate::issue(key(i), d, &mut |b| {
            rng.fill(b)
        })));
    }
    prover
}

/// N searcher threads race a writer inserting fresh edges and a thread
/// repeatedly clearing the shortcut cache.  The chain answer must hold on
/// every query, and the whole thing must finish (no deadlock between the
/// read-side BFS and the copy-on-write inserts).
#[test]
fn searches_race_writers_without_deadlock() {
    const DEPTH: usize = 6;
    const READERS: usize = 4;
    const QUERIES: usize = 100;

    let prover = Arc::new(chain_prover(DEPTH));
    prover.add_key(key(9).clone());
    let subject = Principal::key(&key(DEPTH).public);
    let issuer = Principal::key(&key(0).public);

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let prover = Arc::clone(&prover);
            let subject = subject.clone();
            let issuer = issuer.clone();
            std::thread::spawn(move || {
                for q in 0..QUERIES {
                    let found = prover
                        .find_proof(&subject, &issuer, &tag("(web)"), Time(0))
                        .unwrap_or_else(|| panic!("reader {r} lost the chain at query {q}"));
                    assert_eq!(found.conclusion().subject, subject);
                    assert_eq!(found.conclusion().issuer, issuer);
                    // A subject with no chain stays unprovable.
                    assert!(prover
                        .find_proof(
                            &Principal::message(b"stranger"),
                            &issuer,
                            &tag("(web)"),
                            Time(0)
                        )
                        .is_none());
                }
            })
        })
        .collect();

    // Writer: keeps issuing fresh delegations from the controlled key so
    // the graph (and its copy-on-write adjacency slices) keeps changing.
    let writer = {
        let prover = Arc::clone(&prover);
        std::thread::spawn(move || {
            for i in 0..48u32 {
                let subject = Principal::message(format!("tenant-{i}").as_bytes());
                prover
                    .delegate(
                        &subject,
                        &Principal::key(&key(9).public),
                        tag("(web)"),
                        Validity::always(),
                        false,
                    )
                    .expect("controlled key can always delegate");
            }
        })
    };

    // Cache antagonist: forces cold BFS paths while readers run.
    let clearer = {
        let prover = Arc::clone(&prover);
        std::thread::spawn(move || {
            for _ in 0..64 {
                prover.clear_shortcuts();
                std::thread::yield_now();
            }
        })
    };

    for t in readers {
        t.join().unwrap();
    }
    writer.join().unwrap();
    clearer.join().unwrap();

    let stats = prover.stats();
    assert!(stats.base_edges >= DEPTH + 48, "writer edges landed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A shortcut-cached (warm) answer is equivalent to the cold-search
    /// answer: same found/not-found verdict for every endpoint pair and
    /// request tag, and warm proofs verify with matching conclusions.
    #[test]
    fn shortcut_cache_answers_equal_cold_answers(
        depth in 1usize..6,
        lo in 0usize..5,
        span in 1usize..5,
        which in 0usize..3,
    ) {
        let hi = (lo + span).min(depth);
        prop_assume!(lo < hi);
        let request = match which {
            0 => tag("(web)"),
            1 => tag("(web (method GET))"),
            _ => tag("(db)"),
        };
        let prover = chain_prover(depth);
        let subject = Principal::key(&key(hi).public);
        let issuer = Principal::key(&key(lo).public);

        prover.clear_shortcuts();
        let cold = prover.find_proof(&subject, &issuer, &request, Time(0));
        // The second query is answered from the shortcut cache when the
        // cold search composed one.
        let warm = prover.find_proof(&subject, &issuer, &request, Time(0));

        prop_assert_eq!(cold.is_some(), warm.is_some(), "cache changed the verdict");
        if let (Some(c), Some(w)) = (cold, warm) {
            prop_assert!(
                w.verify(&VerifyCtx::at(Time(0))).is_ok(),
                "warm proof failed verification"
            );
            prop_assert_eq!(c.conclusion().subject, w.conclusion().subject);
            prop_assert_eq!(c.conclusion().issuer, w.conclusion().issuer);
            prop_assert!(w.conclusion().tag.implies(&request));
        }
    }
}
