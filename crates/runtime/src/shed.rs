//! One shed ledger for the whole runtime.
//!
//! PR 4 established the invariant that every refused unit of work is
//! *counted*, not silently dropped.  The worker pool already counts its
//! own refusals (`RuntimeStats::shed`, backed by the bounded queue's drop
//! counter).  The reactor introduces refusals the pool never sees — a
//! parked-connection cap hit at accept time, a push sink stalled past its
//! buffer, an accept during drain — and those land here, keyed by the
//! surface that shed them.  `ServerRuntime::stats()` folds the ledger
//! into the same `shed` total the pool reports, so "one ledger" holds
//! from the operator's point of view.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counts work refused outside the worker pool, per surface.
#[derive(Default)]
pub struct ShedLedger {
    total: AtomicU64,
    by_surface: Mutex<BTreeMap<String, u64>>,
}

impl ShedLedger {
    /// A fresh, all-zero ledger.
    pub fn new() -> ShedLedger {
        ShedLedger::default()
    }

    /// Records one shed against `surface`.
    pub fn record(&self, surface: &str) {
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut map = self.by_surface.lock().expect("shed ledger poisoned");
        *map.entry(surface.to_owned()).or_insert(0) += 1;
    }

    /// Total sheds recorded across all surfaces.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Per-surface shed counts, sorted by surface name.
    pub fn by_surface(&self) -> Vec<(String, u64)> {
        let map = self.by_surface.lock().expect("shed ledger poisoned");
        map.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_surface_and_in_total() {
        let ledger = ShedLedger::new();
        ledger.record("http");
        ledger.record("http");
        ledger.record("revocation-push");
        assert_eq!(ledger.total(), 3);
        assert_eq!(
            ledger.by_surface(),
            vec![
                ("http".to_owned(), 2),
                ("revocation-push".to_owned(), 1)
            ]
        );
    }
}
