//! Fixed-size worker pools with explicit overload shedding.
//!
//! A [`WorkerPool`] owns N OS threads pulling jobs off one
//! [`BoundedQueue`].  Admission is non-blocking: when the queue is full
//! the submission is *shed* — counted, reported, and refused — instead of
//! queued forever.  The callers that front a wire protocol use
//! [`WorkerPool::try_permit`] to learn the verdict while they still hold
//! the connection, so they can answer 503/BUSY on it before hanging up.
//!
//! Shutdown is graceful by construction: [`WorkerPool::shutdown`] closes
//! the queue (new submissions refused), lets the workers drain every job
//! accepted before the close, and joins them.

use crate::queue::{BoundedQueue, QueueError};
use snowflake_core::sync::LockExt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A unit of pooled work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The pool's queue is at capacity: the caller should shed load
    /// (reply 503/BUSY) rather than wait.
    Busy,
    /// The pool is shutting down; no new work is admitted.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy => write!(f, "worker pool saturated"),
            SubmitError::ShuttingDown => write!(f, "worker pool shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Sizing for a [`WorkerPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Thread-name prefix (`<name>-worker-<i>`), visible in debuggers.
    pub name: String,
    /// Worker threads — the bound on concurrently running jobs.
    pub workers: usize,
    /// Queue capacity — the bound on accepted-but-unstarted jobs.
    pub queue_capacity: usize,
}

impl PoolConfig {
    /// A named pool with explicit sizing.
    pub fn new(name: &str, workers: usize, queue_capacity: usize) -> PoolConfig {
        PoolConfig {
            name: name.to_string(),
            workers: workers.max(1),
            queue_capacity: queue_capacity.max(1),
        }
    }
}

/// A snapshot of a pool's counters — every queue in the serving path has
/// a capacity and a measurable drop counter, and this is where both
/// surface.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Worker threads.
    pub workers: usize,
    /// Queue capacity.
    pub queue_capacity: usize,
    /// Jobs accepted.
    pub submitted: u64,
    /// Jobs finished (including ones that panicked).
    pub completed: u64,
    /// Submissions refused because the queue was full.
    pub shed: u64,
    /// Jobs accepted but not yet started.
    pub queue_depth: usize,
    /// Jobs currently running.
    pub in_flight: usize,
}

/// A fixed-size worker pool over a bounded queue.
pub struct WorkerPool {
    queue: Arc<BoundedQueue<Job>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    in_flight: Arc<AtomicUsize>,
    completed: Arc<AtomicU64>,
    worker_count: usize,
}

impl WorkerPool {
    /// Spawns the pool's worker threads.
    pub fn new(config: PoolConfig) -> Arc<WorkerPool> {
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let completed = Arc::new(AtomicU64::new(0));
        let workers = (0..config.workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let in_flight = Arc::clone(&in_flight);
                let completed = Arc::clone(&completed);
                std::thread::Builder::new()
                    .name(format!("{}-worker-{i}", config.name))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            in_flight.fetch_add(1, Ordering::SeqCst);
                            // A panicking job must not take its worker (or
                            // a shared server) down with it.
                            let _ = std::panic::catch_unwind(AssertUnwindSafe(job));
                            in_flight.fetch_sub(1, Ordering::SeqCst);
                            completed.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Arc::new(WorkerPool {
            queue,
            workers: Mutex::new(workers),
            in_flight,
            completed,
            worker_count: config.workers,
        })
    }

    /// Submits a job, shedding when the queue is full.  The job is
    /// dropped on refusal; callers holding a connection that must hear
    /// BUSY use [`WorkerPool::try_permit`] instead.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), SubmitError> {
        match self.queue.try_push(Box::new(job) as Job) {
            Ok(()) => Ok(()),
            Err((QueueError::Full, _)) => Err(SubmitError::Busy),
            Err((QueueError::Closed, _)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Reserves a job slot, deciding admission *before* the caller moves
    /// its connection into the job.  On `Err` the caller still owns the
    /// connection and can write 503/BUSY on it.
    pub fn try_permit(&self) -> Result<JobPermit<'_>, SubmitError> {
        match self.queue.reserve() {
            Ok(slot) => Ok(JobPermit { slot }),
            Err(QueueError::Full) => Err(SubmitError::Busy),
            Err(QueueError::Closed) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            workers: self.worker_count,
            queue_capacity: self.queue.capacity(),
            submitted: self.queue.pushed(),
            completed: self.completed.load(Ordering::SeqCst),
            shed: self.queue.dropped(),
            queue_depth: self.queue.len(),
            in_flight: self.in_flight.load(Ordering::SeqCst),
        }
    }

    /// Has [`WorkerPool::shutdown`] begun?  New submissions are refused
    /// with [`SubmitError::ShuttingDown`] from that point on.
    pub fn is_shutting_down(&self) -> bool {
        self.queue.is_closed()
    }

    /// Graceful shutdown: stop admitting, drain every accepted job, join
    /// the workers.  Idempotent: the first caller performs the join, later
    /// callers find nothing left to join and return at once.
    pub fn shutdown(&self) {
        self.queue.close();
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.plock());
        let me = std::thread::current().id();
        for handle in handles {
            // A pooled job can own the last Arc to its own pool (drain
            // jobs do), putting this shutdown on a worker thread via
            // Drop; joining ourselves would deadlock forever.  Dropping
            // the handle instead is safe: the queue is closed, so this
            // worker exits as soon as the current job (and Drop) return.
            if handle.thread().id() == me {
                continue;
            }
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Detached workers would outlive the pool's counters; drain them.
        self.shutdown();
    }
}

/// A reserved slot in a pool's queue (see [`WorkerPool::try_permit`]).
pub struct JobPermit<'a> {
    slot: crate::queue::Reservation<'a, Job>,
}

impl JobPermit<'_> {
    /// Redeems the permit, enqueueing the job in the promised slot.
    pub fn submit<F: FnOnce() + Send + 'static>(self, job: F) {
        self.slot.push(Box::new(job) as Job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Condvar;

    /// A reusable open/closed gate for holding workers mid-job.
    pub(crate) struct Gate {
        open: Mutex<bool>,
        cv: Condvar,
    }

    impl Gate {
        pub(crate) fn closed() -> Arc<Gate> {
            Arc::new(Gate {
                open: Mutex::new(false),
                cv: Condvar::new(),
            })
        }

        pub(crate) fn open(&self) {
            *self.open.plock() = true;
            self.cv.notify_all();
        }

        pub(crate) fn wait(&self) {
            let mut open = self.open.plock();
            while !*open {
                open = self
                    .cv
                    .wait(open)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }

    fn wait_until(deadline_ms: u64, mut cond: impl FnMut() -> bool) {
        let start = std::time::Instant::now();
        while !cond() {
            assert!(
                start.elapsed() < std::time::Duration::from_millis(deadline_ms),
                "condition not reached in time"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn jobs_run_and_counters_track() {
        let pool = WorkerPool::new(PoolConfig::new("t", 2, 8));
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..8 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        wait_until(5_000, || counter.load(Ordering::SeqCst) == 8);
        let stats = pool.stats();
        assert_eq!(stats.submitted, 8);
        wait_until(5_000, || pool.stats().completed == 8);
        assert_eq!(pool.stats().shed, 0);
    }

    #[test]
    fn saturated_pool_sheds_and_counts() {
        let pool = WorkerPool::new(PoolConfig::new("shed", 1, 1));
        let gate = Gate::closed();
        let g = Arc::clone(&gate);
        pool.submit(move || g.wait()).unwrap();
        // Wait for the worker to start the gated job, then fill the queue.
        wait_until(5_000, || pool.stats().in_flight == 1);
        let g = Arc::clone(&gate);
        pool.submit(move || g.wait()).unwrap();
        assert_eq!(pool.submit(|| {}), Err(SubmitError::Busy));
        assert!(matches!(pool.try_permit(), Err(SubmitError::Busy)));
        let stats = pool.stats();
        assert_eq!(stats.shed, 2);
        assert_eq!(stats.queue_depth, 1);
        gate.open();
        wait_until(5_000, || pool.stats().completed == 2);
    }

    #[test]
    fn shutdown_drains_accepted_work_and_refuses_new() {
        let pool = WorkerPool::new(PoolConfig::new("drain", 1, 4));
        let gate = Gate::closed();
        let done = Arc::new(AtomicU32::new(0));
        for _ in 0..3 {
            let (g, d) = (Arc::clone(&gate), Arc::clone(&done));
            pool.submit(move || {
                g.wait();
                d.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        let pool2 = Arc::clone(&pool);
        let closer = std::thread::spawn(move || pool2.shutdown());
        // Shutdown must wait for the drain, not abandon queued jobs.
        wait_until(5_000, || pool.is_shutting_down());
        assert_eq!(pool.submit(|| {}), Err(SubmitError::ShuttingDown));
        assert!(!closer.is_finished(), "shutdown must block on the drain");
        gate.open();
        closer.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 3, "every accepted job ran");
        assert_eq!(pool.stats().completed, 3);
    }

    /// Regression: draining a shutdown must settle every counter exactly
    /// once.  Queued-but-unstarted jobs are *flushed to completion* (they
    /// increment `completed`, not `shed`), pre-shutdown sheds stay at
    /// their pre-shutdown value, and a second shutdown (including the one
    /// `Drop` issues) must not re-count anything.
    #[test]
    fn drain_flushes_queued_job_counters_exactly_once() {
        let pool = WorkerPool::new(PoolConfig::new("drain-count", 1, 2));
        let gate = Gate::closed();

        // Occupy the worker, then fill the queue with 2 more jobs (only
        // after the worker has started the first, or the fill could race
        // it for queue slots).
        let g = Arc::clone(&gate);
        pool.submit(move || g.wait()).unwrap();
        wait_until(5_000, || pool.stats().in_flight == 1);
        for _ in 0..2 {
            let g = Arc::clone(&gate);
            pool.submit(move || g.wait()).unwrap();
        }
        // Two refused submissions: the only sheds this test ever makes.
        assert_eq!(pool.submit(|| {}), Err(SubmitError::Busy));
        assert_eq!(pool.submit(|| {}), Err(SubmitError::Busy));
        let before = pool.stats();
        assert_eq!((before.submitted, before.shed), (3, 2));
        assert_eq!(before.queue_depth, 2, "two jobs queued but unstarted");

        // Shutdown on another thread; open the gate so the drain proceeds.
        let pool2 = Arc::clone(&pool);
        let closer = std::thread::spawn(move || pool2.shutdown());
        wait_until(5_000, || pool.is_shutting_down());
        gate.open();
        closer.join().unwrap();

        let after = pool.stats();
        // The queued-but-unstarted jobs were flushed: completed counts all
        // three accepted jobs exactly once…
        assert_eq!(after.completed, 3, "every accepted job ran exactly once");
        assert_eq!(after.queue_depth, 0);
        assert_eq!(after.in_flight, 0);
        // …and the drain did not re-count them as sheds (nor re-count the
        // pre-shutdown sheds).
        assert_eq!(after.shed, 2, "drain must not touch the shed counter");
        assert_eq!(after.submitted, 3);

        // Idempotence: further shutdowns (and refused submissions after
        // the close) leave the flushed counters alone except for the
        // explicit new refusal.
        pool.shutdown();
        assert_eq!(pool.submit(|| {}), Err(SubmitError::ShuttingDown));
        let settled = pool.stats();
        assert_eq!(settled.completed, 3);
        assert_eq!(
            settled.shed, 2,
            "a shutdown refusal is ShuttingDown, not a counted drop"
        );
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(PoolConfig::new("panic", 1, 4));
        pool.submit(|| panic!("handler bug")).unwrap();
        let ok = Arc::new(AtomicU32::new(0));
        let o = Arc::clone(&ok);
        pool.submit(move || {
            o.store(1, Ordering::SeqCst);
        })
        .unwrap();
        let start = std::time::Instant::now();
        while ok.load(Ordering::SeqCst) == 0 {
            assert!(start.elapsed().as_secs() < 5, "worker died after a panic");
            std::thread::yield_now();
        }
    }

    #[test]
    fn permit_survives_until_redeemed() {
        let pool = WorkerPool::new(PoolConfig::new("permit", 1, 1));
        let permit = pool.try_permit().unwrap();
        // The reserved slot counts against capacity.
        assert!(matches!(pool.try_permit(), Err(SubmitError::Busy)));
        let ran = Arc::new(AtomicU32::new(0));
        let r = Arc::clone(&ran);
        permit.submit(move || {
            r.store(1, Ordering::SeqCst);
        });
        let start = std::time::Instant::now();
        while ran.load(Ordering::SeqCst) == 0 {
            assert!(start.elapsed().as_secs() < 5);
            std::thread::yield_now();
        }
    }
}
