//! The bounded MPMC work queue every serving path stands on.
//!
//! A [`BoundedQueue`] is a mutex-and-condvar ring with an explicit
//! capacity.  Producers choose their overload policy at the call site:
//! [`BoundedQueue::push`] blocks (backpressure — in-process pipes),
//! [`BoundedQueue::try_push`] fails fast (shedding — request admission),
//! and [`BoundedQueue::reserve`] splits admission from hand-off so a
//! caller can learn *before* moving a resource into a job whether the
//! queue will take it (and answer BUSY on its own wire when it will not).
//!
//! Every rejection is counted: a queue in the serving path is only
//! trustworthy if its drops are measurable.

use snowflake_core::sync::LockExt;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Why a non-blocking enqueue was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// The queue is at capacity (counting outstanding reservations).
    Full,
    /// The queue was closed; no new work is admitted.
    Closed,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::Full => write!(f, "queue full"),
            QueueError::Closed => write!(f, "queue closed"),
        }
    }
}

impl std::error::Error for QueueError {}

struct Inner<T> {
    items: VecDeque<T>,
    /// Slots promised to outstanding [`Reservation`]s but not yet pushed.
    reserved: usize,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    /// Items accepted (push or reservation redeemed).
    pushed: AtomicU64,
    /// Non-blocking enqueues refused because the queue was full.
    dropped: AtomicU64,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                reserved: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            pushed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The queue's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (excludes outstanding reservations).
    pub fn len(&self) -> usize {
        self.inner.plock().items.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Has [`BoundedQueue::close`] been called?
    pub fn is_closed(&self) -> bool {
        self.inner.plock().closed
    }

    /// Items accepted so far.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Non-blocking enqueues refused because the queue was full — the
    /// measurable drop counter behind every shed decision.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Enqueues without blocking; a full queue is counted as a drop.
    pub fn try_push(&self, item: T) -> Result<(), (QueueError, T)> {
        let mut inner = self.inner.plock();
        if inner.closed {
            return Err((QueueError::Closed, item));
        }
        if inner.items.len() + inner.reserved >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Err((QueueError::Full, item));
        }
        inner.items.push_back(item);
        self.pushed.fetch_add(1, Ordering::Relaxed);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, blocking while the queue is full (backpressure).  Fails
    /// only when the queue is closed.
    pub fn push(&self, item: T) -> Result<(), (QueueError, T)> {
        let mut inner = self.inner.plock();
        loop {
            if inner.closed {
                return Err((QueueError::Closed, item));
            }
            if inner.items.len() + inner.reserved < self.capacity {
                inner.items.push_back(item);
                self.pushed.fetch_add(1, Ordering::Relaxed);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self
                .not_full
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Reserves one slot, so admission can be decided before the item (a
    /// connection, a socket) is committed to a job.  The slot is held
    /// until the reservation is [redeemed](Reservation::push) or dropped.
    pub fn reserve(&self) -> Result<Reservation<'_, T>, QueueError> {
        let mut inner = self.inner.plock();
        if inner.closed {
            return Err(QueueError::Closed);
        }
        if inner.items.len() + inner.reserved >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(QueueError::Full);
        }
        inner.reserved += 1;
        Ok(Reservation {
            queue: self,
            redeemed: false,
        })
    }

    /// Dequeues, blocking until an item arrives or the queue is closed
    /// *and drained* — consumers see every item accepted before the
    /// close (including items still owed to outstanding reservations),
    /// which is what makes shutdown graceful.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.plock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            // An outstanding reservation may still be redeemed into a
            // closed queue (admission raced the close); end-of-queue is
            // only reached once those resolve, or a redeemed item would
            // sit in a queue no consumer will ever visit again.
            if inner.closed && inner.reserved == 0 {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Dequeues without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let item = self.inner.plock().items.pop_front();
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: new work is refused, queued work stays poppable.
    pub fn close(&self) {
        self.inner.plock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// One reserved slot in a [`BoundedQueue`]; dropped unredeemed, the slot
/// is released.
pub struct Reservation<'a, T> {
    queue: &'a BoundedQueue<T>,
    redeemed: bool,
}

impl<T> Reservation<'_, T> {
    /// Redeems the reservation, enqueueing `item` in the promised slot.
    pub fn push(mut self, item: T) {
        let mut inner = self.queue.inner.plock();
        inner.reserved -= 1;
        inner.items.push_back(item);
        self.redeemed = true;
        self.queue.pushed.fetch_add(1, Ordering::Relaxed);
        drop(inner);
        self.queue.not_empty.notify_one();
    }
}

impl<T> Drop for Reservation<'_, T> {
    fn drop(&mut self) {
        if !self.redeemed {
            self.queue.inner.plock().reserved -= 1;
            self.queue.not_full.notify_one();
            // Consumers parked on a closed queue wait for outstanding
            // reservations; a released one may be what ends the drain.
            self.queue.not_empty.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (e, rejected) = q.try_push(3).unwrap_err();
        assert_eq!((e, rejected), (QueueError::Full, 3));
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.try_pop(), None);
        assert_eq!(q.pushed(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert!(matches!(q.try_push("b"), Err((QueueError::Closed, "b"))));
        assert_eq!(q.pop(), Some("a"), "accepted work survives the close");
        assert_eq!(q.pop(), None, "then consumers see end-of-queue");
    }

    #[test]
    fn reservation_holds_and_releases_slot() {
        let q = BoundedQueue::new(1);
        let r = q.reserve().unwrap();
        assert!(matches!(q.reserve(), Err(QueueError::Full)));
        assert!(matches!(q.try_push(9), Err((QueueError::Full, 9))));
        r.push(7);
        assert_eq!(q.pop(), Some(7));
        // An unredeemed reservation gives its slot back.
        drop(q.reserve().unwrap());
        q.try_push(8).unwrap();
    }

    #[test]
    fn reservation_redeemed_after_close_still_drains() {
        let q = Arc::new(BoundedQueue::<u32>::new(2));
        let r = q.reserve().unwrap();
        q.close();
        // A consumer parked now must wait for the reservation to
        // resolve, then see the redeemed item before end-of-queue.
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || (q2.pop(), q2.pop()));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!consumer.is_finished(), "drain must wait on the reservation");
        r.push(5);
        assert_eq!(consumer.join().unwrap(), (Some(5), None));
    }

    #[test]
    fn reservation_released_after_close_ends_drain() {
        let q = Arc::new(BoundedQueue::<u32>::new(2));
        let r = q.reserve().unwrap();
        q.close();
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!consumer.is_finished());
        drop(r);
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn blocking_push_exerts_backpressure() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2).is_ok());
        // The producer cannot finish until the consumer makes room.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!producer.is_finished(), "push must block while full");
        assert_eq!(q.pop(), Some(1));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.try_push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }
}
