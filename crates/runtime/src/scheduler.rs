//! A monotonic-clock job scheduler.
//!
//! One timer thread owns a deadline heap ordered by
//! [`std::time::Instant`] — monotonic by construction, so a wall-clock
//! step (NTP, suspend/resume) never fires jobs early or starves them.
//! Jobs are either one-shot ([`Scheduler::schedule_once`]) or
//! *self-pacing* repeats ([`Scheduler::schedule_repeating`]): a repeating
//! job returns the delay until its next run, so a driver can tighten or
//! relax its own cadence (the freshness agent sleeps exactly until its
//! next CRL deadline instead of polling on a fixed period).
//!
//! Jobs run on the timer thread; they are expected to be short or to
//! hand real work to a [`crate::WorkerPool`].

use snowflake_core::sync::LockExt;
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashSet};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

enum SchedJob {
    Once(Box<dyn FnOnce() + Send + 'static>),
    /// Returns the delay until the next run; `None` retires the task.
    Repeating(Box<dyn FnMut() -> Option<Duration> + Send + 'static>),
}

struct Entry {
    due: Instant,
    id: u64,
    job: SchedJob,
}

// The heap orders by deadline only; ties break by id (earlier first) so
// ordering is total and deterministic.
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.id == other.id
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.id.cmp(&self.id))
    }
}

struct SchedState {
    tasks: BinaryHeap<Entry>,
    /// Pending cancellations for tasks that are live (queued or mid-run);
    /// entries are reaped when the task is skipped, retired, or finishes,
    /// so the set cannot grow past the live-task count.
    cancelled: HashSet<u64>,
    /// The task currently executing on the timer thread, if any.
    running: Option<u64>,
    next_id: u64,
    shutdown: bool,
}

struct SchedInner {
    state: Mutex<SchedState>,
    cv: Condvar,
}

/// Cancels its task when asked; dropping the handle does *not* cancel.
pub struct TaskHandle {
    id: u64,
    inner: Weak<SchedInner>,
}

impl TaskHandle {
    /// Cancels the task: it will not fire again (a run already in
    /// progress on the timer thread finishes).  Cancelling a task that
    /// already completed or retired is a no-op.
    pub fn cancel(&self) {
        if let Some(inner) = self.inner.upgrade() {
            let mut state = inner.state.plock();
            // Only mark live tasks, or the set would leak an entry per
            // cancel-after-completion forever.
            let live = state.running == Some(self.id)
                || state.tasks.iter().any(|e| e.id == self.id);
            if live {
                state.cancelled.insert(self.id);
            }
            drop(state);
            inner.cv.notify_all();
        }
    }
}

/// The timer: schedules one-shot and self-pacing repeating jobs.
pub struct Scheduler {
    inner: Arc<SchedInner>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts the timer thread.
    pub fn new() -> Scheduler {
        let inner = Arc::new(SchedInner {
            state: Mutex::new(SchedState {
                tasks: BinaryHeap::new(),
                cancelled: HashSet::new(),
                running: None,
                next_id: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let timer_inner = Arc::clone(&inner);
        let thread = std::thread::Builder::new()
            .name("sf-scheduler".into())
            .spawn(move || Self::run(&timer_inner))
            .expect("spawn scheduler thread");
        Scheduler {
            inner,
            thread: Mutex::new(Some(thread)),
        }
    }

    fn enqueue(&self, delay: Duration, job: SchedJob) -> TaskHandle {
        let mut state = self.inner.state.plock();
        let id = state.next_id;
        state.next_id += 1;
        state.tasks.push(Entry {
            due: Instant::now() + delay,
            id,
            job,
        });
        drop(state);
        self.cv_notify();
        TaskHandle {
            id,
            inner: Arc::downgrade(&self.inner),
        }
    }

    fn cv_notify(&self) {
        self.inner.cv.notify_all();
    }

    /// Runs `job` once after `delay`.
    pub fn schedule_once(
        &self,
        delay: Duration,
        job: impl FnOnce() + Send + 'static,
    ) -> TaskHandle {
        self.enqueue(delay, SchedJob::Once(Box::new(job)))
    }

    /// Runs `job` after `initial_delay`, then again after whatever delay
    /// each run returns, until it returns `None` or is cancelled.
    pub fn schedule_repeating(
        &self,
        initial_delay: Duration,
        job: impl FnMut() -> Option<Duration> + Send + 'static,
    ) -> TaskHandle {
        self.enqueue(initial_delay, SchedJob::Repeating(Box::new(job)))
    }

    /// Pending tasks (cancelled-but-unreaped entries included).
    pub fn pending(&self) -> usize {
        self.inner.state.plock().tasks.len()
    }

    #[cfg(test)]
    fn cancelled_len(&self) -> usize {
        self.inner.state.plock().cancelled.len()
    }

    /// Stops the timer: pending tasks are dropped unrun, the thread is
    /// joined.  Idempotent.
    pub fn shutdown(&self) {
        self.inner.state.plock().shutdown = true;
        self.cv_notify();
        if let Some(handle) = self.thread.plock().take() {
            let _ = handle.join();
        }
    }

    fn run(inner: &SchedInner) {
        let mut state = inner.state.plock();
        loop {
            if state.shutdown {
                return;
            }
            // Reap cancellations lazily from the top of the heap.
            while let Some(top) = state.tasks.peek() {
                if state.cancelled.contains(&top.id) {
                    let entry = state.tasks.pop().expect("peeked entry");
                    state.cancelled.remove(&entry.id);
                } else {
                    break;
                }
            }
            let now = Instant::now();
            match state.tasks.peek() {
                None => {
                    state = inner
                        .cv
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                Some(top) if top.due > now => {
                    let timeout = top.due - now;
                    state = inner
                        .cv
                        .wait_timeout(state, timeout)
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .0;
                }
                Some(_) => {
                    let entry = state.tasks.pop().expect("peeked entry");
                    let id = entry.id;
                    state.running = Some(id);
                    drop(state);
                    let reschedule = match entry.job {
                        SchedJob::Once(job) => {
                            job();
                            None
                        }
                        SchedJob::Repeating(mut job) => {
                            job().map(|next| (next, SchedJob::Repeating(job)))
                        }
                    };
                    // Running flag, cancellation reap, and reschedule all
                    // under one lock: a cancel landing any time during
                    // the run wins over rescheduling, and a finished or
                    // retired task leaves nothing behind in either set.
                    state = inner.state.plock();
                    state.running = None;
                    let was_cancelled = state.cancelled.remove(&id);
                    if let Some((next, job)) = reschedule {
                        if !was_cancelled && !state.shutdown {
                            state.tasks.push(Entry {
                                due: Instant::now() + next,
                                id,
                                job,
                            });
                        }
                    }
                }
            }
        }
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn wait_until(deadline_ms: u64, mut cond: impl FnMut() -> bool) {
        let start = Instant::now();
        while !cond() {
            assert!(
                start.elapsed() < Duration::from_millis(deadline_ms),
                "condition not reached in time"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn one_shot_fires_in_deadline_order() {
        let sched = Scheduler::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let (o1, o2) = (Arc::clone(&order), Arc::clone(&order));
        sched.schedule_once(Duration::from_millis(30), move || o1.plock().push(2));
        sched.schedule_once(Duration::from_millis(5), move || o2.plock().push(1));
        wait_until(5_000, || order.plock().len() == 2);
        assert_eq!(*order.plock(), vec![1, 2]);
    }

    #[test]
    fn repeating_self_paces_and_retires() {
        let sched = Scheduler::new();
        let runs = Arc::new(AtomicU32::new(0));
        let r = Arc::clone(&runs);
        sched.schedule_repeating(Duration::ZERO, move || {
            let n = r.fetch_add(1, Ordering::SeqCst) + 1;
            (n < 3).then_some(Duration::from_millis(1))
        });
        wait_until(5_000, || runs.load(Ordering::SeqCst) == 3);
        // Retired: no further runs.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(runs.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn cancel_prevents_future_runs() {
        let sched = Scheduler::new();
        let runs = Arc::new(AtomicU32::new(0));
        let r = Arc::clone(&runs);
        let handle =
            sched.schedule_once(Duration::from_millis(50), move || {
                r.fetch_add(1, Ordering::SeqCst);
            });
        handle.cancel();
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(runs.load(Ordering::SeqCst), 0, "cancelled task must not run");
    }

    #[test]
    fn cancel_stops_a_repeating_task() {
        let sched = Scheduler::new();
        let runs = Arc::new(AtomicU32::new(0));
        let r = Arc::clone(&runs);
        let handle = sched.schedule_repeating(Duration::ZERO, move || {
            r.fetch_add(1, Ordering::SeqCst);
            Some(Duration::from_millis(1))
        });
        wait_until(5_000, || runs.load(Ordering::SeqCst) >= 2);
        handle.cancel();
        let after = runs.load(Ordering::SeqCst) + 1; // one run may be mid-flight
        std::thread::sleep(Duration::from_millis(30));
        assert!(runs.load(Ordering::SeqCst) <= after, "cancel must stop the repeat");
    }

    #[test]
    fn cancel_after_completion_does_not_leak() {
        let sched = Scheduler::new();
        let runs = Arc::new(AtomicU32::new(0));
        let r = Arc::clone(&runs);
        let once = sched.schedule_once(Duration::ZERO, move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        let r = Arc::clone(&runs);
        let retired = sched.schedule_repeating(Duration::ZERO, move || {
            r.fetch_add(1, Ordering::SeqCst);
            None // retires immediately
        });
        wait_until(5_000, || runs.load(Ordering::SeqCst) == 2);
        wait_until(5_000, || sched.pending() == 0);
        // Cancelling dead tasks must be a no-op, not a permanent entry.
        once.cancel();
        retired.cancel();
        assert_eq!(sched.cancelled_len(), 0, "cancel-after-completion must not leak");
    }

    #[test]
    fn shutdown_joins_and_drops_pending() {
        let sched = Scheduler::new();
        let runs = Arc::new(AtomicU32::new(0));
        let r = Arc::clone(&runs);
        sched.schedule_once(Duration::from_secs(60), move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        sched.shutdown();
        assert_eq!(runs.load(Ordering::SeqCst), 0);
    }
}
