//! Raw `epoll`/`eventfd` bindings.
//!
//! The reactor multiplexes thousands of parked sockets on one thread, and
//! the only portable-enough readiness API the platform offers without
//! external crates is `epoll`.  std links the system C library already, so
//! these are plain `extern "C"` declarations of functions libc exports —
//! no new dependency, no registry access.  Everything unsafe is confined
//! to this module; the wrappers expose an `io::Result` surface and
//! [`OwnedFd`] ownership so the rest of the reactor is ordinary safe Rust.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint, c_void};

/// One readiness event, ABI-compatible with the kernel's `epoll_event`.
///
/// The kernel packs this struct on x86-64 (and only there); matching the
/// layout exactly is what makes the raw calls sound.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub data: u64,
}

/// Readable (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`) — always reported, never needs arming.
pub const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`) — always reported, never needs arming.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;
const RLIMIT_NOFILE: c_int = 7;

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

/// An owned epoll instance.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is an
        // error reported via errno.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: the fd was just returned to us and is owned by no one else.
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it out.
        let rc = unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest set.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the interest set of an already-registered fd.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters an fd (closing the fd deregisters implicitly; this is
    /// for fds that stay open past their reactor life).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness, filling `events`; returns how many fired.
    ///
    /// `timeout` of `None` blocks indefinitely.  `EINTR` is retried.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: Option<u64>) -> io::Result<usize> {
        let timeout: c_int = match timeout_ms {
            None => -1,
            Some(ms) => ms.min(c_int::MAX as u64) as c_int,
        };
        loop {
            // SAFETY: the events slice is valid for `len` entries and
            // outlives the call.
            let rc = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as c_int,
                    timeout,
                )
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// An owned eventfd used to wake the reactor thread out of `epoll_wait`
/// when another thread changes state it must act on.
pub struct WakeFd {
    fd: OwnedFd,
}

impl WakeFd {
    /// Creates a non-blocking, close-on-exec eventfd.
    pub fn new() -> io::Result<WakeFd> {
        // SAFETY: eventfd takes no pointers.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: freshly returned fd, owned by no one else.
        Ok(WakeFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// The raw fd, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Signals the reactor (adds 1 to the counter; best-effort).
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: the 8-byte buffer matches eventfd's required width.
        unsafe {
            write(
                self.fd.as_raw_fd(),
                (&one as *const u64).cast::<c_void>(),
                8,
            );
        }
    }

    /// Drains the counter so level-triggered epoll stops reporting it.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: the 8-byte buffer matches eventfd's required width; the
        // fd is non-blocking so this cannot park.
        unsafe {
            read(
                self.fd.as_raw_fd(),
                (&mut buf as *mut u64).cast::<c_void>(),
                8,
            );
        }
    }
}

/// The process's current soft limit on open file descriptors.
pub fn nofile_limit() -> io::Result<u64> {
    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: `lim` outlives the call; the kernel fills it.
    let rc = unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(lim.cur)
}

/// Raises the open-file limit to at least `want` descriptors (soft and,
/// when the process is privileged enough, hard).  The connection-scaling
/// bench parks tens of thousands of sockets in one process and needs
/// headroom beyond the usual default.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: `lim` outlives the call.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.cur >= want {
        return Ok(lim.cur);
    }
    let new = RLimit {
        cur: want,
        max: lim.max.max(want),
    };
    // SAFETY: `new` outlives the call.
    if unsafe { setrlimit(RLIMIT_NOFILE, &new) } == 0 {
        return Ok(want);
    }
    // Unprivileged: settle for the hard limit.
    let capped = RLimit {
        cur: lim.max,
        max: lim.max,
    };
    // SAFETY: `capped` outlives the call.
    if unsafe { setrlimit(RLIMIT_NOFILE, &capped) } == 0 {
        return Ok(lim.max);
    }
    Err(io::Error::last_os_error())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakefd_roundtrip_through_epoll() {
        let ep = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        ep.add(wake.raw(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing pending: a zero timeout returns immediately with no events.
        assert_eq!(ep.wait(&mut events, Some(0)).unwrap(), 0);

        wake.wake();
        let n = ep.wait(&mut events, Some(1_000)).unwrap();
        assert_eq!(n, 1);
        let token = events[0].data;
        assert_eq!(token, 7);

        // Draining clears the level-triggered readiness.
        wake.drain();
        assert_eq!(ep.wait(&mut events, Some(0)).unwrap(), 0);
    }

    #[test]
    fn epoll_reports_socket_readability() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42).unwrap();

        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(ep.wait(&mut events, Some(0)).unwrap(), 0, "idle socket");

        client.write_all(b"x").unwrap();
        let n = ep.wait(&mut events, Some(2_000)).unwrap();
        assert_eq!(n, 1);
        let token = events[0].data;
        assert_eq!(token, 42);
        let ev = events[0].events;
        assert_ne!(ev & EPOLLIN, 0);
    }

    #[test]
    fn nofile_limit_is_queryable() {
        assert!(nofile_limit().unwrap() > 0);
    }
}
