//! A coarse timer wheel for connection idle deadlines.
//!
//! The reactor arms one deadline per parked connection — tens of
//! thousands of them — and cancels/re-arms on every completed request.
//! A binary heap would pay `O(log n)` per re-arm and need tombstone
//! compaction; a wheel with ~100ms slots pays `O(1)` per arm and
//! amortized `O(1)` per expiry, and 100ms of reap slop is irrelevant
//! against multi-second idle timeouts.
//!
//! Cancellation is lazy: entries carry the generation the connection had
//! when armed, and the reactor discards fired entries whose generation no
//! longer matches.  Re-arming is therefore just "bump the generation and
//! insert a new entry".

use std::time::{Duration, Instant};

/// One armed deadline: fires `(token, gen)` at or after `deadline`.
struct Entry {
    token: u64,
    gen: u64,
    deadline: Instant,
}

/// A hashed timer wheel with fixed-width slots.
pub(crate) struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    granularity: Duration,
    /// Slot index the cursor is at.
    cursor: usize,
    /// Wheel time corresponding to the cursor slot's start.
    cursor_time: Instant,
    len: usize,
}

impl TimerWheel {
    pub(crate) fn new(slot_count: usize, granularity: Duration, now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..slot_count.max(2)).map(|_| Vec::new()).collect(),
            granularity,
            cursor: 0,
            cursor_time: now,
            len: 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Arms `(token, gen)` to fire at `deadline`.  Deadlines further out
    /// than one wheel revolution land in the last slot and are re-inserted
    /// when the cursor reaches them (the entry keeps its true deadline).
    pub(crate) fn insert(&mut self, token: u64, gen: u64, deadline: Instant) {
        let slots_ahead = if deadline <= self.cursor_time {
            0
        } else {
            let nanos = (deadline - self.cursor_time).as_nanos();
            let gran = self.granularity.as_nanos().max(1);
            ((nanos / gran) as usize).min(self.slots.len() - 1)
        };
        let idx = (self.cursor + slots_ahead) % self.slots.len();
        self.slots[idx].push(Entry {
            token,
            gen,
            deadline,
        });
        self.len += 1;
    }

    /// How long until the nearest armed slot could fire, or `None` when
    /// the wheel is empty.  This is a bound, not an exact deadline: the
    /// reactor sleeps at most this long before calling [`expired`].
    pub(crate) fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        for ahead in 0..self.slots.len() {
            let idx = (self.cursor + ahead) % self.slots.len();
            if !self.slots[idx].is_empty() {
                let slot_end = self.cursor_time + self.granularity * (ahead as u32 + 1);
                return Some(slot_end.saturating_duration_since(now));
            }
        }
        None
    }

    /// Advances the cursor to `now`, collecting every `(token, gen)` whose
    /// deadline has passed.  Entries in swept slots that are not yet due
    /// (far-future deadlines, coarse slotting) are re-inserted.
    pub(crate) fn expired(&mut self, now: Instant) -> Vec<(u64, u64)> {
        let mut fired = Vec::new();
        let mut requeue = Vec::new();
        while self.cursor_time + self.granularity <= now {
            for entry in self.slots[self.cursor].drain(..) {
                self.len -= 1;
                if entry.deadline <= now {
                    fired.push((entry.token, entry.gen));
                } else {
                    requeue.push(entry);
                }
            }
            self.cursor = (self.cursor + 1) % self.slots.len();
            self.cursor_time += self.granularity;
        }
        // Also sweep the current (partial) slot for entries already due —
        // coarse slotting may park a deadline in the slot `now` sits in.
        let mut i = 0;
        while i < self.slots[self.cursor].len() {
            if self.slots[self.cursor][i].deadline <= now {
                let entry = self.slots[self.cursor].swap_remove(i);
                self.len -= 1;
                fired.push((entry.token, entry.gen));
            } else {
                i += 1;
            }
        }
        for entry in requeue {
            self.len += 1;
            // Re-insert relative to the advanced cursor; lands closer to
            // its true deadline each revolution.
            let Entry {
                token,
                gen,
                deadline,
            } = entry;
            self.len -= 1; // insert() will re-count it
            self.insert(token, gen, deadline);
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn fires_due_entries_and_keeps_future_ones() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(16, ms(100), t0);
        wheel.insert(1, 0, t0 + ms(150));
        wheel.insert(2, 0, t0 + ms(950));
        assert_eq!(wheel.len(), 2);

        assert!(wheel.expired(t0 + ms(100)).is_empty());
        let fired = wheel.expired(t0 + ms(200));
        assert_eq!(fired, vec![(1, 0)]);
        assert_eq!(wheel.len(), 1);

        let fired = wheel.expired(t0 + ms(1_000));
        assert_eq!(fired, vec![(2, 0)]);
        assert_eq!(wheel.len(), 0);
        assert!(wheel.next_timeout(t0 + ms(1_000)).is_none());
    }

    #[test]
    fn far_future_deadline_survives_wheel_revolutions() {
        let t0 = Instant::now();
        // 4 slots x 100ms = 400ms revolution; the deadline is 1s out.
        let mut wheel = TimerWheel::new(4, ms(100), t0);
        wheel.insert(7, 3, t0 + ms(1_000));

        for step in 1..10 {
            assert!(
                wheel.expired(t0 + ms(step * 100)).is_empty(),
                "not due at {}ms",
                step * 100
            );
        }
        let fired = wheel.expired(t0 + ms(1_100));
        assert_eq!(fired, vec![(7, 3)]);
    }

    #[test]
    fn next_timeout_bounds_the_sleep() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(16, ms(100), t0);
        assert!(wheel.next_timeout(t0).is_none());
        wheel.insert(1, 0, t0 + ms(250));
        let timeout = wheel.next_timeout(t0).expect("armed");
        // The entry sits in slot 2 (200..300ms); the bound must cover it.
        assert!(timeout >= ms(250) && timeout <= ms(400), "{timeout:?}");
    }

    #[test]
    fn same_slot_deadline_fires_without_cursor_advance() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(16, ms(100), t0);
        wheel.insert(9, 1, t0 + ms(10));
        let fired = wheel.expired(t0 + ms(50));
        assert_eq!(fired, vec![(9, 1)]);
    }
}
