//! The readiness-driven connection layer.
//!
//! Every server surface used to pin one worker (or a dedicated thread)
//! per open connection, so connection count *was* worker count and idle
//! keep-alive sessions starved active requests.  The reactor inverts
//! that: **one thread owns every listening and parked socket**, watches
//! them with `epoll`, buffers partial frames per connection, and hands
//! only *ready* work units — one complete request frame plus the
//! connection's protocol driver — to the existing bounded [`WorkerPool`].
//! Idle connections cost a few kilobytes of buffer, not a thread.
//!
//! Ownership model:
//!
//! * The reactor owns the `TcpListener`s and every parked `TcpStream`.
//!   Surfaces never touch a socket; they provide a [`ConnDriver`] that
//!   scans bytes into frames and turns one frame into one reply.
//! * When a frame completes, the driver and frame move onto a pool
//!   worker (admission via `try_permit`, so pool saturation sheds at the
//!   accept edge exactly as PR 4 defined).  The worker computes the
//!   reply and posts it back on a completion queue; an `eventfd` wakes
//!   the reactor, which writes the reply and re-parks the connection.
//!   At most one frame per connection is in flight.
//! * Idle deadlines live in a coarse [timer wheel](timer).  A deadline
//!   is armed when a connection parks and re-armed only when a complete
//!   frame's reply has been flushed — a slow-loris client dribbling
//!   bytes never refreshes its deadline and is reaped on schedule, while
//!   consuming zero workers in the meantime.
//! * Shedding carries over: pool-full refusals are counted by the pool's
//!   own drop counter (and answered with the driver's busy reply);
//!   reactor-level refusals — parked-connection cap, accepts during
//!   drain, stalled push sinks — land in the shared [`ShedLedger`] under
//!   the surface's name.  One ledger, surfaced per surface.
//! * Drain mirrors the pool: shutdown closes idle parked connections at
//!   once, lets dispatched frames complete and flush their replies,
//!   answers late accepts with the surface's shed reply, then closes the
//!   listeners and exits.

pub mod sys;
mod timer;

use crate::pool::{SubmitError, WorkerPool};
use crate::shed::ShedLedger;
use crate::spawn_thread;
use sys::{Epoll, EpollEvent, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use timer::TimerWheel;

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reactor tuning.
#[derive(Clone)]
pub struct ReactorConfig {
    /// Hard cap on concurrently open reactor-owned connections; accepts
    /// beyond it are shed (counted in the ledger, answered with the
    /// surface's shed reply).
    pub max_parked: usize,
    /// How long a parked connection may sit without completing a frame
    /// before the timer wheel reaps it.
    pub idle_timeout: Duration,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            max_parked: 16_384,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// What a driver's frame scan concluded.
pub enum FrameScan {
    /// The first `n` buffered bytes form one complete frame.
    Complete(usize),
    /// More bytes are needed; stay parked.
    Partial,
    /// The bytes cannot become a valid frame; close the connection.
    Invalid(&'static str),
}

/// What handling one frame produced.
pub enum ReadyOutcome {
    /// Write these bytes, then re-park the connection (keep-alive).
    Reply(Vec<u8>),
    /// Write these bytes, then close.
    ReplyClose(Vec<u8>),
    /// Close without writing.
    Close,
}

/// A per-connection protocol state machine.
///
/// The reactor calls `scan` on its thread (cheap, byte inspection only)
/// and moves the driver onto a pool worker for `handle` (the expensive
/// part: crypto, authorization, application logic).  All driver state
/// rides along — the reactor holds it between frames.
pub trait ConnDriver: Send {
    /// Inspects buffered bytes for one complete frame.
    fn scan(&mut self, buf: &[u8]) -> FrameScan;
    /// Turns one complete frame into an outcome.  Runs on a pool worker.
    fn handle(&mut self, frame: Vec<u8>) -> ReadyOutcome;
    /// The bytes to send when the pool sheds this connection's frame
    /// (e.g. an HTTP 503 or a sealed `RmiFault::Busy`); `None` closes
    /// without a reply.  The connection closes after the reply flushes.
    fn busy_reply(&mut self) -> Option<Vec<u8>>;
}

/// What a surface does with a freshly accepted connection.
pub enum Accepted {
    /// Park it in the reactor under this driver immediately (plaintext
    /// protocols: the first readable frame is the first request).
    Park(Box<dyn ConnDriver>),
    /// Run a blocking setup step (a cryptographic handshake) on a pool
    /// worker first.  The job receives the stream and may hand the
    /// connection back via [`Reactor::adopt`] once setup completes.
    Offload(OffloadJob),
}

/// A blocking setup job for [`Accepted::Offload`].
pub type OffloadJob = Box<dyn FnOnce(TcpStream, Arc<Reactor>, Arc<Surface>) + Send>;

/// Per-surface identity and shed behavior, shared by every connection
/// the surface's listeners accept.
pub struct Surface {
    name: String,
    shed_reply: Option<Box<dyn Fn(&str) -> Vec<u8> + Send + Sync>>,
    on_shed: Option<Box<dyn Fn(&str) + Send + Sync>>,
}

impl Surface {
    /// A surface with the given ledger name and no shed hooks.
    pub fn new(name: &str) -> Surface {
        Surface {
            name: name.to_owned(),
            shed_reply: None,
            on_shed: None,
        }
    }

    /// The ledger name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the reply written (best-effort) to a connection shed at
    /// accept time; the closure receives the shed reason.
    pub fn with_shed_reply(
        mut self,
        f: impl Fn(&str) -> Vec<u8> + Send + Sync + 'static,
    ) -> Surface {
        self.shed_reply = Some(Box::new(f));
        self
    }

    /// Sets a hook invoked on every shed (reactor- or pool-refused) so
    /// the surface can emit its audit event.
    pub fn with_on_shed(mut self, f: impl Fn(&str) + Send + Sync + 'static) -> Surface {
        self.on_shed = Some(Box::new(f));
        self
    }

    fn shed(&self, detail: &str, stream: &TcpStream) {
        if let Some(hook) = &self.on_shed {
            hook(detail);
        }
        if let Some(reply) = &self.shed_reply {
            let bytes = reply(detail);
            let _ = stream.set_nonblocking(true);
            let _ = (&*stream).write_all(&bytes);
        }
    }
}

/// Decides what to do with each accepted connection.  Called on the
/// reactor thread; must not block.
pub type AcceptFn = Box<dyn Fn() -> Accepted + Send>;

/// Blocks a serving thread until the reactor closes the listener (at
/// drain completion), preserving the blocking `serve_*` call shape the
/// surfaces have always exposed.
#[derive(Clone)]
pub struct ListenerHandle {
    closed: Arc<(Mutex<bool>, Condvar)>,
}

impl ListenerHandle {
    /// Waits until the listener is closed by reactor shutdown.
    pub fn wait(&self) {
        let (lock, cvar) = &*self.closed;
        let mut done = lock.lock().expect("listener handle poisoned");
        while !*done {
            done = cvar.wait(done).expect("listener handle poisoned");
        }
    }
}

/// A write handle to a reactor-owned push sink connection.
///
/// Sends are buffered in the reactor (bounded); a remote that stalls
/// past [`SINK_BUFFER_CAP`] is disconnected and counted as a shed — it
/// never blocks the sender and never occupies a thread.
pub struct SinkHandle {
    reactor: Arc<Reactor>,
    token: u64,
}

impl SinkHandle {
    /// Queues `frame` for the remote.  Returns `false` once the
    /// connection is gone (peer closed, write error, or stalled past the
    /// buffer cap) — the caller should drop the subscription.
    pub fn send(&self, frame: &[u8]) -> bool {
        self.reactor.sink_send(self.token, frame)
    }

    /// Is the connection still open?
    pub fn is_open(&self) -> bool {
        self.reactor.sink_is_open(self.token)
    }

    /// Closes the sink connection now, dropping any queued bytes.  The
    /// remote observes EOF without having to poll or reconnect — this is
    /// how a broker cuts a revoked subscriber's stream mid-flight.
    /// Idempotent; subsequent [`SinkHandle::send`]s return `false`.
    pub fn close(&self) {
        self.reactor.sink_close(self.token);
    }
}

/// Most bytes a sink connection may have queued before the remote is
/// declared stalled and disconnected.
pub const SINK_BUFFER_CAP: usize = 256 * 1024;

/// How long draining waits for in-progress reply flushes before
/// force-closing them (dispatched frames are always allowed to finish).
const DRAIN_FLUSH_GRACE: Duration = Duration::from_secs(5);

const WAKE_TOKEN: u64 = 0;
const READ_CHUNK: usize = 16 * 1024;
const WHEEL_SLOTS: usize = 512;
const WHEEL_GRANULARITY: Duration = Duration::from_millis(100);

/// Counters describing the reactor's current and cumulative state.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReactorStats {
    /// Reactor-owned request connections currently open (any phase).
    pub open_connections: u64,
    /// Of those, connections parked idle (no frame in flight).
    pub parked: u64,
    /// Push sink connections currently open.
    pub open_sinks: u64,
    /// Connections accepted from listeners, ever.
    pub accepted: u64,
    /// Connections adopted post-handshake, ever.
    pub adopted: u64,
    /// Idle connections reaped by the timer wheel, ever.
    pub reaped_idle: u64,
    /// Complete frames handed to the worker pool, ever.
    pub frames_dispatched: u64,
}

enum Phase {
    /// Owned by the reactor, waiting for readable bytes.
    Parked,
    /// A frame (and the driver) is on a pool worker.
    Dispatched,
    /// A reply is being written; `close_after` decides what follows.
    Flushing,
}

struct Conn {
    stream: TcpStream,
    surface: Arc<Surface>,
    driver: Option<Box<dyn ConnDriver>>,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    phase: Phase,
    close_after: bool,
    /// Bumped on every park; stale timer-wheel entries are discarded.
    gen: u64,
    is_sink: bool,
}

struct ListenerEntry {
    listener: TcpListener,
    surface: Arc<Surface>,
    accept: AcceptFn,
    handle: Arc<(Mutex<bool>, Condvar)>,
}

enum FlushResult {
    Done,
    Pending,
    Gone,
}

struct State {
    conns: HashMap<u64, Conn>,
    listeners: HashMap<u64, ListenerEntry>,
    wheel: TimerWheel,
    completions: Vec<(u64, Box<dyn ConnDriver>, ReadyOutcome)>,
    next_token: u64,
    shutting_down: bool,
    drain_started: bool,
    drain_deadline: Option<Instant>,
    finished: bool,
    accepted: u64,
    adopted: u64,
    reaped_idle: u64,
    frames_dispatched: u64,
}

/// The epoll reactor: one thread owning every listening and parked
/// socket, dispatching ready frames to the worker pool.
pub struct Reactor {
    epoll: Epoll,
    wake: WakeFd,
    pool: Arc<WorkerPool>,
    ledger: Arc<ShedLedger>,
    config: ReactorConfig,
    state: Mutex<State>,
    thread: Mutex<Option<JoinHandle<()>>>,
    /// Back-pointer so the reactor thread can hand dispatch jobs an
    /// owning `Arc` of itself; always upgradable while the thread runs.
    self_ref: std::sync::Weak<Reactor>,
}

impl Reactor {
    /// Starts the reactor thread.
    pub fn start(
        pool: Arc<WorkerPool>,
        ledger: Arc<ShedLedger>,
        config: ReactorConfig,
    ) -> io::Result<Arc<Reactor>> {
        let epoll = Epoll::new()?;
        let wake = WakeFd::new()?;
        epoll.add(wake.raw(), EPOLLIN, WAKE_TOKEN)?;
        let reactor = Arc::new_cyclic(|weak| Reactor {
            epoll,
            wake,
            pool,
            ledger,
            config,
            self_ref: weak.clone(),
            state: Mutex::new(State {
                conns: HashMap::new(),
                listeners: HashMap::new(),
                wheel: TimerWheel::new(WHEEL_SLOTS, WHEEL_GRANULARITY, Instant::now()),
                completions: Vec::new(),
                next_token: 1,
                shutting_down: false,
                drain_started: false,
                drain_deadline: None,
                finished: false,
                accepted: 0,
                adopted: 0,
                reaped_idle: 0,
                frames_dispatched: 0,
            }),
            thread: Mutex::new(None),
        });
        let me = Arc::clone(&reactor);
        let handle = spawn_thread("sf-reactor", move || me.run());
        *reactor.thread.lock().expect("reactor thread slot") = Some(handle);
        Ok(reactor)
    }

    /// Registers a listening socket under a surface.  The reactor owns
    /// the listener from here on; the returned handle blocks until the
    /// reactor closes it during drain.
    pub fn register_listener(
        &self,
        listener: TcpListener,
        surface: Surface,
        accept: AcceptFn,
    ) -> io::Result<ListenerHandle> {
        listener.set_nonblocking(true)?;
        let mut st = self.state.lock().expect("reactor state poisoned");
        if st.shutting_down {
            return Err(io::Error::new(
                io::ErrorKind::Other,
                "reactor is shutting down",
            ));
        }
        let token = st.next_token;
        st.next_token += 1;
        let handle = Arc::new((Mutex::new(false), Condvar::new()));
        self.epoll.add(listener.as_raw_fd(), EPOLLIN, token)?;
        st.listeners.insert(
            token,
            ListenerEntry {
                listener,
                surface: Arc::new(surface),
                accept,
                handle: Arc::clone(&handle),
            },
        );
        drop(st);
        self.wake.wake();
        Ok(ListenerHandle { closed: handle })
    }

    /// Adopts an established connection (post-handshake) into the
    /// reactor under `driver`.  Used by [`Accepted::Offload`] jobs once
    /// their blocking setup completes.
    pub fn adopt(
        &self,
        stream: TcpStream,
        surface: Arc<Surface>,
        driver: Box<dyn ConnDriver>,
    ) -> io::Result<()> {
        let mut st = self.state.lock().expect("reactor state poisoned");
        if st.shutting_down {
            self.ledger.record(surface.name());
            surface.shed("server shutting down", &stream);
            return Ok(());
        }
        if st.conns.len() >= self.config.max_parked {
            self.ledger.record(surface.name());
            surface.shed("parked-connection cap reached", &stream);
            return Ok(());
        }
        stream.set_nonblocking(true)?;
        let token = st.next_token;
        st.next_token += 1;
        self.epoll
            .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)?;
        let deadline = Instant::now() + self.config.idle_timeout;
        st.wheel.insert(token, 0, deadline);
        st.conns.insert(
            token,
            Conn {
                stream,
                surface,
                driver: Some(driver),
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                wpos: 0,
                phase: Phase::Parked,
                close_after: false,
                gen: 0,
                is_sink: false,
            },
        );
        st.adopted += 1;
        drop(st);
        self.wake.wake();
        Ok(())
    }

    /// Adopts a write-only push sink connection.  The remote is watched
    /// for hangup; writes go through the returned [`SinkHandle`].
    pub fn adopt_sink(
        self: &Arc<Self>,
        stream: TcpStream,
        surface: Surface,
    ) -> io::Result<SinkHandle> {
        let mut st = self.state.lock().expect("reactor state poisoned");
        if st.shutting_down {
            return Err(io::Error::new(
                io::ErrorKind::Other,
                "reactor is shutting down",
            ));
        }
        stream.set_nonblocking(true)?;
        let token = st.next_token;
        st.next_token += 1;
        self.epoll
            .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)?;
        st.conns.insert(
            token,
            Conn {
                stream,
                surface: Arc::new(surface),
                driver: None,
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                wpos: 0,
                phase: Phase::Parked,
                close_after: false,
                gen: 0,
                is_sink: true,
            },
        );
        drop(st);
        self.wake.wake();
        Ok(SinkHandle {
            reactor: Arc::clone(self),
            token,
        })
    }

    /// Current reactor counters.
    pub fn stats(&self) -> ReactorStats {
        let st = self.state.lock().expect("reactor state poisoned");
        let mut open = 0u64;
        let mut parked = 0u64;
        let mut sinks = 0u64;
        for conn in st.conns.values() {
            if conn.is_sink {
                sinks += 1;
            } else {
                open += 1;
                if matches!(conn.phase, Phase::Parked) {
                    parked += 1;
                }
            }
        }
        ReactorStats {
            open_connections: open,
            parked,
            open_sinks: sinks,
            accepted: st.accepted,
            adopted: st.adopted,
            reaped_idle: st.reaped_idle,
            frames_dispatched: st.frames_dispatched,
        }
    }

    /// Has shutdown begun?
    pub fn is_shutting_down(&self) -> bool {
        self.state
            .lock()
            .expect("reactor state poisoned")
            .shutting_down
    }

    /// Begins drain and blocks until the reactor thread exits: idle
    /// parked connections close at once, dispatched frames complete and
    /// flush, late accepts are shed with the surface's reply, then the
    /// listeners close.  Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = self.state.lock().expect("reactor state poisoned");
            st.shutting_down = true;
        }
        self.wake.wake();
        let handle = self.thread.lock().expect("reactor thread slot").take();
        if let Some(handle) = handle {
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }

    // ---- internal: cross-thread entry points ----------------------------

    fn complete(&self, token: u64, driver: Box<dyn ConnDriver>, outcome: ReadyOutcome) {
        let mut st = self.state.lock().expect("reactor state poisoned");
        st.completions.push((token, driver, outcome));
        drop(st);
        self.wake.wake();
    }

    fn sink_send(&self, token: u64, frame: &[u8]) -> bool {
        let mut st = self.state.lock().expect("reactor state poisoned");
        let st = &mut *st;
        let Some(conn) = st.conns.get_mut(&token) else {
            return false;
        };
        let pending = conn.wbuf.len() - conn.wpos;
        if pending + frame.len() > SINK_BUFFER_CAP {
            // The remote has stalled past its buffer: disconnect and
            // count the shed rather than block or buffer unboundedly.
            self.ledger.record(conn.surface.name());
            if let Some(hook) = &conn.surface.on_shed {
                hook("push sink stalled past buffer cap");
            }
            Self::close_token(&self.epoll, st, token);
            return false;
        }
        conn.wbuf.extend_from_slice(frame);
        match Self::flush_conn(conn) {
            FlushResult::Gone => {
                Self::close_token(&self.epoll, st, token);
                false
            }
            FlushResult::Done => true,
            FlushResult::Pending => {
                let _ = self.epoll.modify(
                    conn.stream.as_raw_fd(),
                    EPOLLIN | EPOLLRDHUP | EPOLLOUT,
                    token,
                );
                true
            }
        }
    }

    fn sink_close(&self, token: u64) {
        let mut st = self.state.lock().expect("reactor state poisoned");
        Self::close_token(&self.epoll, &mut st, token);
        drop(st);
        // The reactor may be parked in epoll_wait with no timeout; wake
        // it so drain bookkeeping observes the closed connection.
        self.wake.wake();
    }

    fn sink_is_open(&self, token: u64) -> bool {
        self.state
            .lock()
            .expect("reactor state poisoned")
            .conns
            .contains_key(&token)
    }

    // ---- internal: reactor thread ---------------------------------------

    fn run(self: Arc<Self>) {
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 1024];
        loop {
            let timeout = {
                let st = self.state.lock().expect("reactor state poisoned");
                if st.finished {
                    break;
                }
                if st.shutting_down {
                    Some(50)
                } else {
                    st.wheel
                        .next_timeout(Instant::now())
                        .map(|d| d.as_millis() as u64 + 1)
                }
            };
            let n = match self.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(_) => continue,
            };
            let mut guard = self.state.lock().expect("reactor state poisoned");
            let st = &mut *guard;
            let now = Instant::now();

            for ev in &events[..n] {
                let token = ev.data;
                let bits = ev.events;
                if token == WAKE_TOKEN {
                    self.wake.drain();
                } else if st.listeners.contains_key(&token) {
                    self.accept_ready(st, token);
                } else if st.conns.contains_key(&token) {
                    self.conn_ready(st, token, bits);
                }
            }

            let completions = std::mem::take(&mut st.completions);
            for (token, driver, outcome) in completions {
                self.process_completion(st, token, driver, outcome);
            }

            for (token, gen) in st.wheel.expired(now) {
                let eligible = st.conns.get(&token).is_some_and(|c| {
                    !c.is_sink && c.gen == gen && matches!(c.phase, Phase::Parked)
                });
                if eligible {
                    Self::close_token(&self.epoll, st, token);
                    st.reaped_idle += 1;
                }
            }

            if st.shutting_down {
                self.drive_drain(st, now);
            }
        }
    }

    fn accept_ready(&self, st: &mut State, listener_token: u64) {
        loop {
            let (stream, surface, accepted) = {
                let entry = match st.listeners.get(&listener_token) {
                    Some(e) => e,
                    None => return,
                };
                match entry.listener.accept() {
                    Ok((stream, _addr)) => {
                        (stream, Arc::clone(&entry.surface), (entry.accept)())
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return,
                }
            };
            st.accepted += 1;
            if st.shutting_down {
                self.ledger.record(surface.name());
                surface.shed("server shutting down", &stream);
                continue;
            }
            if st.conns.len() >= self.config.max_parked {
                self.ledger.record(surface.name());
                surface.shed("parked-connection cap reached", &stream);
                continue;
            }
            match accepted {
                Accepted::Park(driver) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = st.next_token;
                    st.next_token += 1;
                    if self
                        .epoll
                        .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
                        .is_err()
                    {
                        continue;
                    }
                    st.wheel
                        .insert(token, 0, Instant::now() + self.config.idle_timeout);
                    st.conns.insert(
                        token,
                        Conn {
                            stream,
                            surface,
                            driver: Some(driver),
                            rbuf: Vec::new(),
                            wbuf: Vec::new(),
                            wpos: 0,
                            phase: Phase::Parked,
                            close_after: false,
                            gen: 0,
                            is_sink: false,
                        },
                    );
                }
                Accepted::Offload(job) => {
                    // The handshake blocks, so it must run on a worker;
                    // admission is decided here so saturation sheds at
                    // the accept edge (counted by the pool's own drop
                    // counter via the failed reservation).
                    match self.pool.try_permit() {
                        Ok(permit) => {
                            let reactor = self.self_arc();
                            let surface_for_job = Arc::clone(&surface);
                            permit.submit(move || {
                                job(stream, reactor, surface_for_job);
                            });
                        }
                        Err(SubmitError::Busy) => {
                            surface.shed("worker pool saturated", &stream);
                        }
                        Err(SubmitError::ShuttingDown) => {
                            self.ledger.record(surface.name());
                            surface.shed("server shutting down", &stream);
                        }
                    }
                }
            }
        }
    }

    /// An owning `Arc` of this reactor, recovered from the back-pointer.
    /// Only called on the reactor thread, which holds a strong `Arc` for
    /// its whole life, so the upgrade cannot fail.
    fn self_arc(&self) -> Arc<Reactor> {
        self.self_ref.upgrade().expect("reactor thread holds an Arc")
    }

    fn conn_ready(&self, st: &mut State, token: u64, bits: u32) {
        if bits & (EPOLLERR | EPOLLHUP) != 0 {
            Self::close_token(&self.epoll, st, token);
            return;
        }
        if bits & EPOLLOUT != 0 {
            self.conn_writable(st, token);
        }
        if bits & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.conn_readable(st, token);
        }
    }

    fn conn_readable(&self, st: &mut State, token: u64) {
        let Some(conn) = st.conns.get_mut(&token) else {
            return;
        };
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    Self::close_token(&self.epoll, st, token);
                    return;
                }
                Ok(n) => {
                    if conn.is_sink {
                        // Push channels are write-only; discard chatter.
                        continue;
                    }
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    Self::close_token(&self.epoll, st, token);
                    return;
                }
            }
        }
        if !conn.is_sink && matches!(conn.phase, Phase::Parked) {
            self.try_dispatch(st, token);
        }
    }

    fn conn_writable(&self, st: &mut State, token: u64) {
        let Some(conn) = st.conns.get_mut(&token) else {
            return;
        };
        match Self::flush_conn(conn) {
            FlushResult::Pending => {}
            FlushResult::Gone => Self::close_token(&self.epoll, st, token),
            FlushResult::Done => {
                if conn.is_sink {
                    let _ = self.epoll.modify(
                        conn.stream.as_raw_fd(),
                        EPOLLIN | EPOLLRDHUP,
                        token,
                    );
                } else if conn.close_after {
                    Self::close_token(&self.epoll, st, token);
                } else {
                    self.park(st, token);
                }
            }
        }
    }

    fn try_dispatch(self: &Reactor, st: &mut State, token: u64) {
        let Some(conn) = st.conns.get_mut(&token) else {
            return;
        };
        let Some(driver) = conn.driver.as_mut() else {
            return;
        };
        match driver.scan(&conn.rbuf) {
            FrameScan::Partial => {}
            FrameScan::Invalid(_why) => {
                Self::close_token(&self.epoll, st, token);
            }
            FrameScan::Complete(len) => {
                let frame: Vec<u8> = conn.rbuf.drain(..len).collect();
                match self.pool.try_permit() {
                    Ok(permit) => {
                        conn.phase = Phase::Dispatched;
                        let _ = self.epoll.modify(conn.stream.as_raw_fd(), 0, token);
                        let driver = conn.driver.take().expect("driver present when parked");
                        let reactor = self.self_arc();
                        permit.submit(move || {
                            let mut driver = driver;
                            let outcome = driver.handle(frame);
                            reactor.complete(token, driver, outcome);
                        });
                        st.frames_dispatched += 1;
                    }
                    Err(SubmitError::Busy) => {
                        // Counted by the pool's drop counter (the failed
                        // reservation); answer with the protocol's busy
                        // reply and close once it flushes.
                        if let Some(hook) = &conn.surface.on_shed {
                            hook("worker pool saturated");
                        }
                        match driver.busy_reply() {
                            Some(reply) => self.start_reply(st, token, reply, true),
                            None => Self::close_token(&self.epoll, st, token),
                        }
                    }
                    Err(SubmitError::ShuttingDown) => {
                        Self::close_token(&self.epoll, st, token);
                    }
                }
            }
        }
    }

    fn process_completion(
        &self,
        st: &mut State,
        token: u64,
        driver: Box<dyn ConnDriver>,
        outcome: ReadyOutcome,
    ) {
        let Some(conn) = st.conns.get_mut(&token) else {
            // The connection died (peer hangup, drain force-close) while
            // its frame was in flight; nothing to deliver.
            return;
        };
        conn.driver = Some(driver);
        match outcome {
            ReadyOutcome::Close => Self::close_token(&self.epoll, st, token),
            ReadyOutcome::Reply(bytes) => {
                // During drain, keep-alive ends here: deliver the reply,
                // then close instead of re-parking.
                let close_after = st.shutting_down;
                self.start_reply(st, token, bytes, close_after);
            }
            ReadyOutcome::ReplyClose(bytes) => self.start_reply(st, token, bytes, true),
        }
    }

    fn start_reply(&self, st: &mut State, token: u64, bytes: Vec<u8>, close_after: bool) {
        let Some(conn) = st.conns.get_mut(&token) else {
            return;
        };
        conn.wbuf = bytes;
        conn.wpos = 0;
        conn.close_after = close_after;
        match Self::flush_conn(conn) {
            FlushResult::Gone => Self::close_token(&self.epoll, st, token),
            FlushResult::Done => {
                if close_after {
                    Self::close_token(&self.epoll, st, token);
                } else {
                    self.park(st, token);
                }
            }
            FlushResult::Pending => {
                conn.phase = Phase::Flushing;
                let _ = self
                    .epoll
                    .modify(conn.stream.as_raw_fd(), EPOLLOUT, token);
            }
        }
    }

    /// Re-parks a connection after a completed frame: fresh idle
    /// deadline (the only place one is re-armed), read interest back on,
    /// and an immediate re-scan for a pipelined next frame.
    fn park(&self, st: &mut State, token: u64) {
        let idle = self.config.idle_timeout;
        {
            let Some(conn) = st.conns.get_mut(&token) else {
                return;
            };
            conn.phase = Phase::Parked;
            conn.gen += 1;
            let gen = conn.gen;
            let _ = self
                .epoll
                .modify(conn.stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token);
            st.wheel.insert(token, gen, Instant::now() + idle);
        }
        self.try_dispatch(st, token);
    }

    fn flush_conn(conn: &mut Conn) -> FlushResult {
        while conn.wpos < conn.wbuf.len() {
            match (&conn.stream).write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => return FlushResult::Gone,
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return FlushResult::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return FlushResult::Gone,
            }
        }
        conn.wbuf.clear();
        conn.wpos = 0;
        FlushResult::Done
    }

    fn close_token(epoll: &Epoll, st: &mut State, token: u64) {
        if let Some(conn) = st.conns.remove(&token) {
            // Dropping the stream closes the fd; the explicit delete
            // covers streams with a still-open duplicate (handshake
            // clones), which closing alone would not deregister.
            let _ = epoll.delete(conn.stream.as_raw_fd());
        }
    }

    fn drive_drain(&self, st: &mut State, now: Instant) {
        if !st.drain_started {
            st.drain_started = true;
            st.drain_deadline = Some(now + DRAIN_FLUSH_GRACE);
            let idle: Vec<u64> = st
                .conns
                .iter()
                .filter(|(_, c)| c.is_sink || matches!(c.phase, Phase::Parked))
                .map(|(t, _)| *t)
                .collect();
            for token in idle {
                Self::close_token(&self.epoll, st, token);
            }
        }
        if let Some(deadline) = st.drain_deadline {
            if now >= deadline {
                let stuck: Vec<u64> = st
                    .conns
                    .iter()
                    .filter(|(_, c)| matches!(c.phase, Phase::Flushing))
                    .map(|(t, _)| *t)
                    .collect();
                for token in stuck {
                    Self::close_token(&self.epoll, st, token);
                }
            }
        }
        if st.conns.is_empty() {
            for (_, entry) in st.listeners.drain() {
                let _ = self.epoll.delete(entry.listener.as_raw_fd());
                let (lock, cvar) = &*entry.handle;
                *lock.lock().expect("listener handle poisoned") = true;
                cvar.notify_all();
            }
            st.finished = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use std::net::TcpStream as ClientStream;

    /// Newline-framed echo: replies with the same line, uppercased.
    /// `QUIT` asks for reply-then-close.
    struct EchoDriver;

    impl ConnDriver for EchoDriver {
        fn scan(&mut self, buf: &[u8]) -> FrameScan {
            match buf.iter().position(|&b| b == b'\n') {
                Some(i) => FrameScan::Complete(i + 1),
                None if buf.len() > 1024 => FrameScan::Invalid("line too long"),
                None => FrameScan::Partial,
            }
        }

        fn handle(&mut self, frame: Vec<u8>) -> ReadyOutcome {
            let upper: Vec<u8> = frame.to_ascii_uppercase();
            if frame.starts_with(b"QUIT") {
                ReadyOutcome::ReplyClose(upper)
            } else {
                ReadyOutcome::Reply(upper)
            }
        }

        fn busy_reply(&mut self) -> Option<Vec<u8>> {
            Some(b"BUSY\n".to_vec())
        }
    }

    fn rig(
        max_parked: usize,
        idle: Duration,
    ) -> (Arc<WorkerPool>, Arc<ShedLedger>, Arc<Reactor>) {
        let pool = WorkerPool::new(PoolConfig::new("reactor-test", 2, 8));
        let ledger = Arc::new(ShedLedger::new());
        let reactor = Reactor::start(
            Arc::clone(&pool),
            Arc::clone(&ledger),
            ReactorConfig {
                max_parked,
                idle_timeout: idle,
            },
        )
        .expect("start reactor");
        (pool, ledger, reactor)
    }

    fn echo_listener(reactor: &Arc<Reactor>) -> (std::net::SocketAddr, ListenerHandle) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = reactor
            .register_listener(
                listener,
                Surface::new("echo").with_shed_reply(|why| format!("SHED {why}\n").into_bytes()),
                Box::new(|| Accepted::Park(Box::new(EchoDriver))),
            )
            .expect("register");
        (addr, handle)
    }

    fn read_line(stream: &mut ClientStream) -> String {
        let mut out = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            match stream.read(&mut byte) {
                Ok(0) => break,
                Ok(_) => {
                    out.push(byte[0]);
                    if byte[0] == b'\n' {
                        break;
                    }
                }
                Err(e) => panic!("read_line: {e}"),
            }
        }
        String::from_utf8(out).expect("utf8 line")
    }

    #[test]
    fn keep_alive_roundtrips_park_between_frames() {
        let (pool, _ledger, reactor) = rig(64, Duration::from_secs(10));
        let (addr, _handle) = echo_listener(&reactor);

        let mut c = ClientStream::connect(addr).expect("connect");
        for i in 0..3 {
            c.write_all(format!("hello {i}\n").as_bytes()).unwrap();
            assert_eq!(read_line(&mut c), format!("HELLO {i}\n"));
        }
        // Between frames the connection is parked, not on a worker.
        let start = Instant::now();
        loop {
            let stats = reactor.stats();
            if stats.parked == 1 && pool.stats().in_flight == 0 {
                break;
            }
            assert!(start.elapsed() < Duration::from_secs(5), "{stats:?}");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(reactor.stats().frames_dispatched, 3);

        c.write_all(b"QUIT\n").unwrap();
        assert_eq!(read_line(&mut c), "QUIT\n");
        let mut rest = Vec::new();
        c.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "closed after QUIT reply");

        reactor.shutdown();
        pool.shutdown();
    }

    #[test]
    fn partial_frames_buffer_without_consuming_a_worker() {
        let (pool, _ledger, reactor) = rig(64, Duration::from_secs(10));
        let (addr, _handle) = echo_listener(&reactor);

        let mut c = ClientStream::connect(addr).expect("connect");
        // Dribble a frame byte by byte; until the newline arrives the
        // connection stays parked and the pool sees nothing.
        for &b in b"slow" {
            c.write_all(&[b]).unwrap();
            std::thread::sleep(Duration::from_millis(20));
        }
        let stats = reactor.stats();
        assert_eq!(stats.frames_dispatched, 0, "no frame yet");
        assert_eq!(pool.stats().in_flight, 0, "no worker consumed");
        assert_eq!(stats.parked, 1, "parked with a partial frame buffered");

        c.write_all(b"\n").unwrap();
        assert_eq!(read_line(&mut c), "SLOW\n");

        reactor.shutdown();
        pool.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped_by_the_timer_wheel() {
        let (pool, _ledger, reactor) = rig(64, Duration::from_millis(300));
        let (addr, _handle) = echo_listener(&reactor);

        let mut c = ClientStream::connect(addr).expect("connect");
        c.write_all(b"ping\n").unwrap();
        assert_eq!(read_line(&mut c), "PING\n");

        // Idle past the deadline: the wheel reaps the parked connection.
        let mut eof = Vec::new();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.read_to_end(&mut eof).expect("reaped => EOF");
        assert!(eof.is_empty());
        let start = Instant::now();
        while reactor.stats().reaped_idle == 0 {
            assert!(start.elapsed() < Duration::from_secs(5));
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(reactor.stats().open_connections, 0);

        reactor.shutdown();
        pool.shutdown();
    }

    #[test]
    fn parked_cap_sheds_into_the_ledger_with_a_reply() {
        let (pool, ledger, reactor) = rig(2, Duration::from_secs(10));
        let (addr, _handle) = echo_listener(&reactor);

        let mut keep = Vec::new();
        for i in 0..2 {
            let mut c = ClientStream::connect(addr).expect("connect");
            c.write_all(format!("warm {i}\n").as_bytes()).unwrap();
            assert_eq!(read_line(&mut c), format!("WARM {i}\n"));
            keep.push(c);
        }
        // Third connection breaches the cap: shed reply + ledger count.
        let mut c3 = ClientStream::connect(addr).expect("connect");
        c3.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let line = read_line(&mut c3);
        assert!(line.contains("SHED"), "{line:?}");
        assert!(line.contains("parked-connection cap"), "{line:?}");
        assert_eq!(ledger.total(), 1);
        assert_eq!(ledger.by_surface(), vec![("echo".to_owned(), 1)]);

        reactor.shutdown();
        pool.shutdown();
    }

    #[test]
    fn drain_closes_parked_conns_and_sheds_late_accepts() {
        let (pool, ledger, reactor) = rig(64, Duration::from_secs(10));
        let (addr, handle) = echo_listener(&reactor);

        let mut parked = ClientStream::connect(addr).expect("connect");
        parked.write_all(b"warm\n").unwrap();
        assert_eq!(read_line(&mut parked), "WARM\n");

        let r2 = Arc::clone(&reactor);
        let closer = std::thread::spawn(move || r2.shutdown());

        // The parked connection is closed by the drain.
        parked
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut eof = Vec::new();
        parked.read_to_end(&mut eof).expect("drained => EOF");
        assert!(eof.is_empty());

        closer.join().expect("shutdown returns");
        handle.wait();
        assert!(reactor.is_shutting_down());

        // A connection after drain completes is refused outright (the
        // listener is closed) — and any accepted during the drain window
        // was answered with the shed reply and counted.  Either way no
        // new work was admitted.
        match ClientStream::connect(addr) {
            Err(_) => {}
            Ok(mut late) => {
                late.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
                let mut buf = Vec::new();
                let _ = late.read_to_end(&mut buf);
                if !buf.is_empty() {
                    let line = String::from_utf8_lossy(&buf);
                    assert!(line.contains("SHED"), "{line}");
                    assert!(ledger.total() >= 1);
                }
            }
        }
        pool.shutdown();
    }
}
