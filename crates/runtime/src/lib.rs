//! The unified bounded server runtime.
//!
//! Every Snowflake server — RMI skeletons, the HTTP servers and the MAC
//! establishment path, revocation push distribution, the quoting gateway —
//! serves from the same small runtime instead of growing its own
//! thread-per-connection accept loop:
//!
//! * [`BoundedQueue`] — mutex/condvar MPMC queues with a hard capacity, a
//!   measurable drop counter, and slot [reservations](queue::Reservation)
//!   so admission can be decided while the caller still holds the
//!   connection.
//! * [`WorkerPool`] — a fixed number of worker threads over one bounded
//!   queue.  Saturation is *shed* (503/BUSY at the protocol layer), never
//!   silently queued; shutdown drains accepted work and joins.
//! * [`Scheduler`] — a monotonic-clock timer for background jobs
//!   (pre-expiry CRL refresh, cache sweeps); repeating jobs pace
//!   themselves by returning their next delay.
//! * [`ServerRuntime`] — the bundle servers actually take: one pool, one
//!   scheduler, one shutdown.
//!
//! The policy this crate enforces workspace-wide: **no server accept path
//! outside this crate calls `thread::spawn`, and every queue in the
//! serving path has a capacity and a drop counter** (`scripts/verify.sh`
//! greps for regressions).  The one sanctioned escape hatch for genuinely
//! dedicated blocking loops (a push-subscription reader parked in
//! `recv()`) is [`spawn_thread`], which keeps even those spawns inside
//! this crate.

#![deny(missing_docs)]

pub mod pool;
pub mod queue;
pub mod scheduler;

pub use pool::{Job, JobPermit, PoolConfig, RuntimeStats, SubmitError, WorkerPool};
pub use queue::{BoundedQueue, QueueError};
pub use scheduler::{Scheduler, TaskHandle};

use std::sync::Arc;

/// Spawns a named dedicated thread for a long-lived *blocking* loop (a
/// transport reader parked in `recv()`) that would otherwise pin a pool
/// worker forever.  This is the only sanctioned thread spawn outside the
/// pool and scheduler internals; request handling belongs on a
/// [`WorkerPool`].
pub fn spawn_thread<T: Send + 'static>(
    name: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> std::thread::JoinHandle<T> {
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        .expect("spawn dedicated runtime thread")
}

/// The bundle a server takes: one worker pool for connection/request
/// handling and one scheduler for background jobs, with a single
/// graceful shutdown.
pub struct ServerRuntime {
    pool: Arc<WorkerPool>,
    scheduler: Scheduler,
}

impl ServerRuntime {
    /// Builds a runtime from a pool configuration.
    pub fn new(config: PoolConfig) -> Arc<ServerRuntime> {
        Arc::new(ServerRuntime {
            pool: WorkerPool::new(config),
            scheduler: Scheduler::new(),
        })
    }

    /// The connection/request worker pool.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The background-job scheduler.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Pool counters (submitted, completed, shed, depth, in-flight).
    pub fn stats(&self) -> RuntimeStats {
        self.pool.stats()
    }

    /// Has shutdown begun?
    pub fn is_shutting_down(&self) -> bool {
        self.pool.is_shutting_down()
    }

    /// Graceful shutdown: stop admitting connections, drain in-flight and
    /// queued work, stop the scheduler, join every thread.
    pub fn shutdown(&self) {
        self.pool.shutdown();
        self.scheduler.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    #[test]
    fn runtime_bundles_pool_and_scheduler() {
        let rt = ServerRuntime::new(PoolConfig::new("bundle", 2, 4));
        let ran = Arc::new(AtomicU32::new(0));
        let r = Arc::clone(&ran);
        rt.pool().submit(move || {
            r.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        let r = Arc::clone(&ran);
        rt.scheduler().schedule_once(Duration::ZERO, move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        let start = std::time::Instant::now();
        while ran.load(Ordering::SeqCst) < 2 {
            assert!(start.elapsed().as_secs() < 5);
            std::thread::yield_now();
        }
        rt.shutdown();
        assert!(rt.is_shutting_down());
        assert_eq!(rt.stats().completed, 1);
        assert!(matches!(
            rt.pool().submit(|| {}),
            Err(SubmitError::ShuttingDown)
        ));
    }

    #[test]
    fn spawn_thread_names_and_joins() {
        let handle = spawn_thread("sf-test-loop", || {
            assert_eq!(
                std::thread::current().name(),
                Some("sf-test-loop"),
                "dedicated threads carry their name"
            );
            7u32
        });
        assert_eq!(handle.join().unwrap(), 7);
    }
}
