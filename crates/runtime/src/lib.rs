//! The unified bounded server runtime.
//!
//! Every Snowflake server — RMI skeletons, the HTTP servers and the MAC
//! establishment path, revocation push distribution, the quoting gateway —
//! serves from the same small runtime instead of growing its own
//! thread-per-connection accept loop:
//!
//! * [`BoundedQueue`] — mutex/condvar MPMC queues with a hard capacity, a
//!   measurable drop counter, and slot [reservations](queue::Reservation)
//!   so admission can be decided while the caller still holds the
//!   connection.
//! * [`WorkerPool`] — a fixed number of worker threads over one bounded
//!   queue.  Saturation is *shed* (503/BUSY at the protocol layer), never
//!   silently queued; shutdown drains accepted work and joins.
//! * [`Scheduler`] — a monotonic-clock timer for background jobs
//!   (pre-expiry CRL refresh, cache sweeps); repeating jobs pace
//!   themselves by returning their next delay.
//! * [`ServerRuntime`] — the bundle servers actually take: one pool, one
//!   scheduler, one shutdown.
//!
//! The policy this crate enforces workspace-wide: **no server accept path
//! outside this crate calls `thread::spawn`, and every queue in the
//! serving path has a capacity and a drop counter** (`scripts/verify.sh`
//! greps for regressions).  The one sanctioned escape hatch for genuinely
//! dedicated blocking loops (a push-subscription reader parked in
//! `recv()`) is [`spawn_thread`], which keeps even those spawns inside
//! this crate.

#![deny(missing_docs)]

pub mod pool;
pub mod queue;
pub mod reactor;
pub mod scheduler;
pub mod shed;

pub use pool::{Job, JobPermit, PoolConfig, RuntimeStats, SubmitError, WorkerPool};
pub use queue::{BoundedQueue, QueueError};
pub use reactor::sys::{nofile_limit, raise_nofile_limit};
pub use reactor::{
    Accepted, AcceptFn, ConnDriver, FrameScan, ListenerHandle, OffloadJob, Reactor,
    ReactorConfig, ReactorStats, ReadyOutcome, SinkHandle, Surface, SINK_BUFFER_CAP,
};
pub use scheduler::{Scheduler, TaskHandle};
pub use shed::ShedLedger;

use std::sync::{Arc, OnceLock};

/// Spawns a named dedicated thread for a long-lived *blocking* loop (a
/// transport reader parked in `recv()`) that would otherwise pin a pool
/// worker forever.  This is the only sanctioned thread spawn outside the
/// pool and scheduler internals; request handling belongs on a
/// [`WorkerPool`].
pub fn spawn_thread<T: Send + 'static>(
    name: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> std::thread::JoinHandle<T> {
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        .expect("spawn dedicated runtime thread")
}

/// The bundle a server takes: one worker pool for connection/request
/// handling, one scheduler for background jobs, one connection reactor
/// (started lazily on first use), and a single graceful shutdown.
pub struct ServerRuntime {
    pool: Arc<WorkerPool>,
    scheduler: Scheduler,
    ledger: Arc<ShedLedger>,
    reactor_config: ReactorConfig,
    reactor: OnceLock<Arc<Reactor>>,
}

impl ServerRuntime {
    /// Builds a runtime from a pool configuration, with default reactor
    /// tuning.
    pub fn new(config: PoolConfig) -> Arc<ServerRuntime> {
        Self::with_reactor_config(config, ReactorConfig::default())
    }

    /// Builds a runtime with explicit reactor tuning (connection cap,
    /// idle timeout).
    pub fn with_reactor_config(
        config: PoolConfig,
        reactor_config: ReactorConfig,
    ) -> Arc<ServerRuntime> {
        Arc::new(ServerRuntime {
            pool: WorkerPool::new(config),
            scheduler: Scheduler::new(),
            ledger: Arc::new(ShedLedger::new()),
            reactor_config,
            reactor: OnceLock::new(),
        })
    }

    /// The connection/request worker pool.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The background-job scheduler.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The connection reactor, started on first use.  Every server
    /// surface registers its listeners (and adopts its handshaken or
    /// sink connections) here; no surface touches a socket itself.
    pub fn reactor(&self) -> &Arc<Reactor> {
        self.reactor.get_or_init(|| {
            Reactor::start(
                Arc::clone(&self.pool),
                Arc::clone(&self.ledger),
                self.reactor_config.clone(),
            )
            .expect("start connection reactor")
        })
    }

    /// The shared shed ledger counting reactor-level refusals (the pool
    /// counts its own queue drops separately; [`stats`](Self::stats)
    /// folds both into one number).
    pub fn shed_ledger(&self) -> &Arc<ShedLedger> {
        &self.ledger
    }

    /// Reactor counters (parked connections, reaps, dispatches); zeros
    /// if no surface has used the reactor yet.
    pub fn reactor_stats(&self) -> ReactorStats {
        self.reactor
            .get()
            .map(|r| r.stats())
            .unwrap_or_default()
    }

    /// Runtime counters.  `shed` is the single ledger the operator
    /// watches: pool queue drops *plus* reactor-level refusals
    /// (parked-connection cap, drain-time accepts, stalled sinks).
    pub fn stats(&self) -> RuntimeStats {
        let mut stats = self.pool.stats();
        stats.shed += self.ledger.total();
        stats
    }

    /// Shed counts broken down by where they happened: `"pool"` for
    /// queue-full drops, plus one row per surface for reactor-level
    /// refusals.
    pub fn sheds_by_surface(&self) -> Vec<(String, u64)> {
        let mut rows = vec![("pool".to_owned(), self.pool.stats().shed)];
        rows.extend(self.ledger.by_surface());
        rows
    }

    /// Registers scrape-time callbacks exposing [`RuntimeStats`],
    /// [`ReactorStats`], and the per-surface shed ledger in a metrics
    /// registry — the same atomics [`stats`](Self::stats) reads, so a
    /// scrape can never disagree with the stats API.  Idempotent: the
    /// collector is stored under the id `"runtime"` and re-registration
    /// replaces it (a process is expected to have one serving runtime).
    pub fn register_metrics(self: &Arc<Self>, registry: &snowflake_metrics::Registry) {
        use snowflake_metrics::Sample;
        registry.set_help(
            "sf_sheds_total",
            "Requests refused under overload, by origin (pool queue or reactor surface)",
        );
        registry.set_help("sf_pool_queue_depth", "Jobs waiting in the worker-pool queue");
        let rt = Arc::downgrade(self);
        registry.register_collector(
            "runtime",
            Arc::new(move |out: &mut Vec<Sample>| {
                let Some(rt) = rt.upgrade() else { return };
                let pool = rt.pool.stats();
                out.push(Sample::gauge("sf_pool_workers", &[], pool.workers as f64));
                out.push(Sample::gauge(
                    "sf_pool_queue_capacity",
                    &[],
                    pool.queue_capacity as f64,
                ));
                out.push(Sample::gauge("sf_pool_queue_depth", &[], pool.queue_depth as f64));
                out.push(Sample::gauge("sf_pool_in_flight", &[], pool.in_flight as f64));
                out.push(Sample::counter("sf_jobs_submitted_total", &[], pool.submitted));
                out.push(Sample::counter("sf_jobs_completed_total", &[], pool.completed));
                out.push(Sample::counter("sf_sheds_total", &[("origin", "pool")], pool.shed));
                for (surface, n) in rt.ledger.by_surface() {
                    out.push(Sample::counter(
                        "sf_sheds_total",
                        &[("origin", "reactor"), ("surface", &surface)],
                        n,
                    ));
                }
                let r = rt.reactor_stats();
                out.push(Sample::gauge("sf_conns_open", &[], r.open_connections as f64));
                out.push(Sample::gauge("sf_conns_parked", &[], r.parked as f64));
                out.push(Sample::gauge("sf_sinks_open", &[], r.open_sinks as f64));
                out.push(Sample::counter("sf_conns_accepted_total", &[], r.accepted));
                out.push(Sample::counter("sf_conns_adopted_total", &[], r.adopted));
                out.push(Sample::counter("sf_conns_reaped_idle_total", &[], r.reaped_idle));
                out.push(Sample::counter(
                    "sf_frames_dispatched_total",
                    &[],
                    r.frames_dispatched,
                ));
            }),
        );
    }

    /// Has shutdown begun?
    pub fn is_shutting_down(&self) -> bool {
        self.pool.is_shutting_down()
            || self.reactor.get().is_some_and(|r| r.is_shutting_down())
    }

    /// Graceful shutdown: drain the reactor first (parked connections
    /// close, dispatched frames complete and flush while the pool still
    /// runs), then drain and join the pool, then stop the scheduler.
    pub fn shutdown(&self) {
        if let Some(reactor) = self.reactor.get() {
            reactor.shutdown();
        }
        self.pool.shutdown();
        self.scheduler.shutdown();
    }
}

impl Drop for ServerRuntime {
    fn drop(&mut self) {
        // The reactor thread holds an Arc of itself; without an explicit
        // drain it would outlive the runtime.  Idempotent if the owner
        // already called shutdown().
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    #[test]
    fn runtime_bundles_pool_and_scheduler() {
        let rt = ServerRuntime::new(PoolConfig::new("bundle", 2, 4));
        let ran = Arc::new(AtomicU32::new(0));
        let r = Arc::clone(&ran);
        rt.pool().submit(move || {
            r.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        let r = Arc::clone(&ran);
        rt.scheduler().schedule_once(Duration::ZERO, move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        let start = std::time::Instant::now();
        while ran.load(Ordering::SeqCst) < 2 {
            assert!(start.elapsed().as_secs() < 5);
            std::thread::yield_now();
        }
        rt.shutdown();
        assert!(rt.is_shutting_down());
        assert_eq!(rt.stats().completed, 1);
        assert!(matches!(
            rt.pool().submit(|| {}),
            Err(SubmitError::ShuttingDown)
        ));
    }

    #[test]
    fn spawn_thread_names_and_joins() {
        let handle = spawn_thread("sf-test-loop", || {
            assert_eq!(
                std::thread::current().name(),
                Some("sf-test-loop"),
                "dedicated threads carry their name"
            );
            7u32
        });
        assert_eq!(handle.join().unwrap(), 7);
    }
}
