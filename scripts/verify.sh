#!/usr/bin/env sh
# Tier-1 verification for the Snowflake workspace, plus the doc build.
# Everything runs offline: all dependencies are in-tree (see crates/shims/).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo doc --no-deps"
cargo doc --no-deps --offline

echo "==> contention + freshness benches (smoke mode: one iteration each)"
SF_BENCH_SMOKE=1 cargo bench -q -p snowflake-bench --offline \
    --bench prover_contention --bench mac_contention \
    --bench revocation_freshness

echo "==> all green"
