#!/usr/bin/env sh
# Tier-1 verification for the Snowflake workspace, plus the doc build.
# Everything runs offline: all dependencies are in-tree (see crates/shims/).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo doc --no-deps"
cargo doc --no-deps --offline

echo "==> contention + freshness + saturation + audit + wal + scaling + fanout + crypto + table1 + metrics benches (smoke mode: one iteration each)"
SF_BENCH_SMOKE=1 cargo bench -q -p snowflake-bench --offline \
    --bench prover_contention --bench mac_contention \
    --bench revocation_freshness --bench runtime_saturation \
    --bench audit_throughput --bench wal_throughput \
    --bench connection_scaling --bench broker_fanout \
    --bench crypto_primitives --bench table1_breakdown \
    --bench metrics_overhead

echo "==> crash-recovery suites (byte-boundary fault injection)"
# The durability claim is only as good as the harness that attacks it:
# run the reldb WAL sweep and the full-stack restart suite explicitly,
# even though `cargo test` above already covered them — a future change
# that deletes or renames the suites must fail loudly here.
cargo test -q --offline -p snowflake-reldb --test recovery
cargo test -q --offline -p snowflake --test recovery

echo "==> connection-layer suites (slow-loris, drain-with-parked, reactor serving/push)"
# Same reasoning: the reactor's load-bearing behaviors — a slow-loris
# client parks without consuming a worker until the timer wheel reaps
# it, shutdown drains in-flight frames then closes parked connections,
# RMI sessions park between invocations, stalled push subscribers are
# shed — each have a named suite that must keep existing and passing.
cargo test -q --offline -p snowflake-http --test connection_reactor
cargo test -q --offline -p snowflake-rmi --test reactor_serving
cargo test -q --offline -p snowflake-revocation --test reactor_push

echo "==> verification fast-path suites (modpow vs reference, batch pinpointing, memo soundness)"
# The fast paths are optimizations of an unchanged acceptance predicate,
# and each has a suite proving it against the slow reference: bigint
# sliding-window/fixed-base modpow vs square-and-multiply, batched
# Schnorr accepts iff every member verifies individually (bit-flips are
# pinpointed), and the verified-chain memo answers byte-identically to a
# cold context while staying revocation-sound.  A change that deletes or
# renames these suites must fail loudly here.
cargo test -q --offline -p snowflake-bigint --test props
cargo test -q --offline -p snowflake-crypto --test batch_props
cargo test -q --offline -p snowflake-core --test chain_memo

echo "==> broker suites (authz facade, subscribe-as-action, revocation-push cuts)"
# The broker's claims — authz answers fail closed on malformed bodies,
# subscribe is authorized exactly once and revalidated by push, a
# stalled subscriber is shed without harming healthy ones, one
# revocation cuts exactly the poisoned streams with a verifiable audit
# trail — each have a named suite that must keep existing and passing.
cargo test -q --offline -p snowflake-broker --test broker
cargo test -q --offline -p snowflake --test broker_e2e

echo "==> metrics suites (exposition golden file, bucket/quantile props, live full-stack /metrics scrape)"
# The metrics plane's claims — the Prometheus exposition format is
# byte-stable, log-bucket quantiles are monotone, concurrent recording
# loses nothing, and a live scrape over TCP shows every serving surface's
# latency histogram plus the shed and cache counters — each have a named
# suite that must keep existing and passing.  The e2e run is the smoke
# curl of GET /metrics under real traffic on the reactor.
cargo test -q --offline -p snowflake-metrics --test golden
cargo test -q --offline -p snowflake-metrics --test props
cargo test -q --offline -p snowflake-metrics --test stress
cargo test -q --offline -p snowflake --test metrics_e2e

echo "==> runtime gate: no raw thread::spawn in server accept paths"
# Every server serves from crates/runtime (bounded pools, counted sheds).
# This gate fails if a serving-path source file regrows a raw
# thread::spawn outside its #[cfg(test)] module; the only sanctioned
# spawns live inside crates/runtime itself.
gate_failed=0
for f in \
    crates/http/src/server.rs crates/http/src/stream.rs \
    crates/http/src/mac.rs crates/http/src/client.rs \
    crates/rmi/src/server.rs crates/rmi/src/client.rs \
    crates/revocation/src/service.rs crates/revocation/src/freshness.rs \
    crates/channel/src/transport.rs crates/channel/src/secure.rs \
    crates/apps/src/gateway.rs crates/apps/src/webserver.rs \
    crates/apps/src/emaildb.rs \
    crates/broker/src/authz.rs crates/broker/src/topic.rs; do
    if awk '/#\[cfg\(test\)\]/{exit} /thread::spawn/{print FILENAME": "NR": "$0; found=1} END{exit found}' "$f"; then
        :
    else
        gate_failed=1
    fi
done
if [ "$gate_failed" -ne 0 ]; then
    echo "FAIL: raw thread::spawn in a server accept path (use snowflake-runtime)"
    exit 1
fi

echo "==> reactor gate: no server surface does its own socket accept/read"
# The connection layer owns every listening and parked socket: a server
# surface registers an accept callback / ConnDriver with the reactor and
# never calls accept() or drives a TcpStream read loop itself.  This
# gate fails if a surface file regrows a direct accept loop or a
# blocking per-connection stream read outside its #[cfg(test)] module
# (the only sanctioned socket loops live in crates/runtime/src/reactor).
reactor_gate_failed=0
for f in \
    crates/http/src/server.rs \
    crates/rmi/src/server.rs \
    crates/revocation/src/service.rs \
    crates/apps/src/gateway.rs crates/apps/src/webserver.rs \
    crates/apps/src/emaildb.rs crates/apps/src/vfs.rs \
    crates/broker/src/authz.rs crates/broker/src/topic.rs; do
    [ -f "$f" ] || continue
    if awk '/#\[cfg\(test\)\]/{exit}
            /\.accept\(|\.incoming\(|read_to_end\(|read_exact\(|BufReader::new\(.*TcpStream/{
                print FILENAME": "NR": "$0; found=1
            } END{exit found}' "$f"; then
        :
    else
        reactor_gate_failed=1
    fi
done
if [ "$reactor_gate_failed" -ne 0 ]; then
    echo "FAIL: a server surface accepts or reads sockets outside the reactor (see snowflake-runtime reactor)"
    exit 1
fi

echo "==> audit gate: every server decision path emits audit events"
# Each file that decides grants/denies/sheds/revocations must call its
# audit emitter (self.audit(...), audit_shed(...), or emitter.emit(...))
# outside its #[cfg(test)] module.  A decision path that stops emitting
# silently breaks the tamper-evident trail; this gate makes that loud.
audit_gate_failed=0
for f in \
    crates/http/src/server.rs \
    crates/rmi/src/server.rs \
    crates/apps/src/gateway.rs \
    crates/apps/src/emaildb.rs \
    crates/revocation/src/bus.rs \
    crates/broker/src/authz.rs crates/broker/src/topic.rs; do
    if awk '/#\[cfg\(test\)\]/{exit} /self\.audit\(|audit_shed\(|\.emit\(/{found=1} END{exit !found}' "$f"; then
        :
    else
        echo "$f: no audit emit call in a decision path"
        audit_gate_failed=1
    fi
done
if [ "$audit_gate_failed" -ne 0 ]; then
    echo "FAIL: a server decision path lacks an audit emit call (see snowflake-audit)"
    exit 1
fi

echo "==> memo gate: server surfaces verify through the memoized entry points"
# Every server-facing verification must flow through VerifyCtx::authorize
# or VerifyCtx::verify_cached so the verified-chain memo (and its
# revocation eviction) covers it.  This gate fails if a surface file
# regrows a direct proof.authorizes(...) / proof.verify(...) call outside
# its #[cfg(test)] module — a call site that silently bypasses the memo
# *and* its push-eviction wiring.
memo_gate_failed=0
for f in \
    crates/http/src/server.rs \
    crates/rmi/src/server.rs \
    crates/broker/src/authz.rs crates/broker/src/topic.rs \
    crates/apps/src/gateway.rs; do
    if awk '/#\[cfg\(test\)\]/{exit} /\.authorizes\(|proof\.verify\(/{print FILENAME": "NR": "$0; found=1} END{exit found}' "$f"; then
        :
    else
        memo_gate_failed=1
    fi
done
if [ "$memo_gate_failed" -ne 0 ]; then
    echo "FAIL: a server surface verifies proofs without the verified-chain memo (use VerifyCtx::authorize / verify_cached)"
    exit 1
fi

echo "==> metrics gate: every serving surface records request latency"
# Each server surface must keep recording into its per-surface
# LatencyHistogram (request_histogram + a start_timer guard or an
# explicit record) outside its #[cfg(test)] module; a surface that goes
# quiet disappears from /metrics without failing any functional test.
metrics_gate_failed=0
for f in \
    crates/http/src/server.rs \
    crates/rmi/src/server.rs \
    crates/broker/src/authz.rs crates/broker/src/topic.rs \
    crates/apps/src/gateway.rs; do
    if awk '/#\[cfg\(test\)\]/{exit} /request_histogram|start_timer|\.record\(|LatencyHistogram/{found=1} END{exit !found}' "$f"; then
        :
    else
        echo "$f: no latency-histogram recording in a serving path"
        metrics_gate_failed=1
    fi
done
if [ "$metrics_gate_failed" -ne 0 ]; then
    echo "FAIL: a serving surface stopped recording request latency (see snowflake-metrics)"
    exit 1
fi

echo "==> durability gate: every durable write path keeps its crash hook"
# The fault-injection harness can only kill writes that flow through
# CrashPoint; a durable write path that bypasses it silently escapes the
# byte-boundary sweeps.  This gate fails if any durable store loses its
# CrashPoint reference outside its #[cfg(test)] module.
durable_gate_failed=0
for f in \
    crates/reldb/src/wal.rs \
    crates/audit/src/backend.rs \
    crates/revocation/src/persist.rs; do
    if awk '/#\[cfg\(test\)\]/{exit} /CrashPoint|crash\./{found=1} END{exit !found}' "$f"; then
        :
    else
        echo "$f: durable writes no longer flow through CrashPoint"
        durable_gate_failed=1
    fi
done
if [ "$durable_gate_failed" -ne 0 ]; then
    echo "FAIL: a durable write path lost its fault-injection hook (see snowflake-core durable)"
    exit 1
fi

echo "==> all green"
