//! Snowflake: end-to-end authorization (Howell & Kotz, OSDI 2000).
//!
//! This facade crate re-exports every workspace member; see the README for
//! the architecture overview and each member crate for its subsystem:
//! [`snowflake_core`] (the logic of authority), [`snowflake_prover`],
//! [`snowflake_channel`], [`snowflake_rmi`], [`snowflake_http`],
//! [`snowflake_revocation`] (live revocation: validator service,
//! freshness agent, push invalidation), [`snowflake_runtime`] (the
//! bounded worker-pool/scheduler runtime every server serves from),
//! [`snowflake_audit`] (the tamper-evident decision log: hash-chained,
//! periodically signed records of every grant/deny/shed/revocation),
//! [`snowflake_broker`] (the authz-endpoint facade answering
//! path-vector allow/deny questions over HTTP, and the protected topic
//! broker where `subscribe` is a first-class authorized action
//! revalidated by revocation push),
//! [`snowflake_metrics`] (the operator-facing metrics plane: lock-free
//! counters/gauges/latency histograms in a labeled registry rendering
//! the Prometheus text format, served by `GET /metrics`),
//! [`snowflake_apps`], and the substrates [`snowflake_sexpr`],
//! [`snowflake_tags`], [`snowflake_crypto`], [`snowflake_bigint`],
//! [`snowflake_reldb`].

pub use snowflake_apps as apps;
pub use snowflake_audit as audit;
pub use snowflake_bigint as bigint;
pub use snowflake_broker as broker;
pub use snowflake_channel as channel;
pub use snowflake_core as core;
pub use snowflake_crypto as crypto;
pub use snowflake_http as http;
pub use snowflake_metrics as metrics;
pub use snowflake_prover as prover;
pub use snowflake_reldb as reldb;
pub use snowflake_revocation as revocation;
pub use snowflake_rmi as rmi;
pub use snowflake_runtime as runtime;
pub use snowflake_sexpr as sexpr;
pub use snowflake_tags as tags;
