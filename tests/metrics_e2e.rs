//! The live metrics plane, end to end: every serving surface — the
//! protected servlet, its HTTP server, the RMI server, the HTTP→RMI
//! gateway, the authz facade, and the topic broker — rides one runtime,
//! takes real traffic over TCP, and a `GET /metrics` scrape of the
//! process-global registry shows per-surface request-latency histograms
//! with non-zero tails, the shed counters, and the memo / key-table hit
//! ratios, all in one consistent Prometheus snapshot.

use snowflake_apps::emaildb::{EmailDb, EMAIL_DB_OBJECT};
use snowflake_audit::{AuditLog, AuditSink, MemoryBackend};
use snowflake_broker::topic::{read_publish, subscribe_stream};
use snowflake_broker::{AuthzEndpoint, NamespaceAuthority, TopicBroker};
use snowflake_channel::{SecureChannel, TcpTransport};
use snowflake_core::audit::AuditEmitter;
use snowflake_core::{Certificate, Delegation, Principal, Proof, Tag, Time, Validity};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_http::{
    serve_metrics, HttpClient, HttpRequest, HttpResponse, HttpServer, ProtectedServlet,
    SnowflakeProxy, SnowflakeService, METRICS_PATH,
};
use snowflake_prover::Prover;
use snowflake_rmi::{CallerInfo, Invocation, RemoteObject, RmiClient, RmiFault, RmiServer};
use snowflake_runtime::{PoolConfig, ServerRuntime};
use snowflake_sexpr::Sexp;
use snowflake_tags::path_vector::{grant_tag, ActionTable, PathPattern};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

const OBJECT_NS: &str = "conference.example.org";

fn fixed_clock() -> Time {
    Time(1_000_000)
}

fn kp(seed: &str) -> KeyPair {
    let mut rng = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

fn det(seed: &str) -> Box<dyn FnMut(&mut [u8]) + Send> {
    let mut r = DetRng::new(seed.as_bytes());
    Box::new(move |b: &mut [u8]| r.fill(b))
}

fn tag(src: &str) -> Tag {
    Tag::parse(&Sexp::parse(src.as_bytes()).unwrap()).unwrap()
}

struct Echo {
    issuer: Principal,
}

impl SnowflakeService for Echo {
    fn issuer(&self, _req: &HttpRequest) -> Principal {
        self.issuer.clone()
    }
    fn min_tag(&self, req: &HttpRequest) -> Tag {
        snowflake_http::auth::web_tag(&req.method, "echo", &req.path)
    }
    fn serve(&self, req: &HttpRequest, _speaker: &Principal) -> HttpResponse {
        HttpResponse::ok("text/plain", req.path.clone().into_bytes())
    }
}

struct Ping;

impl RemoteObject for Ping {
    fn issuer(&self) -> Principal {
        Principal::message(b"metrics-e2e-rmi")
    }
    fn invoke(&self, invocation: &Invocation, _caller: &CallerInfo) -> Result<Sexp, RmiFault> {
        match invocation.method.as_str() {
            "ping" => Ok(Sexp::from("pong")),
            other => Err(RmiFault::NoSuchMethod(other.into())),
        }
    }
}

/// Reads one sample's value out of a rendered exposition body.
fn metric(body: &str, line_prefix: &str) -> f64 {
    let line = body
        .lines()
        .find(|l| l.starts_with(line_prefix))
        .unwrap_or_else(|| panic!("no sample starting with {line_prefix:?} in:\n{body}"));
    line.rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap_or_else(|e| panic!("unparseable value on {line:?}: {e}"))
}

fn wait_for(cond: impl Fn() -> bool) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !cond() {
        assert!(std::time::Instant::now() < deadline, "condition never held");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

fn scrape(addr: std::net::SocketAddr) -> String {
    let mut client = HttpClient::new(Box::new(TcpStream::connect(addr).unwrap()));
    let resp = client.send(&HttpRequest::get(METRICS_PATH)).unwrap();
    assert_eq!(resp.status, 200);
    String::from_utf8(resp.body).unwrap()
}

#[test]
fn every_surface_reports_into_one_live_scrape() {
    let registry = snowflake_metrics::global();

    // One audit pipeline and one runtime under every surface.
    let log = AuditLog::with_rng(
        kp("metrics-e2e-log"),
        Box::new(MemoryBackend::new(0)),
        4,
        det("metrics-e2e-log-rng"),
    )
    .unwrap();
    let sink = AuditSink::with_capacity(Arc::clone(&log), 1024);
    let runtime = ServerRuntime::new(PoolConfig::new("metrics-e2e", 4, 16));
    runtime.register_metrics(registry);
    sink.register_metrics(registry);
    snowflake_crypto::register_key_table_metrics(registry);

    // --- Servlet + HTTP + authz facade + gateway on one HTTP server. ---
    let owner = kp("metrics-e2e-owner");
    let issuer = Principal::key(&owner.public);
    let servlet = ProtectedServlet::with_clock(
        Echo {
            issuer: issuer.clone(),
        },
        fixed_clock,
        det("metrics-e2e-servlet"),
    );
    servlet.register_metrics(registry);

    let broker_issuer_kp = kp("metrics-e2e-broker-issuer");
    let broker_issuer = Principal::key(&broker_issuer_kp.public);
    let prover = Arc::new(Prover::with_rng(det("metrics-e2e-prover")));
    prover.add_key(broker_issuer_kp);
    prover.register_metrics(registry);
    let endpoint = AuthzEndpoint::with_clock(Arc::clone(&prover), fixed_clock);
    endpoint.add_namespace(
        OBJECT_NS,
        NamespaceAuthority {
            issuer: broker_issuer.clone(),
            table: {
                let mut t = ActionTable::new();
                t.allow(&["rooms", "*", "events"], &["subscribe"]);
                t
            },
        },
    );
    endpoint.set_audit_emitter(Arc::clone(&sink) as Arc<dyn AuditEmitter>);
    endpoint.register_metrics(registry);

    // --- The RMI surface, also backing the gateway's client. -----------
    let db_key = kp("metrics-e2e-db");
    let rmi_server = RmiServer::with_clock(fixed_clock);
    rmi_server.register_open("echo", Arc::new(Ping));
    rmi_server.register(EMAIL_DB_OBJECT, Arc::new(EmailDb::new(Principal::key(&db_key.public))));
    rmi_server.register_metrics(registry);
    let rmi_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let rmi_addr = rmi_listener.local_addr().unwrap();
    rmi_server
        .serve_reactor(rmi_listener, &runtime, kp("metrics-e2e-rmi-server"), None)
        .unwrap();

    let connect_rmi = |seed: &str| {
        let transport = TcpTransport::new(TcpStream::connect(rmi_addr).unwrap());
        let key = kp(seed);
        let mut rng = DetRng::new(format!("{seed}-rng").as_bytes());
        let channel =
            SecureChannel::client(Box::new(transport), Some(&key), None, &mut |b| rng.fill(b))
                .unwrap();
        RmiClient::with_clock(Box::new(channel), kp(seed), Arc::new(Prover::new()), fixed_clock)
    };
    let mut rmi_client = connect_rmi("metrics-e2e-rmi-client");
    for _ in 0..3 {
        assert_eq!(
            rmi_client.invoke("echo", "ping", vec![]).unwrap(),
            Sexp::from("pong")
        );
    }

    let gateway = Arc::new(snowflake_apps::QuotingGateway::new(
        connect_rmi("metrics-e2e-gateway"),
        fixed_clock,
    ));
    gateway.register_metrics(registry);

    let http = HttpServer::with_clock(fixed_clock);
    http.route("/echo", Arc::clone(&servlet) as Arc<dyn snowflake_http::Handler>);
    http.route("/authz", endpoint);
    http.route("/mail", gateway as Arc<dyn snowflake_http::Handler>);
    let http_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let http_addr = http_listener.local_addr().unwrap();
    http.attach_to_reactor(http_listener, &runtime).unwrap();

    // --- The topic broker with its subscribe listener. ------------------
    let mut table = ActionTable::new();
    table.allow(&["rooms", "*", "events"], &["subscribe"]);
    let broker = TopicBroker::with_clock(
        Arc::clone(&runtime),
        Arc::clone(&prover),
        OBJECT_NS,
        broker_issuer.clone(),
        table,
        fixed_clock,
    );
    broker.set_audit_emitter(Arc::clone(&sink) as Arc<dyn AuditEmitter>);
    broker.register_metrics(registry);
    let sub_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let sub_addr = sub_listener.local_addr().unwrap();
    broker.attach_subscribe_listener(sub_listener).unwrap();

    // --- The exporter itself, a surface like any other. -----------------
    let metrics_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let metrics_addr = metrics_listener.local_addr().unwrap();
    let (_metrics_handle, metrics_endpoint) =
        serve_metrics(metrics_listener, &runtime, fixed_clock).unwrap();
    metrics_endpoint.set_audit_emitter(Arc::clone(&sink) as Arc<dyn AuditEmitter>);

    // ===== Load. =========================================================
    // Servlet: an authorized client behind the proxy, three times over.
    let alice = kp("metrics-e2e-alice");
    let mut rng = det("metrics-e2e-grant");
    let grant = Certificate::issue(
        &owner,
        Delegation {
            subject: Principal::key(&alice.public),
            issuer,
            tag: tag("(tag (web))"),
            validity: Validity::always(),
            delegable: true,
        },
        &mut rng,
    );
    let alice_prover = Arc::new(Prover::with_rng(det("metrics-e2e-alice-prover")));
    alice_prover.add_proof(Proof::signed_cert(grant));
    alice_prover.add_key(alice.clone());
    let proxy = SnowflakeProxy::with_clock(alice_prover, fixed_clock, det("metrics-e2e-proxy"));
    proxy.set_identity(Principal::key(&alice.public));
    for _ in 0..3 {
        let mut client = HttpClient::new(Box::new(TcpStream::connect(http_addr).unwrap()));
        let resp = proxy.execute(&mut client, HttpRequest::get("/echo/doc")).unwrap();
        assert_eq!(resp.status, 200);
    }

    // Authz facade: one allow answer.
    let carol = Principal::message(b"carol");
    let events_grant = grant_tag(
        OBJECT_NS,
        &PathPattern::parse(&["rooms", "*", "events"]),
        &["subscribe"],
    );
    let carol_proof = prover
        .delegate(&carol, &broker_issuer, events_grant, Validity::always(), false)
        .unwrap();
    let body = format!(
        "{{\"subject\":{{\"namespace\":\"{OBJECT_NS}\",\"value\":[\"x\"]}},\
          \"object\":{{\"namespace\":\"{OBJECT_NS}\",\"value\":[\"rooms\",\"r1\",\"events\"]}},\
          \"action\":\"subscribe\"}}"
    );
    let mut client = HttpClient::new(Box::new(TcpStream::connect(http_addr).unwrap()));
    let resp = client
        .send(&HttpRequest::post("/authz", body.into_bytes()))
        .unwrap();
    assert_eq!(resp.status, 200);

    // Gateway: an unauthenticated mail read is challenged — a decision,
    // timed like any other.
    let mut client = HttpClient::new(Box::new(TcpStream::connect(http_addr).unwrap()));
    let resp = client
        .send(&HttpRequest::get("/mail/alice/inbox"))
        .unwrap();
    assert_eq!(resp.status, 401);

    // Broker: carol subscribes twice on one proof (the second verification
    // is a memo hit), then a publish fans out to both streams.
    let topic = ["rooms", "r1", "events"];
    let mut phone = subscribe_stream(sub_addr, &topic, &carol, &carol_proof)
        .unwrap()
        .expect("carol authorized");
    let mut laptop = subscribe_stream(sub_addr, &topic, &carol, &carol_proof)
        .unwrap()
        .expect("carol authorized twice");
    wait_for(|| broker.stats().subscribers == 2);
    broker.publish(&topic, b"hello").unwrap();
    assert_eq!(read_publish(&mut phone).unwrap().1, b"hello");
    assert_eq!(read_publish(&mut laptop).unwrap().1, b"hello");

    // ===== Scrape twice (the second sees the first scrape's own latency).
    let _ = scrape(metrics_addr);
    let body = scrape(metrics_addr);

    // Every surface's request-latency histogram is live and non-empty,
    // with a non-zero tail.
    for surface in [
        "http",
        "servlet",
        "authz",
        "rmi",
        "gateway",
        "broker-sub",
        "broker-publish",
        "metrics",
    ] {
        let count = metric(
            &body,
            &format!("sf_request_duration_seconds_count{{surface=\"{surface}\"}}"),
        );
        assert!(count >= 1.0, "surface {surface} recorded nothing:\n{body}");
        let sum = metric(
            &body,
            &format!("sf_request_duration_seconds_sum{{surface=\"{surface}\"}}"),
        );
        assert!(sum > 0.0, "surface {surface} has a zero latency sum");
        let p99 = snowflake_metrics::request_histogram(surface)
            .snapshot()
            .p99_ns();
        assert!(p99 > 0.0, "surface {surface} has a zero p99");
    }

    // The shed counters from the pool and the per-surface reactor ledger
    // are mapped into the registry (zero is fine; absent is not).
    assert!(body.contains("sf_sheds_total{origin=\"pool\"}"), "{body}");
    assert_eq!(metric(&body, "sf_pool_workers"), 4.0);
    assert!(metric(&body, "sf_jobs_submitted_total") >= 1.0);

    // Cache behavior is visible: the broker's verified-chain memo hit on
    // carol's second subscribe, and the Schnorr key table was populated
    // by the proof verifications.
    assert!(
        metric(&body, "sf_chain_memo_hits_total{surface=\"broker\"}") >= 1.0,
        "{body}"
    );
    assert!(
        metric(&body, "sf_chain_memo_misses_total{surface=\"broker\"}") >= 1.0,
        "{body}"
    );
    assert!(metric(&body, "sf_key_table_builds_total") >= 1.0, "{body}");
    assert!(body.contains("sf_key_table_hits_total"), "{body}");
    // The servlet and authz memos are registered even where idle.
    assert!(body.contains("sf_chain_memo_hits_total{surface=\"servlet\"}"), "{body}");
    assert!(body.contains("sf_chain_memo_hits_total{surface=\"authz\"}"), "{body}");
    // The audit sink's health counters ride along.
    assert!(metric(&body, "sf_audit_accepted_total") >= 1.0, "{body}");

    runtime.shutdown();
}
