//! Tests for the paper's extension directions:
//!
//! * §9 future work — a gateway relaying *sealed* content it cannot read,
//!   while the end-to-end authorization chain still covers the payload.
//! * §5.3.2 — demanding authentication inside the logic by delegating to
//!   "authentication server's Alice" (a named principal), so the
//!   authorization chain itself forces Alice to authenticate.

use snowflake_core::{
    Certificate, Delegation, HashAlg, Principal, Proof, Tag, Time, Validity, VerifyCtx,
};
use snowflake_crypto::{open, seal, DetRng, Group, KeyPair, SealedBox};
use snowflake_sexpr::Sexp;

fn kp(seed: &str) -> KeyPair {
    let mut rng = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

fn det(seed: &str) -> impl FnMut(&mut [u8]) {
    let mut r = DetRng::new(seed.as_bytes());
    move |b: &mut [u8]| r.fill(b)
}

/// §9: the server seals a document to the client; the gateway relays the
/// sealed bytes and the document-authentication proof; the client opens
/// and verifies.  The gateway never holds the plaintext, yet the
/// end-to-end chain (hash-of-sealed-bytes ⇒ server) passes through it
/// intact.
#[test]
fn opaque_gateway_relays_sealed_content() {
    let server = kp("opaque-server");
    let client = kp("opaque-client");
    let mut rng = det("opaque");

    let secret_doc = b"quarterly numbers: do not show the gateway";

    // Server side: seal to the client, then prove that *the sealed bytes*
    // speak for the server (document authentication over the ciphertext).
    let sealed = seal(&client.public, secret_doc, &mut rng).unwrap();
    let sealed_wire = sealed.to_sexp();
    let doc_cert = Certificate::issue(
        &server,
        Delegation {
            subject: Principal::message(&sealed_wire.canonical()),
            issuer: Principal::key(&server.public),
            tag: Tag::Star,
            validity: Validity::until(Time(2_000)),
            delegable: false,
        },
        &mut rng,
    );
    let doc_proof = Proof::signed_cert(doc_cert);

    // Gateway side: it sees only ciphertext.  (It could try to open the
    // box; it fails.)
    let gateway = kp("opaque-gateway");
    let relayed_box = SealedBox::from_sexp(&sealed_wire).unwrap();
    assert!(
        open(&gateway, &relayed_box).is_none(),
        "gateway must not read the payload"
    );
    let relayed_proof = Proof::from_sexp(&doc_proof.to_sexp()).unwrap();

    // Client side: verify the chain over the *sealed* bytes, then open.
    let ctx = VerifyCtx::at(Time(1_000));
    relayed_proof
        .authorizes(
            &Principal::message(&relayed_box.to_sexp().canonical()),
            &Principal::key(&server.public),
            &Tag::Star,
            &ctx,
        )
        .expect("sealed bytes speak for the server");
    let opened = open(&client, &relayed_box).expect("client opens");
    assert_eq!(opened, secret_doc);

    // A gateway that swaps the payload is caught: the proof subject no
    // longer matches.
    let mut forged = relayed_box.clone();
    forged.ciphertext[0] ^= 1;
    assert!(relayed_proof
        .authorizes(
            &Principal::message(&forged.to_sexp().canonical()),
            &Principal::key(&server.public),
            &Tag::Star,
            &ctx,
        )
        .is_err());
}

/// §5.3.2: "one may delegate a resource to 'authentication server's
/// Alice', requiring Alice to authenticate herself to the server to invoke
/// her authority over the resource."
///
/// The resource owner delegates to the *named* principal `AS·alice`; Alice
/// can exercise it only by also presenting the authentication server's
/// binding `K_alice ⇒ AS·alice` — authentication demanded inside the
/// logic, not beside it.
#[test]
fn delegation_to_authentication_servers_alice() {
    let owner = kp("as-owner");
    let auth_server = kp("as-as");
    let alice = kp("as-alice");
    let eve = kp("as-eve");
    let mut rng = det("as");

    let as_alice = Principal::name(Principal::key(&auth_server.public), "alice");

    // The owner's grant names AS·alice, not any key.
    let grant = Certificate::issue(
        &owner,
        Delegation {
            subject: as_alice.clone(),
            issuer: Principal::key(&owner.public),
            tag: Tag::named("web", vec![]),
            validity: Validity::always(),
            delegable: true,
        },
        &mut rng,
    );

    // The authentication server binds Alice's key to the name — this is
    // the authentication step, expressed as a statement.
    let binding = Certificate::issue(
        &auth_server,
        Delegation {
            subject: Principal::key(&alice.public),
            issuer: as_alice.clone(),
            tag: Tag::Star,
            validity: Validity::until(Time(1_000)), // auth sessions expire
            delegable: true,
        },
        &mut rng,
    );

    // Alice's complete chain: K_alice ⇒ AS·alice ⇒ owner.
    let chain = Proof::signed_cert(binding).then(Proof::signed_cert(grant.clone()));
    let ctx = VerifyCtx::at(Time(500));
    chain.verify(&ctx).unwrap();
    let c = chain.conclusion();
    assert_eq!(c.subject, Principal::key(&alice.public));
    assert_eq!(c.issuer, Principal::key(&owner.public));

    // Without the authentication server's binding, the grant alone does
    // not empower Alice's key…
    let bare = Proof::signed_cert(grant);
    assert!(bare
        .authorizes(
            &Principal::key(&alice.public),
            &Principal::key(&owner.public),
            &Tag::named("web", vec![]),
            &ctx,
        )
        .is_err());

    // …and Eve cannot mint the binding herself: only the auth server's key
    // controls the AS·alice namespace.
    let forged_binding = Delegation {
        subject: Principal::key(&eve.public),
        issuer: as_alice,
        tag: Tag::Star,
        validity: Validity::always(),
        delegable: true,
    };
    let forged = Certificate {
        delegation: forged_binding.clone(),
        signer: eve.public.clone(),
        revocation: None,
        signature: eve.sign(&forged_binding.to_sexp().canonical(), &mut rng),
    };
    assert!(
        forged.check().is_err(),
        "Eve's key does not control AS·alice"
    );

    // When the authentication session expires, so does Alice's authority —
    // "resolve the secure bindings … after the fact" also works, since the
    // proof records which binding was used.
    let late = VerifyCtx::at(Time(2_000));
    assert!(chain
        .authorizes(
            &Principal::key(&alice.public),
            &Principal::key(&owner.public),
            &Tag::named("web", vec![]),
            &late,
        )
        .is_err());
    assert!(chain.audit_trail().contains("·alice"));
}

/// Sealed boxes compose with the md5 hash-principal flavor: the relayed
/// payload can be named by any supported hash.
#[test]
fn sealed_payload_named_by_md5() {
    let server = kp("md5-seal-server");
    let client = kp("md5-seal-client");
    let mut rng = det("md5-seal");
    let sealed = seal(&client.public, b"payload", &mut rng).unwrap();
    let wire = sealed.to_sexp().canonical();

    let subject = Principal::Message(snowflake_crypto::HashVal::digest(HashAlg::Md5, &wire));
    let cert = Certificate::issue(
        &server,
        Delegation {
            subject: subject.clone(),
            issuer: Principal::key(&server.public),
            tag: Tag::Star,
            validity: Validity::always(),
            delegable: false,
        },
        &mut rng,
    );
    let proof = Proof::signed_cert(cert);
    let parsed = Sexp::parse(&wire).unwrap();
    let received = SealedBox::from_sexp(&parsed).unwrap();
    let received_subject = Principal::Message(snowflake_crypto::HashVal::digest(
        HashAlg::Md5,
        &received.to_sexp().canonical(),
    ));
    assert_eq!(received_subject, subject);
    proof
        .authorizes(
            &received_subject,
            &Principal::key(&server.public),
            &Tag::Star,
            &VerifyCtx::at(Time(0)),
        )
        .unwrap();
}
