//! Whole-stack broker scenario: a subject whose delegation chain grants
//! `subscribe` opens a stream, receives publishes mid-stream, and has the
//! stream terminated by a revocation push — no reconnect, no polling —
//! while streams not sharing the dead certificate keep flowing.  Every
//! decision along the way (HTTP authz answers, subscribe grants, the
//! revocation, the stream cuts) lands in one tamper-evident audit log
//! whose chain verifies end-to-end.

use snowflake_audit::{verify_chain, AuditLog, AuditSink, LogEntry, MemoryBackend};
use snowflake_broker::topic::{read_publish, subscribe_stream};
use snowflake_broker::{AuthzEndpoint, NamespaceAuthority, TopicBroker};
use snowflake_core::audit::{AuditEmitter, Decision};
use snowflake_core::{Principal, Time, Validity};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_http::{HttpClient, HttpRequest, HttpServer};
use snowflake_prover::Prover;
use snowflake_revocation::{AuditedBus, FanoutBus, RevocationBus};
use snowflake_runtime::{PoolConfig, ServerRuntime};
use snowflake_tags::path_vector::{grant_tag, ActionTable, PathPattern};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const OBJECT_NS: &str = "conference.example.org";
const SUBJECT_NS: &str = "iam.example.org";

fn fixed_clock() -> Time {
    Time(1_000_000)
}

fn kp(seed: &str) -> KeyPair {
    let mut rng = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

fn det(seed: &str) -> Box<dyn FnMut(&mut [u8]) + Send> {
    let mut r = DetRng::new(seed.as_bytes());
    Box::new(move |b: &mut [u8]| r.fill(b))
}

fn account(name: &str) -> Principal {
    snowflake_broker::subject_principal(
        SUBJECT_NS,
        &["accounts".to_string(), name.to_string()],
    )
}

#[test]
fn subscribe_streams_are_cut_by_revocation_and_fully_audited() {
    // One audit pipeline for every surface in the scenario.
    let log_key = kp("broker-e2e-log");
    let log = AuditLog::with_rng(
        log_key.clone(),
        Box::new(MemoryBackend::new(0)),
        4,
        det("broker-e2e-log-rng"),
    )
    .unwrap();
    let sink = AuditSink::with_capacity(Arc::clone(&log), 1024);

    // The issuer controls the conference namespace; alice and bob hold
    // distinct subscribe certificates.
    let issuer_kp = kp("broker-e2e-issuer");
    let issuer = Principal::key(&issuer_kp.public);
    let prover = Arc::new(Prover::with_rng(det("broker-e2e-prover")));
    prover.add_key(issuer_kp);
    let events_grant = grant_tag(
        OBJECT_NS,
        &PathPattern::parse(&["rooms", "*", "events"]),
        &["subscribe"],
    );
    let alice = account("alice");
    let bob = account("bob");
    let proof_a = prover
        .delegate(&alice, &issuer, events_grant.clone(), Validity::always(), false)
        .unwrap();
    let proof_b = prover
        .delegate(&bob, &issuer, events_grant, Validity::always(), false)
        .unwrap();
    let cert_a = proof_a.cert_hashes()[0].clone();
    let cert_b = proof_b.cert_hashes()[0].clone();
    assert_ne!(cert_a, cert_b);

    let mut table = ActionTable::new();
    table.allow(&["rooms", "*", "events"], &["subscribe"]);

    // Both surfaces ride one runtime: the authz endpoint on the HTTP
    // reactor path, the broker's subscribe listener beside it.
    let runtime = ServerRuntime::new(PoolConfig::new("broker-e2e", 2, 16));
    let endpoint = AuthzEndpoint::with_clock(Arc::clone(&prover), fixed_clock);
    endpoint.add_namespace(
        OBJECT_NS,
        NamespaceAuthority {
            issuer: issuer.clone(),
            table: {
                let mut t = ActionTable::new();
                t.allow(&["rooms", "*", "events"], &["subscribe"]);
                t
            },
        },
    );
    endpoint.set_audit_emitter(Arc::clone(&sink) as Arc<dyn AuditEmitter>);
    let http = HttpServer::with_clock(fixed_clock);
    http.route("/authz", endpoint);
    let http_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let http_addr = http_listener.local_addr().unwrap();
    http.attach_to_reactor(http_listener, &runtime).unwrap();

    let broker = TopicBroker::with_clock(
        Arc::clone(&runtime),
        Arc::clone(&prover),
        OBJECT_NS,
        issuer,
        table,
        fixed_clock,
    );
    broker.set_audit_emitter(Arc::clone(&sink) as Arc<dyn AuditEmitter>);
    let sub_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let sub_addr = sub_listener.local_addr().unwrap();
    broker.attach_subscribe_listener(sub_listener).unwrap();

    // The operational front door agrees alice may subscribe.
    let mut client = HttpClient::new(Box::new(TcpStream::connect(http_addr).unwrap()));
    let body = format!(
        "{{\"subject\":{{\"namespace\":\"{SUBJECT_NS}\",\"value\":[\"accounts\",\"alice\"]}},\
          \"object\":{{\"namespace\":\"{OBJECT_NS}\",\"value\":[\"rooms\",\"r1\",\"events\"]}},\
          \"action\":\"subscribe\"}}"
    );
    let resp = client
        .send(&HttpRequest::post("/authz", body.into_bytes()))
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"{\"result\":\"allow\"}");

    // Three live streams: two sharing alice's certificate, one on bob's.
    let topic = ["rooms", "r1", "events"];
    let mut alice_phone = subscribe_stream(sub_addr, &topic, &alice, &proof_a)
        .unwrap()
        .expect("alice authorized");
    let mut alice_laptop = subscribe_stream(sub_addr, &topic, &alice, &proof_a)
        .unwrap()
        .expect("alice authorized twice");
    let mut bob_stream = subscribe_stream(sub_addr, &topic, &bob, &proof_b)
        .unwrap()
        .expect("bob authorized");
    wait_for(|| broker.stats().subscribers == 3);

    // Mid-stream traffic reaches all three.
    broker.publish(&topic, b"room opened").unwrap();
    for stream in [&mut alice_phone, &mut alice_laptop, &mut bob_stream] {
        assert_eq!(read_publish(stream).unwrap().1, b"room opened");
    }

    // One revocation push: the prover's warm edges and exactly the
    // streams whose grant provenance includes alice's certificate die
    // together, under one audited bus.
    let bus = AuditedBus::with_clock(
        Arc::new(FanoutBus(vec![
            Arc::new(Arc::clone(&prover)) as Arc<dyn RevocationBus>,
            Arc::new(Arc::clone(&broker)) as Arc<dyn RevocationBus>,
        ])),
        Arc::clone(&sink) as Arc<dyn AuditEmitter>,
        fixed_clock,
    );
    let evicted = bus.certificate_revoked(&cert_a);
    assert!(evicted >= 2, "prover edges + two streams: {evicted}");

    // Both of alice's streams observe EOF without polling or reconnect.
    assert!(read_publish(&mut alice_phone).is_err(), "phone stream cut");
    assert!(read_publish(&mut alice_laptop).is_err(), "laptop stream cut");

    // Bob's stream — different certificate — keeps flowing.
    wait_for(|| broker.stats().subscribers == 1);
    broker.publish(&topic, b"still here").unwrap();
    assert_eq!(read_publish(&mut bob_stream).unwrap().1, b"still here");

    // Alice cannot re-subscribe through the prover once its edge is gone:
    // the front door now denies her.
    let mut client = HttpClient::new(Box::new(TcpStream::connect(http_addr).unwrap()));
    let body = format!(
        "{{\"subject\":{{\"namespace\":\"{SUBJECT_NS}\",\"value\":[\"accounts\",\"alice\"]}},\
          \"object\":{{\"namespace\":\"{OBJECT_NS}\",\"value\":[\"rooms\",\"r1\",\"events\"]}},\
          \"action\":\"subscribe\"}}"
    );
    let resp = client
        .send(&HttpRequest::post("/authz", body.into_bytes()))
        .unwrap();
    assert!(resp.body.starts_with(b"{\"result\":\"deny\""));

    // The whole story is one verifiable chain: authz answers, subscribe
    // grants, the revocation, and the stream cuts.
    sink.flush();
    let entries = log.entries().unwrap();
    verify_chain(&entries, &log_key.public, 4, log.head().as_ref()).unwrap();
    log.verify().unwrap();
    let events: Vec<_> = entries
        .iter()
        .filter_map(|e| match e {
            LogEntry::Record(r) => Some(&r.event),
            LogEntry::Checkpoint(_) => None,
        })
        .collect();
    assert_eq!(
        events
            .iter()
            .filter(|e| e.surface == "authz" && e.decision == Decision::Grant)
            .count(),
        1
    );
    assert_eq!(
        events
            .iter()
            .filter(|e| e.surface == "authz" && e.decision == Decision::Deny)
            .count(),
        1
    );
    assert_eq!(
        events
            .iter()
            .filter(|e| e.surface == "broker-sub" && e.decision == Decision::Grant)
            .count(),
        3
    );
    let cuts: Vec<_> = events
        .iter()
        .filter(|e| e.surface == "broker-push" && e.decision == Decision::Revoke)
        .collect();
    assert_eq!(cuts.len(), 2, "exactly the two poisoned streams were cut");
    assert!(cuts.iter().all(|e| {
        e.subject == Some(alice.clone()) && e.cert_hashes.contains(&cert_a)
    }));
    assert_eq!(
        events
            .iter()
            .filter(|e| e.surface == "revocation" && e.decision == Decision::Revoke)
            .count(),
        1,
        "the bus records the revocation itself"
    );

    runtime.shutdown();
}

fn wait_for(cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "condition never held");
        std::thread::sleep(Duration::from_millis(2));
    }
}
