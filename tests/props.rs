//! Workspace-level property tests: invariants that span crates.

use proptest::prelude::*;
use snowflake_core::{Certificate, Delegation, Principal, Proof, Tag, Time, Validity, VerifyCtx};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_http::HttpRequest;
use snowflake_tags::{Bound, RangeOrdering};

fn kp(seed: u64) -> KeyPair {
    let mut rng = DetRng::new(&seed.to_be_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

/// Arbitrary structured tags (bounded).
fn arb_tag() -> impl Strategy<Value = Tag> {
    let leaf = prop_oneof![
        Just(Tag::Star),
        "[a-z]{1,8}".prop_map(|s| Tag::Atom(s.into_bytes())),
        "[a-z]{0,4}".prop_map(|s| Tag::Prefix(s.into_bytes())),
        (0u32..100, 100u32..200).prop_map(|(lo, hi)| Tag::Range {
            ordering: RangeOrdering::Numeric,
            low: Some(Bound {
                value: lo.to_string().into_bytes(),
                inclusive: true
            }),
            high: Some(Bound {
                value: hi.to_string().into_bytes(),
                inclusive: true
            }),
        }),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Tag::List),
            proptest::collection::vec(inner, 1..3).prop_map(Tag::Set),
        ]
    })
}

fn arb_validity() -> impl Strategy<Value = Validity> {
    (0u64..1000, 1000u64..5000).prop_map(|(a, b)| Validity::between(Time(a), Time(b)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any certificate round-trips the wire and still verifies; any bit
    /// flip in its canonical form is rejected or changes the statement.
    #[test]
    fn certificates_roundtrip_and_resist_tampering(
        t in arb_tag(),
        v in arb_validity(),
        delegable in any::<bool>(),
        flip in any::<u16>(),
    ) {
        let alice = kp(1);
        let bob = kp(2);
        let mut rng = DetRng::new(b"prop-cert");
        let cert = Certificate::issue(
            &alice,
            Delegation {
                subject: Principal::key(&bob.public),
                issuer: Principal::key(&alice.public),
                tag: t,
                validity: v,
                delegable,
            },
            &mut |b| rng.fill(b),
        );
        let wire = cert.to_sexp();
        let back = Certificate::from_sexp(&wire).unwrap();
        prop_assert!(back.check().is_ok());
        prop_assert_eq!(&back, &cert);

        // Flip one byte somewhere in the canonical encoding; the result
        // either fails to parse or fails to check.
        let mut bytes = wire.canonical();
        let idx = (flip as usize) % bytes.len();
        bytes[idx] ^= 0x01;
        if let Ok(parsed) = snowflake_sexpr::Sexp::parse(&bytes) {
            if let Ok(tampered) = Certificate::from_sexp(&parsed) {
                if tampered != cert {
                    prop_assert!(
                        tampered.check().is_err(),
                        "tampered cert must not verify"
                    );
                }
            }
        }
    }

    /// Transitivity narrows: a chained conclusion never authorizes a
    /// request the narrower link rejected.
    #[test]
    fn chains_never_widen(t1 in arb_tag(), t2 in arb_tag(), req in arb_tag()) {
        let a = kp(11);
        let b = kp(12);
        let c = kp(13);
        let mut rng = DetRng::new(b"prop-chain");
        let mk = |from: &KeyPair, to: &KeyPair, tag: Tag, delegable: bool| {
            Proof::signed_cert(Certificate::issue(
                from,
                Delegation {
                    subject: Principal::key(&to.public),
                    issuer: Principal::key(&from.public),
                    tag,
                    validity: Validity::always(),
                    delegable,
                },
                &mut DetRng::new(b"prop-chain-sign").fill_adapter(),
            ))
        };
        let _ = &mut rng;
        let p1 = mk(&a, &b, t1.clone(), true);
        let p2 = mk(&b, &c, t2.clone(), false);
        let chain = p2.then(p1);
        let ctx = VerifyCtx::at(Time(0));
        if chain.verify(&ctx).is_ok() {
            let concl = chain.conclusion();
            if concl.tag.permits(&req) {
                prop_assert!(t1.permits(&req), "chain wider than link 1");
                prop_assert!(t2.permits(&req), "chain wider than link 2");
            }
        }
    }

    /// Request hashing is stable across serialization: the hash computed on
    /// the client's in-memory request equals the hash on the server's
    /// parsed copy.
    #[test]
    fn request_hash_survives_the_wire(
        path in "/[a-z0-9/]{0,24}",
        headers in proptest::collection::vec(("[A-Za-z][A-Za-z-]{0,10}", "[ -~]{0,16}"), 0..5),
        body in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut req = HttpRequest::post(&path, body);
        for (n, v) in &headers {
            // Skip headers the canonical form excludes or serialization owns.
            let lower = n.to_ascii_lowercase();
            if ["authorization", "content-length", "sf-mac", "sf-mac-id", "sf-client-proof"]
                .contains(&lower.as_str())
            {
                continue;
            }
            req.set_header(n, v.trim());
        }
        let h1 = snowflake_http::request_hash(&req, snowflake_core::HashAlg::Sha256);

        let mut wire = Vec::new();
        req.write_to(&mut wire).unwrap();
        let parsed = HttpRequest::read_from(&mut std::io::BufReader::new(&wire[..]))
            .unwrap()
            .unwrap();
        let h2 = snowflake_http::request_hash(&parsed, snowflake_core::HashAlg::Sha256);
        prop_assert_eq!(h1, h2);
    }

    /// Proof S-expression round trips preserve verification results.
    #[test]
    fn proof_roundtrip_preserves_verdict(t in arb_tag(), v in arb_validity()) {
        let a = kp(21);
        let b = kp(22);
        let mut rng = DetRng::new(b"prop-proof");
        let proof = Proof::signed_cert(Certificate::issue(
            &a,
            Delegation {
                subject: Principal::key(&b.public),
                issuer: Principal::key(&a.public),
                tag: t,
                validity: v,
                delegable: true,
            },
            &mut |buf| rng.fill(buf),
        ));
        let back = Proof::from_sexp(&proof.to_sexp()).unwrap();
        let ctx = VerifyCtx::at(Time(0));
        prop_assert_eq!(proof.verify(&ctx).is_ok(), back.verify(&ctx).is_ok());
        prop_assert_eq!(proof.conclusion(), back.conclusion());
    }
}

/// Adapter so a DetRng can be used where `FnMut(&mut [u8])` is needed
/// inline (proptest closures capture by move).
trait FillAdapter {
    fn fill_adapter(self) -> Box<dyn FnMut(&mut [u8])>;
}

impl FillAdapter for DetRng {
    fn fill_adapter(mut self) -> Box<dyn FnMut(&mut [u8])> {
        Box::new(move |b| self.fill(b))
    }
}
