//! Crash-recovery integration: the whole authorization stack dies and
//! restarts from disk.
//!
//! Three layers under test, all built on the same [`CrashPoint`] hook:
//!
//! * the **end-to-end scenario** — a MAC-authenticated web service whose
//!   decisions stream into a rotated file-backed audit log, a validator
//!   whose authority state is durable, and a durable mailstore; the
//!   process state is dropped wholesale and everything is reopened from
//!   disk.  Revocation must hold fail-closed, the audit chain must verify
//!   against the pre-crash head (across rotation seams), and the mail
//!   must still be there.
//! * the **byte-boundary sweep** over the audit file backend — a crash at
//!   every byte of an appended record leaves the reopened stream holding
//!   the pre-append or post-append entries, never a torn third state.
//! * the **rotation-seam proptest** — for arbitrary record counts and
//!   rotation bounds, a live log spanning many segments verifies from
//!   genesis, and so does its reopened twin.

use proptest::prelude::*;
use snowflake_apps::{EmailDb, ProtectedWebService, Vfs};
use snowflake_audit::{
    genesis_hash, verify_chain, AuditLog, AuditSink, ChainedRecord, FileBackend, LogEntry,
};
use snowflake_core::audit::{AuditEmitter, Decision, DecisionEvent};
use snowflake_core::durable::{CrashPoint, Durable};
use snowflake_core::{Delegation, HashAlg, Principal, Proof, Tag, Time, Validity};
use snowflake_crypto::{DetRng, Group, HashVal, KeyPair};
use snowflake_http::mac::ClientMacSession;
use snowflake_http::{HttpRequest, HttpServer, MacSessionStore};
use snowflake_revocation::{
    ValidatorService, ValidatorStore, DEFAULT_CRL_WINDOW, DEFAULT_REVALIDATION_WINDOW,
};
use snowflake_rmi::{Invocation, RemoteObject};
use snowflake_sexpr::Sexp;
use std::path::PathBuf;
use std::sync::Arc;

fn fixed_clock() -> Time {
    Time(1_000_000)
}

fn kp(seed: &str) -> KeyPair {
    let mut rng = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

fn det(seed: &str) -> Box<dyn FnMut(&mut [u8]) + Send> {
    let mut r = DetRng::new(seed.as_bytes());
    Box::new(move |b: &mut [u8]| r.fill(b))
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sf-recovery-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Establishes a MAC session against a mounted web service and returns a
/// ready-to-replay authenticated request.
fn mac_request(server: &Arc<HttpServer>, servlet_owner: &Principal) -> HttpRequest {
    let mut crng = DetRng::new(b"recovery-client");
    let (body, dh) = ClientMacSession::request_body(&mut |b| crng.fill(b));
    let mut est = HttpRequest::post(snowflake_http::MAC_SESSION_PATH, body);
    let stmt = Delegation {
        subject: snowflake_http::request_principal(&est, HashAlg::Sha256),
        issuer: servlet_owner.clone(),
        tag: Tag::Star,
        validity: Validity::until(Time(1_003_000)),
        delegable: false,
    };
    // The servlet that mounts us assumes this statement (see caller).
    snowflake_http::auth::attach_proof(
        &mut est,
        &Proof::Assumption {
            stmt: stmt.clone(),
            authority: "recovery-test".into(),
        },
    );
    let resp = server.respond(&est);
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let session = ClientMacSession::from_grant(&resp.body, &dh, Validity::always()).unwrap();
    let mut request = HttpRequest::get("/docs/a");
    let hash = snowflake_http::request_hash(&request, HashAlg::Sha256);
    request.set_header(snowflake_http::auth::MAC_ID_HEADER, &session.id_header());
    request.set_header(snowflake_http::auth::MAC_HEADER, &session.authenticate(&hash));
    request
}

/// The headline scenario: serve authenticated traffic, revoke, audit —
/// then lose the process and restart every durable piece from disk.
#[test]
fn full_stack_restart_recovers_revocation_audit_and_mail() {
    let dir = fresh_dir("e2e");
    let audit_path = dir.join("audit.log");
    let store_path = dir.join("authority.log");
    let mail_base = dir.join("mail");
    let log_key = kp("e2e-log");
    let _validator_key = kp("e2e-validator");
    let dead_cert = HashVal::of(b"compromised-cert");
    let owner = Principal::message(b"owner");

    let validator_svc = |store: ValidatorStore| {
        ValidatorService::with_store(
            kp("e2e-validator"),
            fixed_clock,
            det("e2e-validator-rng"),
            DEFAULT_CRL_WINDOW,
            DEFAULT_REVALIDATION_WINDOW,
            store,
        )
    };

    // ---- Before the crash -------------------------------------------
    let (pre_head, pre_serial, mail_id) = {
        // Audit log over a rotating file backend (tiny segments so the
        // scenario itself crosses rotation seams), fed by the sink.
        let backend = FileBackend::with_rotation(&audit_path, 4).unwrap();
        let log =
            AuditLog::with_rng(log_key.clone(), Box::new(backend), 4, det("e2e-sign")).unwrap();
        let sink = AuditSink::with_capacity(log, 1024);

        // MAC-authenticated web service wired into the sink.
        let server = HttpServer::new();
        let vfs = Arc::new(Vfs::new());
        vfs.write("/docs/a", b"hello".to_vec());
        let servlet = ProtectedWebService::new(owner.clone(), "docs", vfs).mount(
            &server,
            "/docs",
            Arc::new(MacSessionStore::new()),
            fixed_clock,
            det("e2e-mount"),
        );
        servlet.set_audit_emitter(Arc::clone(&sink) as Arc<dyn AuditEmitter>);
        servlet.base_ctx().assume(&Delegation {
            subject: snowflake_http::request_principal(
                &HttpRequest::post(
                    snowflake_http::MAC_SESSION_PATH,
                    ClientMacSession::request_body(&mut {
                        let mut r = DetRng::new(b"recovery-client");
                        move |b: &mut [u8]| r.fill(b)
                    })
                    .0,
                ),
                HashAlg::Sha256,
            ),
            issuer: owner.clone(),
            tag: Tag::Star,
            validity: Validity::until(Time(1_003_000)),
            delegable: false,
        });
        let request = mac_request(&server, &owner);
        for _ in 0..10 {
            assert_eq!(server.respond(&request).status, 200);
        }

        // Durable validator: revoke the compromised certificate.
        let validator = validator_svc(ValidatorStore::open(&store_path).unwrap());
        let delta = validator.revoke(dead_cert.clone());
        assert!(delta.crl.revokes(&dead_cert));
        let pre_serial = validator.current_crl().serial;

        // Durable mailstore.
        let db = EmailDb::open_durable(owner.clone(), fixed_clock, &mail_base).unwrap();
        db.set_audit_emitter(Arc::clone(&sink) as Arc<dyn AuditEmitter>);
        let mail_id = db
            .invoke(
                &Invocation {
                    object: "email-db".into(),
                    method: "insert".into(),
                    args: vec![
                        Sexp::from("alice"),
                        Sexp::from("bob"),
                        Sexp::from("subject"),
                        Sexp::from("body"),
                        Sexp::from("inbox"),
                    ],
                    quoting: None,
                },
                &snowflake_rmi::CallerInfo {
                    speaker: Principal::message(b"alice"),
                    channel: snowflake_core::ChannelId {
                        kind: "test".into(),
                        id: HashVal::of(b"ch"),
                    },
                },
            )
            .unwrap()
            .as_u64()
            .unwrap();

        sink.flush();
        assert_eq!(sink.stats().dropped, 0, "nothing may be lost to shedding");
        let head = sink.log().head().expect("records were appended");
        assert!(
            sink.log().records_appended() > 8,
            "the scenario must cross a rotation seam"
        );
        (head, pre_serial, mail_id)
        // Everything is dropped here: the "crash".
    };

    // ---- After the restart ------------------------------------------
    // Revocation: the reopened store still damns the certificate, and the
    // first post-restart CRL outranks everything signed pre-crash.
    let store = ValidatorStore::open(&store_path).unwrap();
    assert!(store.revoked().contains(&dead_cert));
    assert_eq!(store.serial_high_water(), pre_serial);
    let validator = validator_svc(store);
    assert!(validator.is_revoked(&dead_cert), "revocation holds fail-closed");
    assert!(validator.revalidate(&dead_cert).is_err());
    let crl = validator.current_crl();
    assert!(crl.serial > pre_serial, "restart can never re-sign the past");
    assert!(crl.revokes(&dead_cert));

    // Audit: the reopened multi-segment stream verifies from genesis
    // against the pre-crash head — truncation or seam damage would fail.
    let backend = FileBackend::with_rotation(&audit_path, 4).unwrap();
    assert!(backend.segment_count() > 1, "rotation really happened");
    assert_eq!(backend.recovery().truncated_bytes, 0, "clean shutdown");
    let log =
        AuditLog::with_rng(log_key.clone(), Box::new(backend), 4, det("e2e-sign-2")).unwrap();
    let entries = log.entries().unwrap();
    let summary = verify_chain(&entries, &log_key.public, 4, Some(&pre_head)).unwrap();
    assert_eq!(summary.head, Some(pre_head));
    // The resumed log keeps appending on the same chain.
    let (_, appended) = log.append(DecisionEvent::new(
        fixed_clock(),
        "recovery-test",
        Decision::Grant,
        "restart",
        "append",
        "",
    ));
    appended.unwrap();
    log.verify().unwrap();

    // Mail: still there, under the same id.
    let db = EmailDb::open_durable(owner, fixed_clock, &mail_base).unwrap();
    let rows = db
        .invoke(
            &Invocation {
                object: "email-db".into(),
                method: "select".into(),
                args: vec![Sexp::from("alice")],
                quoting: None,
            },
            &snowflake_rmi::CallerInfo {
                speaker: Principal::message(b"alice"),
                channel: snowflake_core::ChannelId {
                    kind: "test".into(),
                    id: HashVal::of(b"ch"),
                },
            },
        )
        .unwrap();
    let rows = snowflake_reldb::rows_from_sexp(&rows).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], snowflake_reldb::Value::Int(mail_id as i64));
}

fn record_chain(n: u64) -> Vec<LogEntry> {
    let mut prev = genesis_hash();
    (0..n)
        .map(|i| {
            let ev = DecisionEvent::new(Time(i), "rmi", Decision::Grant, "/o", "read", "")
                .with_subject(Principal::message(b"alice"));
            let r = ChainedRecord::chain(i, prev.clone(), ev);
            prev = r.hash.clone();
            LogEntry::Record(r)
        })
        .collect()
}

/// Kills an audit append at every byte boundary of its line and asserts
/// the reopened stream holds exactly the pre- or post-append entries.
#[test]
fn audit_append_crash_at_every_byte_boundary_recovers_pre_or_post() {
    let entries = record_chain(3);
    let line_len = {
        let LogEntry::Record(_) = &entries[2] else { unreachable!() };
        entries[2].to_sexp().transport().len() + 1 // +1 for the newline
    };
    assert!(line_len > 20, "line should span many boundaries");

    for cut in 0..=line_len {
        let dir = fresh_dir(&format!("audit-cut-{cut}"));
        let path = dir.join("audit.log");
        {
            let mut b = FileBackend::open(&path).unwrap();
            b.append(&entries[0]).unwrap();
            b.append(&entries[1]).unwrap();
        }
        let crash = CrashPoint::after_bytes(cut as u64);
        {
            let mut b = FileBackend::with_crash_point(&path, None, crash.clone()).unwrap();
            let r = b.append(&entries[2]);
            assert_eq!(r.is_err(), cut < line_len, "cut {cut}");
        }
        let b = FileBackend::open(&path).unwrap();
        let expect = if cut < line_len { 2 } else { 3 };
        assert_eq!(
            b.entries().unwrap(),
            entries[..expect].to_vec(),
            "cut {cut}: reopened stream must be exactly pre- or post-append"
        );
        if cut > 0 && cut < line_len {
            assert_eq!(b.recovery().truncated_bytes, cut as u64, "cut {cut}");
        }
        // Whatever survived still chain-verifies.
        verify_chain(
            &b.entries().unwrap(),
            &kp("unused").public,
            u64::MAX,
            None,
        )
        .unwrap();
    }
}

use snowflake_audit::AuditBackend;

proptest! {
    /// For arbitrary record counts and rotation bounds, a log spanning
    /// many segments verifies from genesis live, after a reopen, and
    /// after a reopen-and-extend — the rotation seams are invisible to
    /// the chain.
    #[test]
    fn chain_verifies_across_arbitrary_rotation_seams(
        n in 1u64..28,
        per_segment in 1u64..6,
        interval in 2u64..9,
        extra in 0u64..6,
    ) {
        let dir = fresh_dir("rotation-prop");
        let path = dir.join("audit.log");
        let key = kp("prop-rotation");
        let ev = |i: u64| {
            DecisionEvent::new(Time(i), "prop", Decision::Grant, "/o", "read", "")
        };
        let total_entries = {
            let backend = FileBackend::with_rotation(&path, per_segment).unwrap();
            let log = AuditLog::with_rng(
                key.clone(), Box::new(backend), interval, det("prop-sign"),
            ).unwrap();
            for i in 0..n {
                log.append(ev(i)).1.unwrap();
            }
            log.verify().unwrap();
            log.entries().unwrap().len() as u64
        };
        // Reopen, extend across yet another seam, verify from genesis.
        // Entries include checkpoints, so bound the segment count by the
        // real entry total, not the record count.
        let backend = FileBackend::with_rotation(&path, per_segment).unwrap();
        prop_assert!(
            (backend.segment_count() as u64) <= total_entries / per_segment + 2,
            "{} segments for {} entries at {} per segment",
            backend.segment_count(), total_entries, per_segment
        );
        if total_entries > per_segment {
            prop_assert!(backend.segment_count() > 1, "rotation must have happened");
        }
        let log = AuditLog::with_rng(
            key.clone(), Box::new(backend), interval, det("prop-sign-2"),
        ).unwrap();
        for i in 0..extra {
            log.append(ev(n + i)).1.unwrap();
        }
        let summary = log.verify().unwrap();
        prop_assert_eq!(summary.records, n + extra);
        let entries = log.entries().unwrap();
        verify_chain(&entries, &key.public, interval, log.head().as_ref())
            .map_err(|e| TestCaseError::Fail(format!("{e}")))?;
    }
}
