//! Groups as named principals (paper §5.3.4).
//!
//! "An ACL is a specific group of users authorized to access a resource; in
//! our system, the client is responsible to know and exploit its group
//! memberships as represented in delegations."  A group is simply a named
//! principal (`K_owner·friends`); membership is a delegation from the group
//! name to the member; resources are delegated to the group name.  No ACL
//! exists anywhere — the server still checks a single principal.

use snowflake_core::{Certificate, Delegation, Principal, Proof, Tag, Time, Validity};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_http::{
    duplex, HttpClient, HttpRequest, HttpResponse, HttpServer, ProtectedServlet, SnowflakeProxy,
    SnowflakeService,
};
use snowflake_prover::Prover;
use std::sync::Arc;

fn kp(seed: &str) -> KeyPair {
    let mut rng = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

fn det(seed: &str) -> impl FnMut(&mut [u8]) {
    let mut r = DetRng::new(seed.as_bytes());
    move |b: &mut [u8]| r.fill(b)
}

fn fixed_clock() -> Time {
    Time(1_000_000)
}

struct Wiki {
    issuer: Principal,
}

impl SnowflakeService for Wiki {
    fn issuer(&self, _req: &HttpRequest) -> Principal {
        self.issuer.clone()
    }
    fn min_tag(&self, req: &HttpRequest) -> Tag {
        snowflake_http::auth::web_tag(&req.method, "wiki", &req.path)
    }
    fn serve(&self, req: &HttpRequest, _speaker: &Principal) -> HttpResponse {
        HttpResponse::ok("text/plain", format!("wiki page {}", req.path).into_bytes())
    }
}

#[test]
fn group_membership_is_a_delegation_chain() {
    let owner = kp("grp-owner");
    let alice = kp("grp-alice");
    let bob = kp("grp-bob");
    let mut rng = det("grp");

    let wiki_issuer = Principal::key(&owner.public);
    // The group: a name in the owner's namespace — no member list anywhere.
    let friends = Principal::name(Principal::key(&owner.public), "friends");

    // The resource is delegated to the *group name*, delegable so members
    // can extend to their request hashes.
    let resource_grant = Certificate::issue(
        &owner,
        Delegation {
            subject: friends.clone(),
            issuer: wiki_issuer.clone(),
            tag: Tag::named("web", vec![]),
            validity: Validity::always(),
            delegable: true,
        },
        &mut rng,
    );

    // Membership: the group name delegates to Alice (the owner controls
    // names rooted in its key, so it signs).  Bob gets no such statement.
    let alice_membership = Certificate::issue(
        &owner,
        Delegation {
            subject: Principal::key(&alice.public),
            issuer: friends.clone(),
            tag: Tag::Star,
            validity: Validity::until(Time(2_000_000)),
            delegable: true,
        },
        &mut rng,
    );

    // Alice's proxy holds *her* memberships — the server holds nothing.
    let alice_prover = Arc::new(Prover::with_rng(Box::new(det("grp-alice-prover"))));
    alice_prover.add_proof(Proof::signed_cert(resource_grant.clone()));
    alice_prover.add_proof(Proof::signed_cert(alice_membership));
    alice_prover.add_key(alice);
    let alice_proxy =
        SnowflakeProxy::with_clock(alice_prover, fixed_clock, Box::new(det("grp-alice-proxy")));

    // Bob knows the resource grant but has no membership statement.
    let bob_prover = Arc::new(Prover::with_rng(Box::new(det("grp-bob-prover"))));
    bob_prover.add_proof(Proof::signed_cert(resource_grant));
    bob_prover.add_key(bob);
    let bob_proxy =
        SnowflakeProxy::with_clock(bob_prover, fixed_clock, Box::new(det("grp-bob-proxy")));

    // The wiki server: one issuer principal, no ACL.
    let servlet = ProtectedServlet::with_clock(
        Wiki {
            issuer: wiki_issuer,
        },
        fixed_clock,
        Box::new(det("grp-servlet")),
    );
    let server = HttpServer::new();
    server.route("/", servlet);

    let connect = |server: &Arc<HttpServer>| {
        let (cs, mut ss) = duplex();
        let s2 = Arc::clone(server);
        let t = std::thread::spawn(move || {
            let _ = s2.serve_stream(&mut ss);
        });
        (HttpClient::new(Box::new(cs)), t)
    };

    // Alice reads through her membership chain:
    // request ⇒ K_alice ⇒ owner·friends ⇒ owner.
    let (mut client, t1) = connect(&server);
    let resp = alice_proxy
        .execute(&mut client, HttpRequest::get("/page"))
        .unwrap();
    assert_eq!(resp.status, 200);
    drop(client);
    t1.join().unwrap();

    // Bob cannot produce a proof for his own requests: his prover finds no
    // path into the group.  (He asks for a different page; a byte-identical
    // replay of Alice's *authorized message* would be served — the message
    // itself was proven to speak for the issuer, the signed-request
    // protocol's documented replay property.)
    let (mut client, t2) = connect(&server);
    let denied = bob_proxy.execute(&mut client, HttpRequest::get("/another-page"));
    assert!(denied.is_err(), "non-member must fail: {denied:?}");
    drop(client);
    t2.join().unwrap();
}

#[test]
fn nested_groups_compose() {
    // Groups of groups: staff ⊇ developers ∋ alice, via two name hops.
    let owner = kp("nest-owner");
    let alice = kp("nest-alice");
    let mut rng = det("nest");

    let staff = Principal::name(Principal::key(&owner.public), "staff");
    let developers = Principal::name(Principal::key(&owner.public), "developers");

    let resource_to_staff = Certificate::issue(
        &owner,
        Delegation {
            subject: staff.clone(),
            issuer: Principal::key(&owner.public),
            tag: Tag::named("repo", vec![]),
            validity: Validity::always(),
            delegable: true,
        },
        &mut rng,
    );
    let devs_in_staff = Certificate::issue(
        &owner,
        Delegation {
            subject: developers.clone(),
            issuer: staff,
            tag: Tag::Star,
            validity: Validity::always(),
            delegable: true,
        },
        &mut rng,
    );
    let alice_in_devs = Certificate::issue(
        &owner,
        Delegation {
            subject: Principal::key(&alice.public),
            issuer: developers,
            tag: Tag::Star,
            validity: Validity::always(),
            delegable: true,
        },
        &mut rng,
    );

    let prover = Prover::with_rng(Box::new(det("nest-prover")));
    prover.add_proof(Proof::signed_cert(resource_to_staff));
    prover.add_proof(Proof::signed_cert(devs_in_staff));
    prover.add_proof(Proof::signed_cert(alice_in_devs));

    let proof = prover
        .find_proof(
            &Principal::key(&alice.public),
            &Principal::key(&owner.public),
            &Tag::named("repo", vec![]),
            Time(0),
        )
        .expect("alice ⇒ developers ⇒ staff ⇒ owner");
    proof
        .verify(&snowflake_core::VerifyCtx::at(Time(0)))
        .unwrap();
    assert!(proof.size() >= 3, "three delegation hops");
    // The audit trail names both groups — end-to-end visibility.
    let trail = proof.audit_trail();
    assert!(trail.contains("·staff"), "{trail}");
    assert!(trail.contains("·developers"), "{trail}");
}
