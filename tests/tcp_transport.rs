//! End-to-end flows over real TCP sockets (loopback): the same protocols
//! the in-memory tests exercise, across an actual network stack.

use snowflake_channel::{SecureChannel, TcpTransport};
use snowflake_core::{Certificate, Delegation, Principal, Proof, Tag, Time, Validity};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_http::{HttpClient, HttpRequest, HttpResponse, HttpServer};
use snowflake_prover::Prover;
use snowflake_rmi::{FileObject, RmiClient, RmiServer};
use snowflake_sexpr::Sexp;
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

fn kp(seed: &str) -> KeyPair {
    let mut rng = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

fn fixed_clock() -> Time {
    Time(1_000_000)
}

#[test]
fn rmi_with_authorization_over_tcp() {
    let server_key = kp("tcp-server");
    let identity = kp("tcp-identity");
    let session = kp("tcp-session");

    let server = RmiServer::with_clock(fixed_clock);
    let mut files = HashMap::new();
    files.insert("X".to_string(), b"tcp file contents".to_vec());
    server.register(
        "files",
        Arc::new(FileObject::new(Principal::key(&server_key.public), files)),
    );

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server2 = Arc::clone(&server);
    let skey = server_key.clone();
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut rng = DetRng::new(b"tcp-srv-chan");
        let mut channel =
            SecureChannel::server(Box::new(TcpTransport::new(stream)), &skey, None, &mut |b| {
                rng.fill(b)
            })
            .unwrap();
        let _ = server2.serve_connection(&mut channel);
    });

    // Owner grants the identity; identity extends to the session key.
    let mut rng = DetRng::new(b"tcp-grant");
    let grant = Certificate::issue(
        &server_key,
        Delegation {
            subject: Principal::key(&identity.public),
            issuer: Principal::key(&server_key.public),
            tag: Tag::named("rmi", vec![]),
            validity: Validity::always(),
            delegable: true,
        },
        &mut |b| rng.fill(b),
    );
    let mut prng = DetRng::new(b"tcp-prover");
    let prover = Arc::new(Prover::with_rng(Box::new(move |b| prng.fill(b))));
    prover.add_proof(Proof::signed_cert(grant));
    prover.add_key(identity);

    let mut crng = DetRng::new(b"tcp-cli-chan");
    let channel = SecureChannel::client(
        Box::new(TcpTransport::new(TcpStream::connect(addr).unwrap())),
        Some(&session),
        None,
        &mut |b| crng.fill(b),
    )
    .unwrap();
    let mut client = RmiClient::with_clock(Box::new(channel), session, prover, fixed_clock);

    let result = client
        .invoke("files", "read", vec![Sexp::from("X")])
        .unwrap();
    assert_eq!(result.as_atom().unwrap(), b"tcp file contents");
    // Multiple calls over the same TCP connection.
    for _ in 0..5 {
        client
            .invoke("files", "read", vec![Sexp::from("X")])
            .unwrap();
    }
    drop(client);
    handle.join().unwrap();
}

#[test]
fn http_server_over_tcp() {
    let server = HttpServer::new();
    server.route(
        "/",
        Arc::new(|req: &HttpRequest| {
            HttpResponse::ok("text/plain", format!("echo {}", req.path).into_bytes())
        }),
    );

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        // Serve exactly two connections, then exit.
        for _ in 0..2 {
            let (mut stream, _) = listener.accept().unwrap();
            let server2 = Arc::clone(&server);
            let _ = server2.serve_stream(&mut stream);
        }
    });

    for round in 0..2 {
        let stream = TcpStream::connect(addr).unwrap();
        let mut client = HttpClient::new(Box::new(stream));
        let mut req = HttpRequest::get(&format!("/r{round}"));
        req.set_header("Connection", "keep-alive");
        let resp = client.send(&req).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, format!("echo /r{round}").into_bytes());
        // Keep-alive: second request on the same socket.
        let resp = client.send(&req).unwrap();
        assert_eq!(resp.status, 200);
    }
    handle.join().unwrap();
}

#[test]
fn secure_channel_rejects_tcp_tampering() {
    // A hostile relay flips one ciphertext byte; the record MAC catches it.
    let server_key = kp("tamper-server");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let skey = server_key.clone();
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut rng = DetRng::new(b"tamper-srv");
        let mut channel =
            SecureChannel::server(Box::new(TcpTransport::new(stream)), &skey, None, &mut |b| {
                rng.fill(b)
            })
            .unwrap();
        // The first record was tampered in flight: recv must fail.
        channel.recv().err().map(|e| e.to_string())
    });

    let mut rng = DetRng::new(b"tamper-cli");
    struct Tamper {
        inner: TcpTransport,
        records: u32,
    }
    impl snowflake_channel::Transport for Tamper {
        fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
            // The client sends two handshake frames (hello, auth marker);
            // let those through untouched, then corrupt data records.
            self.records += 1;
            if self.records > 2 {
                let mut evil = frame.to_vec();
                evil[0] ^= 0x80;
                self.inner.send(&evil)
            } else {
                self.inner.send(frame)
            }
        }
        fn recv(&mut self) -> std::io::Result<Vec<u8>> {
            self.inner.recv()
        }
    }
    let mut channel = SecureChannel::client(
        Box::new(Tamper {
            inner: TcpTransport::new(TcpStream::connect(addr).unwrap()),
            records: 0,
        }),
        None,
        None,
        &mut |b| rng.fill(b),
    )
    .unwrap();
    channel.send(b"this record gets flipped").unwrap();
    let err = handle.join().unwrap();
    assert!(err.is_some(), "server must reject the tampered record");
    assert!(
        err.unwrap().contains("MAC"),
        "rejection reason names the MAC"
    );
}
