//! Workspace-level integration tests: scenarios that cross many crates at
//! once and exercise the paper's less-travelled paths (revocation over
//! HTTP, thresholds in live proofs, MD5 interop, the 1024-bit group).

use snowflake_core::{
    Certificate, Crl, Delegation, HashAlg, Principal, Proof, RevocationPolicy, Tag, Time, Validity,
    VerifyCtx,
};
use snowflake_crypto::{DetRng, Group, KeyPair};
use snowflake_http::{
    duplex, HttpClient, HttpRequest, HttpResponse, HttpServer, ProtectedServlet, SnowflakeProxy,
    SnowflakeService,
};
use snowflake_prover::Prover;
use snowflake_sexpr::Sexp;
use std::sync::Arc;

fn kp(seed: &str) -> KeyPair {
    let mut rng = DetRng::new(seed.as_bytes());
    KeyPair::generate(Group::test512(), &mut |b| rng.fill(b))
}

fn det(seed: &str) -> impl FnMut(&mut [u8]) {
    let mut r = DetRng::new(seed.as_bytes());
    move |b: &mut [u8]| r.fill(b)
}

fn fixed_clock() -> Time {
    Time(1_000_000)
}

fn tag(src: &str) -> Tag {
    Tag::parse(&Sexp::parse(src.as_bytes()).unwrap()).unwrap()
}

struct Echo {
    issuer: Principal,
}

impl SnowflakeService for Echo {
    fn issuer(&self, _req: &HttpRequest) -> Principal {
        self.issuer.clone()
    }
    fn min_tag(&self, req: &HttpRequest) -> Tag {
        snowflake_http::auth::web_tag(&req.method, "echo", &req.path)
    }
    fn serve(&self, req: &HttpRequest, speaker: &Principal) -> HttpResponse {
        HttpResponse::ok(
            "text/plain",
            format!("{} for {}", req.path, speaker.describe()).into_bytes(),
        )
    }
}

/// Revocation travels end-to-end: a CRL installed at the HTTP servlet kills
/// a previously working delegation chain.
#[test]
fn crl_revocation_over_http() {
    let owner = kp("rev-owner");
    let alice = kp("rev-alice");
    let validator = kp("rev-validator");
    let issuer = Principal::key(&owner.public);
    let mut rng = det("rev");

    // The grant opts into CRL checking.
    let cert = Certificate::issue_with_revocation(
        &owner,
        Delegation {
            subject: Principal::key(&alice.public),
            issuer: issuer.clone(),
            tag: tag("(tag (web))"),
            validity: Validity::always(),
            delegable: true,
        },
        Some(RevocationPolicy::Crl {
            validator: validator.public.hash(),
        }),
        &mut rng,
    );
    let cert_hash = cert.hash();

    let prover = Arc::new(Prover::with_rng(Box::new(det("rev-prover"))));
    prover.add_proof(Proof::signed_cert(cert));
    prover.add_key(alice);

    let servlet =
        ProtectedServlet::with_clock(Echo { issuer }, fixed_clock, Box::new(det("rev-servlet")));
    // A clean, current CRL: requests work.
    servlet.base_ctx().install_crl(Crl::issue(
        &validator,
        vec![],
        Validity::until(Time(2_000_000)),
        &mut rng,
    ));
    let server = HttpServer::new();
    server.route(
        "/",
        Arc::clone(&servlet) as Arc<dyn snowflake_http::Handler>,
    );

    let proxy = SnowflakeProxy::with_clock(prover, fixed_clock, Box::new(det("rev-proxy")));

    let connect = |server: &Arc<HttpServer>| {
        let (cs, mut ss) = duplex();
        let s2 = Arc::clone(server);
        let t = std::thread::spawn(move || {
            let _ = s2.serve_stream(&mut ss);
        });
        (HttpClient::new(Box::new(cs)), t)
    };

    let (mut client, t1) = connect(&server);
    let ok = proxy.execute(&mut client, HttpRequest::get("/a")).unwrap();
    assert_eq!(ok.status, 200);
    drop(client);
    t1.join().unwrap();

    // The validator revokes the certificate; the servlet installs the new
    // CRL; the same chain now fails.
    servlet.base_ctx().install_crl(Crl::issue(
        &validator,
        vec![cert_hash],
        Validity::until(Time(2_000_000)),
        &mut rng,
    ));
    servlet.forget_verified();

    let (mut client, t2) = connect(&server);
    let denied = proxy.execute(&mut client, HttpRequest::get("/b"));
    assert!(denied.is_err(), "revoked chain must fail: {denied:?}");
    drop(client);
    t2.join().unwrap();
}

/// A 2-of-3 threshold principal controls a resource; two trustees suffice,
/// one does not.
#[test]
fn threshold_controls_resource() {
    let (t1, t2, t3) = (kp("tr-1"), kp("tr-2"), kp("tr-3"));
    let client = kp("tr-client");
    let mut rng = det("threshold");
    let threshold = Principal::Threshold {
        k: 2,
        subjects: vec![
            Principal::key(&t1.public),
            Principal::key(&t2.public),
            Principal::key(&t3.public),
        ],
    };

    let grant = |trustee: &KeyPair| {
        Proof::signed_cert(Certificate::issue(
            trustee,
            Delegation {
                subject: Principal::key(&client.public),
                issuer: Principal::key(&trustee.public),
                tag: tag("(vault (op open))"),
                validity: Validity::always(),
                delegable: true,
            },
            &mut det("threshold-issue"),
        ))
    };
    let _ = &mut rng;

    let two = Proof::ThresholdIntro {
        threshold: threshold.clone(),
        proofs: vec![(0, grant(&t1)), (2, grant(&t3))],
    };
    let ctx = VerifyCtx::at(Time(0));
    two.verify(&ctx).unwrap();
    assert_eq!(two.conclusion().issuer, threshold);
    assert_eq!(two.conclusion().subject, Principal::key(&client.public));

    let one = Proof::ThresholdIntro {
        threshold,
        proofs: vec![(1, grant(&t2))],
    };
    assert!(
        one.verify(&ctx).is_err(),
        "one trustee is below the threshold"
    );
}

/// Figure 5 interop: a client hashing requests with MD5 is accepted — the
/// server follows the proof subject's algorithm.
#[test]
fn md5_request_hash_interop() {
    let owner = kp("md5-owner");
    let issuer = Principal::key(&owner.public);
    let servlet = ProtectedServlet::with_clock(
        Echo {
            issuer: issuer.clone(),
        },
        fixed_clock,
        Box::new(det("md5-servlet")),
    );
    let server = HttpServer::new();
    server.route("/", servlet);

    // Hand-roll an MD5-flavored signed request (the proxy defaults to
    // SHA-256, so we build the proof manually).
    let mut req = HttpRequest::get("/md5-doc");
    req.set_header("Connection", "keep-alive");
    let subject = snowflake_http::request_principal(&req, HashAlg::Md5);
    let mut rng = det("md5-sign");
    let cert = Certificate::issue(
        &owner,
        Delegation {
            subject,
            issuer,
            tag: tag("(tag (web))"),
            validity: Validity::until(Time(2_000_000)),
            delegable: false,
        },
        &mut rng,
    );
    snowflake_http::auth::attach_proof(&mut req, &Proof::signed_cert(cert));

    let (cs, mut ss) = duplex();
    let t = std::thread::spawn(move || {
        let _ = server.serve_stream(&mut ss);
    });
    let mut client = HttpClient::new(Box::new(cs));
    let resp = client.send(&req).unwrap();
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    drop(client);
    t.join().unwrap();
}

/// The full-size 1024-bit group works end to end (slower, so just one
/// round trip).
#[test]
fn group1024_end_to_end() {
    let mut rng = det("1024");
    let alice = KeyPair::generate(Group::group1024(), &mut rng);
    let bob = KeyPair::generate(Group::group1024(), &mut rng);
    let cert = Certificate::issue(
        &alice,
        Delegation {
            subject: Principal::key(&bob.public),
            issuer: Principal::key(&alice.public),
            tag: tag("(web)"),
            validity: Validity::always(),
            delegable: false,
        },
        &mut rng,
    );
    let proof = Proof::signed_cert(cert);
    proof.verify(&VerifyCtx::at(Time(0))).unwrap();
    // And the wire round trip preserves it.
    let back = Proof::from_sexp(&proof.to_sexp()).unwrap();
    back.verify(&VerifyCtx::at(Time(0))).unwrap();
}

/// Mixed-group chains: a test512 identity may delegate to a group1024 key
/// and vice versa — principals are just keys.
#[test]
fn mixed_group_chain() {
    let mut rng = det("mixed");
    let big = KeyPair::generate(Group::group1024(), &mut rng);
    let small = KeyPair::generate(Group::test512(), &mut rng);
    let carol = KeyPair::generate(Group::test512(), &mut rng);

    let c1 = Certificate::issue(
        &big,
        Delegation {
            subject: Principal::key(&small.public),
            issuer: Principal::key(&big.public),
            tag: tag("(web)"),
            validity: Validity::always(),
            delegable: true,
        },
        &mut rng,
    );
    let c2 = Certificate::issue(
        &small,
        Delegation {
            subject: Principal::key(&carol.public),
            issuer: Principal::key(&small.public),
            tag: tag("(web (method GET))"),
            validity: Validity::always(),
            delegable: false,
        },
        &mut rng,
    );
    let chain = Proof::signed_cert(c2).then(Proof::signed_cert(c1));
    chain.verify(&VerifyCtx::at(Time(0))).unwrap();
    let c = chain.conclusion();
    assert_eq!(c.subject, Principal::key(&carol.public));
    assert_eq!(c.issuer, Principal::key(&big.public));
}

/// The facade crate re-exports enough to write programs against.
#[test]
fn facade_compiles_and_links() {
    // Reaching the types through each crate root proves the workspace
    // wiring; this test exists so a missing re-export fails loudly.
    let _p: snowflake_core::Principal = Principal::message(b"x");
    let _t: snowflake_tags::Tag = Tag::Star;
    let _h: snowflake_crypto::HashVal = snowflake_crypto::HashVal::of(b"y");
    let _s: snowflake_sexpr::Sexp = Sexp::from("z");
}
