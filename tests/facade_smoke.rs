//! Facade smoke test: every re-export in `src/lib.rs` must resolve, and the
//! quickstart flow (issue → prove → verify) must run against the facade
//! paths alone.

use snowflake::core::{Certificate, Delegation, Principal, Proof, Time, Validity, VerifyCtx};
use snowflake::crypto::{DetRng, Group, KeyPair};

/// Each facade module resolves and exposes a representative item.
#[test]
fn every_reexport_resolves() {
    // Substrates.
    let _ = snowflake::sexpr::Sexp::from("ping");
    let _ = snowflake::bigint::Ubig::one();
    let _ = snowflake::tags::Tag::Star;
    let _ = snowflake::crypto::sha256(b"x");
    let _ = snowflake::reldb::Value::Int(1);
    // The logic of authority and the prover.
    let _ = snowflake::core::Principal::message(b"m");
    let _ = snowflake::prover::Prover::new();
    // Channels and protocols.
    let _ = snowflake::channel::PipeTransport::pair();
    let _ = snowflake::http::HttpRequest::get("/");
    let _ = snowflake::rmi::Invocation {
        object: "o".into(),
        method: "m".into(),
        args: Vec::new(),
        quoting: None,
    };
    // Boundary apps.
    let _ = snowflake::apps::Vfs::new();
    // Runtime and audit subsystems.
    let _ = snowflake::runtime::PoolConfig::new("facade", 1, 1);
    let _ = snowflake::audit::AuditQuery::all();
    let _ = snowflake::audit::MemoryBackend::new(0);
    let _ = snowflake::core::audit::Decision::Grant;
}

/// The README quickstart flow, spelled through the facade: Alice delegates
/// to Bob, Bob's side verifies the signed certificate as a proof.
#[test]
fn quickstart_flow_runs() {
    let mut rng = DetRng::new(b"facade-smoke");
    let mut rb = |b: &mut [u8]| rng.fill(b);
    let alice = KeyPair::generate(Group::test512(), &mut rb);
    let bob = KeyPair::generate(Group::test512(), &mut rb);

    let delegation = Delegation {
        subject: Principal::key(&bob.public),
        issuer: Principal::key(&alice.public),
        tag: snowflake::http::auth::web_tag("GET", "docs", "/docs/a.html"),
        validity: Validity::between(Time(0), Time(2_000_000)),
        delegable: false,
    };
    let cert = Certificate::issue(&alice, delegation, &mut rb);
    let proof = Proof::signed_cert(cert);

    let ctx = VerifyCtx::at(Time(1_000_000));
    assert!(proof.verify(&ctx).is_ok());

    // The conclusion says exactly what was delegated, and the wire round
    // trip preserves the verdict.
    let concl = proof.conclusion();
    assert_eq!(concl.subject, Principal::key(&bob.public));
    assert_eq!(concl.issuer, Principal::key(&alice.public));
    let back = Proof::from_sexp(&proof.to_sexp()).expect("proof round-trips");
    assert!(back.verify(&ctx).is_ok());
}
