//! The quoting protocol gateway (paper §6.3): the application that spans
//! all four boundaries at once.
//!
//! A browser-side proxy speaks HTTP to the gateway; the gateway speaks RMI
//! over an ssh-like channel to the protected email database; the database
//! sees — and audits — the complete chain `request ⇒ gateway|alice ⇒ alice
//! ⇒ database`.
//!
//! Run with `cargo run --example email_gateway`.

use snowflake_apps::emaildb::{EmailDb, EMAIL_DB_OBJECT};
use snowflake_apps::QuotingGateway;
use snowflake_channel::{PipeTransport, SecureChannel, DEFAULT_PIPE_CAPACITY};
use snowflake_core::{Certificate, Delegation, Principal, Proof, Time, Validity};
use snowflake_crypto::{rand_bytes, Group, KeyPair};
use snowflake_http::{
    bounded_duplex, HttpClient, HttpRequest, HttpServer, SnowflakeProxy, DEFAULT_STREAM_CAPACITY,
};
use snowflake_prover::Prover;
use snowflake_runtime::{PoolConfig, ServerRuntime};
use snowflake_rmi::{CallerInfo, Invocation, RemoteObject, RmiClient, RmiServer};
use snowflake_sexpr::Sexp;
use std::sync::Arc;

fn main() {
    let db_key = KeyPair::generate_os(Group::test512());
    let alice = KeyPair::generate_os(Group::test512());
    let db_issuer = Principal::key(&db_key.public);

    // --- The email database, pre-populated. ---------------------------
    let db_server = RmiServer::new();
    let email = EmailDb::new(db_issuer.clone());
    let setup_caller = CallerInfo {
        speaker: Principal::message(b"setup"),
        channel: snowflake_core::ChannelId {
            kind: "setup".into(),
            id: snowflake_core::HashVal::of(b"setup"),
        },
    };
    for (owner, sender, subject, body) in [
        ("alice", "bob", "lunch?", "how about noon"),
        ("alice", "dave", "minutes", "attached"),
        ("bob", "alice", "re: lunch?", "noon works"),
    ] {
        email
            .invoke(
                &Invocation {
                    object: EMAIL_DB_OBJECT.into(),
                    method: "insert".into(),
                    args: vec![
                        Sexp::from(owner),
                        Sexp::from(sender),
                        Sexp::from(subject),
                        Sexp::from(body),
                        Sexp::from("inbox"),
                    ],
                    quoting: None,
                },
                &setup_caller,
            )
            .unwrap();
    }
    db_server.register(EMAIL_DB_OBJECT, Arc::new(email));

    // Every connection in this example — the database's RMI end and the
    // HTTP front end — is served from one bounded runtime pool, the same
    // serving discipline a production deployment uses.
    let runtime = ServerRuntime::new(PoolConfig::new("email-gateway", 2, 4));

    // --- Gateway ⇄ database over the secure channel. -------------------
    let gateway_key = KeyPair::generate_os(Group::test512());
    let (ct, st) = PipeTransport::bounded_pair(DEFAULT_PIPE_CAPACITY);
    let db_server2 = Arc::clone(&db_server);
    let db_key2 = db_key.clone();
    runtime
        .pool()
        .submit(move || {
            let mut channel =
                SecureChannel::server(Box::new(st), &db_key2, None, &mut rand_bytes).unwrap();
            let _ = db_server2.serve_connection(&mut channel);
        })
        .expect("fresh pool admits the database connection");
    let channel =
        SecureChannel::client(Box::new(ct), Some(&gateway_key), None, &mut rand_bytes).unwrap();
    let gateway_prover = Arc::new(Prover::new());
    let gateway_rmi = RmiClient::new(Box::new(channel), gateway_key.clone(), gateway_prover);
    println!(
        "gateway principal G = {}",
        Principal::key(&gateway_key.public).describe()
    );

    // --- HTTP front end. ------------------------------------------------
    let gateway = QuotingGateway::new(gateway_rmi, Time::now);
    let http = HttpServer::new();
    http.route("/mail", Arc::new(gateway));

    // --- Alice's side. ----------------------------------------------------
    // The database owner granted Alice all ops on her rows, delegable.
    let grant = Certificate::issue(
        &db_key,
        Delegation {
            subject: Principal::key(&alice.public),
            issuer: db_issuer,
            tag: EmailDb::owner_tag("alice"),
            validity: Validity::always(),
            delegable: true,
        },
        &mut rand_bytes,
    );
    let alice_prover = Arc::new(Prover::new());
    alice_prover.add_proof(Proof::signed_cert(grant));
    alice_prover.add_key(alice.clone());
    let proxy = SnowflakeProxy::new(alice_prover);
    proxy.set_identity(Principal::key(&alice.public));

    let (client_stream, mut server_stream) = bounded_duplex(DEFAULT_STREAM_CAPACITY);
    let http2 = Arc::clone(&http);
    runtime
        .pool()
        .submit(move || {
            let _ = http2.serve_stream(&mut server_stream);
        })
        .expect("fresh pool admits the browser connection");
    let mut client = HttpClient::new(Box::new(client_stream));

    // Show the gateway's G|? challenge first.
    let mut bare = HttpRequest::get("/mail/alice/inbox");
    bare.set_header("Connection", "keep-alive");
    let challenge = client.send(&bare).unwrap();
    println!(
        "\ngateway challenge: {} {} (needs proof that G|? ⇒ S)",
        challenge.status, challenge.reason
    );
    println!(
        "  Sf-Quoter present: {}",
        challenge.header("Sf-Quoter").is_some()
    );

    // The proxy substitutes Alice for `?`, delegates to G|Alice, signs the
    // request, and retries — all inside execute().
    let resp = proxy
        .execute(&mut client, HttpRequest::get("/mail/alice/inbox"))
        .unwrap();
    println!(
        "\n✓ Alice's inbox through the gateway ({}):\n{}",
        resp.status,
        String::from_utf8_lossy(&resp.body)
    );

    // Alice cannot read Bob's mail: her prover holds no (owner bob) chain.
    let denied = proxy.execute(&mut client, HttpRequest::get("/mail/bob/inbox"));
    println!("✗ Alice asking for Bob's inbox: {}", denied.unwrap_err());

    // Subsequent requests ride the cached proof at the database.
    for _ in 0..2 {
        proxy
            .execute(&mut client, HttpRequest::get("/mail/alice/inbox"))
            .unwrap();
    }
    println!(
        "\ndatabase proof cache: {:?} (one proof served every request)",
        db_server.cache_stats()
    );

    // Hang up the browser, drop the gateway (closing its RMI channel so
    // the database connection job sees EOF), then drain the runtime.
    drop(client);
    drop(http);
    runtime.shutdown();
    println!("runtime after drain: {:?}", runtime.stats());
}
