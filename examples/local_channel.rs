//! Trusted local channels (paper §5.2): when client and server share a
//! trusted host, the broker vouches for endpoint identities and frames flow
//! with no encryption or key exchange — "only serialization costs" — while
//! authorization stays end-to-end.
//!
//! Run with `cargo run --example local_channel`.

use snowflake_channel::LocalBroker;
use snowflake_core::{Certificate, Delegation, Principal, Proof, Time, Validity};
use snowflake_crypto::{rand_bytes, Group, KeyPair};
use snowflake_prover::Prover;
use snowflake_rmi::{FileObject, RmiClient, RmiServer};
use snowflake_sexpr::Sexp;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // The trusted host: it constructs key pairs, so it *knows* who holds
    // which private key — no cryptographic handshake needed.
    let broker = LocalBroker::new("this-process");
    let alice = broker.create_identity("alice", &mut rand_bytes);
    broker.create_identity("file-server", &mut rand_bytes);
    println!("broker {} vouches for alice and file-server", broker.id());

    // A protected file object, owner grants alice access.
    let owner = KeyPair::generate_os(Group::test512());
    let server = RmiServer::new();
    let mut files = HashMap::new();
    files.insert(
        "X".to_string(),
        b"contents of X via the local fast path".to_vec(),
    );
    server.register(
        "files",
        Arc::new(FileObject::new(Principal::key(&owner.public), files)),
    );

    let grant = Certificate::issue(
        &owner,
        Delegation {
            subject: Principal::key(&alice.public),
            issuer: Principal::key(&owner.public),
            tag: snowflake_core::Tag::named("rmi", vec![]),
            validity: Validity::until(Time::now().plus(3600)),
            delegable: true,
        },
        &mut rand_bytes,
    );
    let prover = Arc::new(Prover::new());
    prover.add_proof(Proof::signed_cert(grant));
    prover.add_key(alice.clone());

    // Connect through the broker: plain pipes + vouched identities.
    let (client_end, mut server_end) = broker.connect("alice", "file-server").unwrap();
    println!(
        "channel {:?}: peer identities swapped directly, no key exchange",
        client_end.channel_id()
    );
    let server2 = Arc::clone(&server);
    let t = std::thread::spawn(move || {
        let _ = server2.serve_connection(&mut server_end);
    });

    let mut client = RmiClient::new(Box::new(client_end), alice, prover);

    // First call pays the one-time authorization exchange…
    let start = Instant::now();
    let result = client
        .invoke("files", "read", vec![Sexp::from("X")])
        .unwrap();
    println!(
        "\nfirst call ({}ms incl. delegation): {}",
        start.elapsed().as_millis(),
        String::from_utf8_lossy(result.as_atom().unwrap())
    );

    // …then calls are pure IPC + a cache lookup.
    let start = Instant::now();
    let n = 200;
    for _ in 0..n {
        client
            .invoke("files", "read", vec![Sexp::from("X")])
            .unwrap();
    }
    println!(
        "{} warm calls: {:.3} ms/call (no encryption, no system-call overhead)",
        n,
        start.elapsed().as_secs_f64() * 1e3 / n as f64
    );
    println!("server proof cache: {:?}", server.cache_stats());

    drop(client);
    t.join().unwrap();
}
