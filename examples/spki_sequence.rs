//! Structured proofs vs SPKI sequences (paper §4.3).
//!
//! The paper gives three reasons to transmit proofs in structured form
//! rather than as SPKI's linear stack-machine sequences.  This example
//! makes the comparison concrete: a delegation chain travels both ways,
//! both verifiers agree — and then quoting appears and only the structured
//! form can express it.
//!
//! Run with `cargo run --example spki_sequence`.

use snowflake_core::{
    sequence::Sequence, Certificate, Delegation, Principal, Proof, Tag, Time, Validity, VerifyCtx,
};
use snowflake_crypto::{rand_bytes, Group, KeyPair};

fn main() {
    let alice = KeyPair::generate_os(Group::test512());
    let bob = KeyPair::generate_os(Group::test512());
    let carol = KeyPair::generate_os(Group::test512());

    // A two-certificate chain: carol ⇒ bob ⇒ alice.
    let mk = |from: &KeyPair, to: &KeyPair| {
        Proof::signed_cert(Certificate::issue(
            from,
            Delegation {
                subject: Principal::key(&to.public),
                issuer: Principal::key(&from.public),
                tag: Tag::named("web", vec![]),
                validity: Validity::until(Time::now().plus(600)),
                delegable: true,
            },
            &mut rand_bytes,
        ))
    };
    let structured = mk(&bob, &carol).then(mk(&alice, &bob));
    let ctx = VerifyCtx::now();
    structured.verify(&ctx).expect("structured verifies");

    // Flatten to a SPKI sequence and run the stack machine.
    let sequence = Sequence::from_proof(&structured).expect("chains flatten");
    println!("sequence program ({} ops):", sequence.ops.len());
    println!("{}", sequence.to_sexp().advanced_pretty());
    let conclusion = sequence.verify(&ctx).expect("stack machine agrees");
    assert_eq!(conclusion, structured.conclusion());
    println!("\n✓ both verifiers conclude: {:?}", conclusion);

    // Round-trip back to structured form.
    let rebuilt = sequence.to_proof().expect("rebuilds");
    assert_eq!(rebuilt.conclusion(), structured.conclusion());
    println!("✓ sequence → structured round trip preserves the conclusion");

    // The expressiveness gap: a quoting step has no sequence encoding.
    let gateway = Principal::message(b"gateway");
    let quoted = Proof::QuoteQuotee {
        inner: Box::new(structured),
        quoter: gateway,
    };
    match Sequence::from_proof(&quoted) {
        Err(e) => println!("\n✗ quoting does not flatten: {e}"),
        Ok(_) => unreachable!("quoting must not flatten"),
    }
    println!("(reason two for structured proofs: each component maps 1:1 to its verifier;");
    println!(" reason three: lemmas extract — see `cargo run --example structured_proof`)");
}
