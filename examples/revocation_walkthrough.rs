//! Revocation lifecycle walkthrough: issue a revocable delegation, honor
//! it at a verifier kept fresh by a [`FreshnessAgent`], then revoke it at
//! the [`ValidatorService`] and watch the push deny the very next check —
//! including the warm prover shortcut that would otherwise keep answering.
//!
//! Run with `cargo run --example revocation_walkthrough`.

use snowflake::core::{
    Certificate, Delegation, Principal, Proof, RevocationPolicy, Tag, Time, Validity, VerifyCtx,
};
use snowflake::crypto::{rand_bytes, Group, KeyPair};
use snowflake::prover::Prover;
use snowflake::revocation::{AgentSink, FreshnessAgent, InProcessValidator, ValidatorService};
use std::sync::Arc;

fn main() {
    // --- The cast: a resource owner, a user, and a third-party validator.
    let owner = KeyPair::generate_os(Group::test512());
    let bob = KeyPair::generate_os(Group::test512());
    let validator = ValidatorService::new(KeyPair::generate_os(Group::test512()));
    println!("validator = {}", validator.validator_hash().to_sexp().advanced());

    // --- The owner grants Bob access, opting into CRL revocation: any
    // verifier must hold a current CRL from the named validator.
    let cert = Certificate::issue_with_revocation(
        &owner,
        Delegation {
            subject: Principal::key(&bob.public),
            issuer: Principal::key(&owner.public),
            tag: Tag::named("web", vec![]),
            validity: Validity::until(Time::now().plus(86_400)),
            delegable: true,
        },
        Some(RevocationPolicy::Crl {
            validator: validator.validator_hash(),
        }),
        &mut rand_bytes,
    );
    let cert_hash = cert.hash();
    println!("\nissued revocable delegation, cert hash {}", cert_hash.to_sexp().advanced());

    // --- The verifier side: a freshness agent caches the validator's
    // CRLs, a prover digests the delegation, and a push subscription wires
    // the agent (and the prover's warm cache) to the validator.
    let agent = FreshnessAgent::new(Time::now);
    agent.register_validator(
        validator.validator_hash(),
        Arc::new(InProcessValidator(Arc::clone(&validator))),
    );
    let prover = Arc::new(Prover::new());
    prover.add_proof(Proof::signed_cert(cert.clone()));
    agent.add_bus(Arc::clone(&prover) as _);
    validator.subscribe(Box::new(AgentSink::new(&agent)));
    println!("agent subscribed; CRL serial {}", validator.current_crl().serial);

    // --- Verification consults the agent's cache — never the network.
    let ctx = VerifyCtx::now().with_revocation_source(Arc::clone(&agent) as _);
    let proof = Proof::signed_cert(cert);
    println!("\nbefore revocation:");
    println!("  proof verifies: {:?}", proof.verify(&ctx).is_ok());
    let warm = prover.find_proof(
        &Principal::key(&bob.public),
        &Principal::key(&owner.public),
        &Tag::named("web", vec![]),
        Time::now(),
    );
    println!("  prover answers warm: {}", warm.is_some());

    // --- The owner changes their mind: one call at the validator.
    let delta = validator.revoke(cert_hash);
    println!("\nrevoked; pushed delta with CRL serial {}", delta.crl.serial);

    // --- The push already landed (synchronous subscription): the next
    // verification rejects, and the prover's warm edge is gone — no
    // restart, no cache flush.  (Real verifiers stamp a fresh `now` per
    // request, as the servlets do; a context older than the pushed CRL's
    // window still fails closed, just with a less specific error.)
    let ctx = VerifyCtx::now().with_revocation_source(Arc::clone(&agent) as _);
    println!("\nafter revocation:");
    match proof.verify(&ctx) {
        Ok(()) => println!("  proof verifies: true (BUG!)"),
        Err(e) => println!("  proof rejected: {e}"),
    }
    let warm = prover.find_proof(
        &Principal::key(&bob.public),
        &Principal::key(&owner.public),
        &Tag::named("web", vec![]),
        Time::now(),
    );
    println!("  prover answers warm: {}", warm.is_some());
    println!(
        "  prover stats: {} edge(s) invalidated by {} push(es)",
        prover.stats().invalidated_edges,
        agent.stats().deltas_applied,
    );
}
