//! Protected topic broker walkthrough: ask the authz endpoint the
//! operational question over HTTP, open authorized subscribe streams,
//! publish to everyone, then revoke one certificate and watch exactly
//! the streams built on it die mid-stream — no polling, no reconnect.
//!
//! Run with `cargo run --example topic_broker`.

use snowflake::broker::topic::{read_publish, subscribe_stream};
use snowflake::broker::{subject_principal, AuthzEndpoint, NamespaceAuthority, TopicBroker};
use snowflake::core::audit::{AuditEmitter, DecisionEvent};
use snowflake::core::{Principal, Validity};
use snowflake::crypto::{Group, KeyPair};
use snowflake::http::{HttpClient, HttpRequest, HttpServer};
use snowflake::prover::Prover;
use snowflake::revocation::{FanoutBus, RevocationBus};
use snowflake::runtime::{PoolConfig, ServerRuntime};
use snowflake::tags::path_vector::{grant_tag, ActionTable, PathPattern};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

const NS: &str = "conference.example.org";

/// Prints every authorization decision as it is made.
struct Narrator(Mutex<u64>);

impl AuditEmitter for Narrator {
    fn emit(&self, event: DecisionEvent) {
        let mut n = self.0.lock().unwrap();
        *n += 1;
        println!(
            "  audit #{:02} [{}] {:?} {} {}",
            *n, event.surface, event.decision, event.object, event.detail
        );
    }
}

fn main() {
    // --- The cast: a conference service controlling its namespace, and
    // two accounts holding distinct `subscribe` certificates.
    let issuer_kp = KeyPair::generate_os(Group::test512());
    let issuer = Principal::key(&issuer_kp.public);
    let prover = Arc::new(Prover::new());
    prover.add_key(issuer_kp);

    let alice = subject_principal("iam.example.org", &["accounts".into(), "alice".into()]);
    let bob = subject_principal("iam.example.org", &["accounts".into(), "bob".into()]);
    let grant = grant_tag(
        NS,
        &PathPattern::parse(&["rooms", "*", "events"]),
        &["subscribe"],
    );
    let proof_a = prover
        .delegate(&alice, &issuer, grant.clone(), Validity::always(), false)
        .unwrap();
    let proof_b = prover
        .delegate(&bob, &issuer, grant, Validity::always(), false)
        .unwrap();
    let cert_a = proof_a.cert_hashes()[0].clone();

    let mut table = ActionTable::new();
    table.allow(&["rooms", "*", "events"], &["subscribe"]);

    // --- Both broker surfaces ride one bounded runtime.
    let narrator = Arc::new(Narrator(Mutex::new(0)));
    let runtime = ServerRuntime::new(PoolConfig::new("example", 2, 16));

    let endpoint = AuthzEndpoint::new(Arc::clone(&prover));
    endpoint.add_namespace(
        NS,
        NamespaceAuthority {
            issuer: issuer.clone(),
            table: table.clone(),
        },
    );
    endpoint.set_audit_emitter(Arc::clone(&narrator) as _);
    let http = HttpServer::new();
    http.route("/authz", endpoint);
    let http_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let http_addr = http_listener.local_addr().unwrap();
    http.attach_to_reactor(http_listener, &runtime).unwrap();

    let broker = TopicBroker::new(
        Arc::clone(&runtime),
        Arc::clone(&prover),
        NS,
        issuer,
        table,
    );
    broker.set_audit_emitter(Arc::clone(&narrator) as _);
    let sub_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let sub_addr = sub_listener.local_addr().unwrap();
    broker.attach_subscribe_listener(sub_listener).unwrap();

    // --- The operational front door: "may alice subscribe to this room?"
    println!("POST /authz:");
    let mut client = HttpClient::new(Box::new(TcpStream::connect(http_addr).unwrap()));
    let body = format!(
        "{{\"subject\":{{\"namespace\":\"iam.example.org\",\"value\":[\"accounts\",\"alice\"]}},\
          \"object\":{{\"namespace\":\"{NS}\",\"value\":[\"rooms\",\"standup\",\"events\"]}},\
          \"action\":\"subscribe\"}}"
    );
    let resp = client
        .send(&HttpRequest::post("/authz", body.into_bytes()))
        .unwrap();
    println!("  -> {}", String::from_utf8_lossy(&resp.body));

    // --- Subscribe is a first-class action: the chain is checked once,
    // here, and each stream's certificate provenance is recorded.
    println!("\nsubscribing alice and bob:");
    let topic = ["rooms", "standup", "events"];
    let mut alice_stream = subscribe_stream(sub_addr, &topic, &alice, &proof_a)
        .unwrap()
        .expect("alice authorized");
    let mut bob_stream = subscribe_stream(sub_addr, &topic, &bob, &proof_b)
        .unwrap()
        .expect("bob authorized");
    while broker.stats().subscribers < 2 {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    println!("\npublishing \"standup starting\":");
    broker.publish(&topic, b"standup starting").unwrap();
    for (name, stream) in [("alice", &mut alice_stream), ("bob", &mut bob_stream)] {
        let (_, data) = read_publish(stream).unwrap();
        println!("  {name} received: {}", String::from_utf8_lossy(&data));
    }

    // --- One revocation, pushed through the same bus the prover rides:
    // exactly the streams whose grant used cert_a are cut, mid-stream.
    println!("\nrevoking alice's certificate:");
    let bus = FanoutBus(vec![
        Arc::new(Arc::clone(&prover)) as Arc<dyn RevocationBus>,
        Arc::new(Arc::clone(&broker)) as Arc<dyn RevocationBus>,
    ]);
    let evicted = bus.certificate_revoked(&cert_a);
    println!("  {evicted} edges/streams evicted");

    println!("\nalice observes EOF; bob keeps streaming:");
    println!("  alice read: {:?}", read_publish(&mut alice_stream).err().map(|e| e.kind()));
    broker.publish(&topic, b"next item").unwrap();
    let (_, data) = read_publish(&mut bob_stream).unwrap();
    println!("  bob received: {}", String::from_utf8_lossy(&data));

    let stats = broker.stats();
    println!(
        "\nbroker stats: {} live, {} subscribed, {} denied, {} delivered, {} cut",
        stats.subscribers, stats.subscribes, stats.denied_subscribes, stats.deliveries, stats.cut_streams
    );
    runtime.shutdown();
}
