//! The protected web file server (paper §6.1) with the Figure 5 challenge
//! on the wire, plus the §5.3.5 delegation-link sharing flow.
//!
//! Run with `cargo run --example protected_web`.

use snowflake_apps::{ProtectedWebService, Vfs};
use snowflake_core::{Certificate, Delegation, Principal, Proof, Time, Validity};
use snowflake_crypto::{rand_bytes, Group, KeyPair};
use snowflake_http::{
    bounded_duplex, HttpClient, HttpRequest, HttpServer, ProtectedServlet, SnowflakeProxy,
    DEFAULT_STREAM_CAPACITY,
};
use snowflake_prover::Prover;
use snowflake_runtime::{PoolConfig, ServerRuntime};
use std::sync::Arc;

fn main() {
    // The owner "establishes control over the file server by specifying the
    // hash of his public key when starting up the server".
    let owner = KeyPair::generate_os(Group::test512());
    let issuer = Principal::key_hash(&owner.public);
    println!("server issuer: {}", issuer.describe());

    let vfs = Arc::new(Vfs::new());
    vfs.write(
        "/docs/readme.txt",
        b"welcome to the protected tree".to_vec(),
    );
    vfs.write("/docs/paper.txt", b"end-to-end authorization".to_vec());
    vfs.write("/private/diary.txt", b"top secret".to_vec());

    let service = ProtectedWebService::new(issuer.clone(), "Jon's Protected Service", vfs);
    let subtree_tag = service.subtree_tag("/docs/");
    let servlet = ProtectedServlet::new(service);
    let server = HttpServer::new();
    server.route("/", servlet);

    // Alice's identity and the owner's grant: the /docs subtree, delegable.
    let alice = KeyPair::generate_os(Group::test512());
    let grant = Certificate::issue(
        &owner,
        Delegation {
            subject: Principal::key(&alice.public),
            issuer: issuer.clone(),
            tag: subtree_tag.clone(),
            validity: Validity::until(Time::now().plus(3600)),
            delegable: true,
        },
        &mut rand_bytes,
    );
    let prover = Arc::new(Prover::new());
    prover.add_proof(Proof::signed_cert(grant));
    prover.add_key(alice.clone());
    let proxy = SnowflakeProxy::new(prover);

    // Connect and watch the challenge protocol run.  The connection is
    // served from a bounded runtime pool over a backpressured stream —
    // the same serving discipline a production deployment uses.
    let runtime = ServerRuntime::new(PoolConfig::new("protected-web", 2, 8));
    let (client_stream, mut server_stream) = bounded_duplex(DEFAULT_STREAM_CAPACITY);
    let server2 = Arc::clone(&server);
    runtime
        .pool()
        .submit(move || {
            let _ = server2.serve_stream(&mut server_stream);
        })
        .expect("fresh pool admits the connection");
    let mut client = HttpClient::new(Box::new(client_stream));

    // Show the raw 401 challenge first (what Figure 5 prints).
    let mut bare = HttpRequest::get("/docs/readme.txt");
    bare.set_header("Connection", "keep-alive");
    let challenge = client.send(&bare).unwrap();
    println!("\nthe server's challenge (Figure 5):");
    println!("  HTTP/1.0 {} {}", challenge.status, challenge.reason);
    for h in ["WWW-Authenticate", "Sf-ServiceIssuer", "Sf-MinimumTag"] {
        if let Some(v) = challenge.header(h) {
            let shown = if v.len() > 72 {
                format!("{}…", &v[..72])
            } else {
                v.to_string()
            };
            println!("  {h}: {shown}");
        }
    }

    // The proxy answers it transparently.
    let resp = proxy
        .execute(&mut client, HttpRequest::get("/docs/readme.txt"))
        .unwrap();
    println!(
        "\n✓ GET /docs/readme.txt → {} ({})",
        resp.status,
        String::from_utf8_lossy(&resp.body)
    );

    // Outside the delegated subtree: the prover cannot help.
    let denied = proxy.execute(&mut client, HttpRequest::get("/private/diary.txt"));
    println!("✗ GET /private/diary.txt → {}", denied.unwrap_err());

    // §5.3.5: share /docs with Bob via a delegation link.
    let bob = KeyPair::generate_os(Group::test512());
    let link = proxy
        .make_delegation_link(
            "http://files.example/docs/paper.txt",
            &Principal::key(&bob.public),
            &issuer,
            &subtree_tag,
            Validity::until(Time::now().plus(600)),
        )
        .unwrap();
    println!("\ndelegation link for Bob:\n{}", link.advanced_pretty());

    // Bob imports it and reads the page through his own proxy.
    let bob_prover = Arc::new(Prover::new());
    bob_prover.add_key(bob);
    let bob_proxy = SnowflakeProxy::new(bob_prover);
    let url = bob_proxy.import_delegation_link(&link).unwrap();
    let resp = bob_proxy
        .execute(&mut client, HttpRequest::get("/docs/paper.txt"))
        .unwrap();
    println!(
        "\n✓ Bob follows {url} → {} ({})",
        resp.status,
        String::from_utf8_lossy(&resp.body)
    );

    // Hanging up lets the pooled connection job finish; shutdown drains it.
    drop(client);
    runtime.shutdown();
    println!("\nruntime after drain: {:?}", runtime.stats());
}
