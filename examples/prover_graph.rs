//! Figure 2, animated: a look inside Alice's Prover.
//!
//! The graph holds proofs as edges between principals; `A` is *final*
//! (Alice's Prover holds its private key).  To prove that a channel
//! `K_CH` speaks for a server `S`, the Prover works backwards from `S`,
//! finds the existing chain `A ⇒ V∩X ⇒ S`, and completes the proof by
//! issuing a fresh delegation `K_CH ⇒ A` with its closure.
//!
//! Run with `cargo run --example prover_graph`.

use snowflake_core::{
    Certificate, ChannelId, Delegation, HashVal, Principal, Proof, Tag, Time, Validity, VerifyCtx,
};
use snowflake_crypto::{rand_bytes, Group, KeyPair};
use snowflake_prover::Prover;
use std::collections::HashMap;

fn main() {
    // The principals of Figure 2: A (final), B, C, T, V, X, S, and the
    // conjunction V ∧ X that controls S.
    let names = ["A", "B", "C", "T", "V", "X", "S"];
    let keys: HashMap<&str, KeyPair> = names
        .iter()
        .map(|n| (*n, KeyPair::generate_os(Group::test512())))
        .collect();
    let p = |n: &str| Principal::key(&keys[n].public);

    let prover = Prover::new();
    let tag = Tag::named("service", vec![]);

    // Edges of the figure: A→B, A→T, A→V, B→C (illustrative), V∧X→S via V,X.
    let edge = |from: &str, to: &str| {
        let cert = Certificate::issue(
            &keys[to],
            Delegation {
                subject: p(from),
                issuer: p(to),
                tag: tag.clone(),
                validity: Validity::always(),
                delegable: true,
            },
            &mut rand_bytes,
        );
        prover.add_proof(Proof::signed_cert(cert));
    };
    edge("A", "B"); // A =T⇒ B
    edge("B", "C");
    edge("A", "T");
    edge("A", "V");
    edge("A", "X");
    // V ∧ X ⇒ S: both V and X must agree; Alice speaks for both, so the
    // conjunction intro applies on her side.
    let conj = Principal::conjunction(vec![p("V"), p("X")]);
    let cert = Certificate::issue(
        &keys["S"],
        Delegation {
            subject: conj.clone(),
            issuer: p("S"),
            tag: tag.clone(),
            validity: Validity::always(),
            delegable: true,
        },
        &mut rand_bytes,
    );
    prover.add_proof(Proof::signed_cert(cert));

    // A ⇒ V and A ⇒ X give A ⇒ V∧X by conjunction introduction; feed the
    // composite into the graph so the search can cross it.
    let a_to_v = prover
        .find_proof(&p("A"), &p("V"), &tag, Time(0))
        .expect("A ⇒ V");
    let a_to_x = prover
        .find_proof(&p("A"), &p("X"), &tag, Time(0))
        .expect("A ⇒ X");
    prover.add_proof(Proof::ConjIntro(vec![a_to_v, a_to_x]));

    // A is final: the Prover holds its key (and can make A say things).
    prover.add_key(keys["A"].clone());

    let stats = prover.stats();
    println!(
        "graph: {} base edges, {} finals",
        stats.base_edges, stats.finals
    );

    // The Figure 2 task: prove K_CH ⇒ S for a fresh channel.
    let channel = Principal::Channel(ChannelId {
        kind: "ssh".into(),
        id: HashVal::of(b"session-42"),
    });
    let proof = prover
        .complete_proof(
            &channel,
            &p("S"),
            &tag,
            Validity::until(Time(10_000)),
            Time(0),
        )
        .expect("K_CH ⇒ S completed");

    println!("\ncompleted proof that {} ⇒ S:", channel.describe());
    println!("{}", proof.audit_trail());
    proof.verify(&VerifyCtx::at(Time(0))).expect("verifies");

    // The derived proof was cached as a shortcut edge (the dotted lines).
    let stats = prover.stats();
    println!(
        "after search: {} shortcut edges cached",
        stats.shortcut_edges
    );

    // A second query answers from the shortcut with almost no expansions.
    let before = prover.stats().expansions;
    prover
        .find_proof(&channel, &p("S"), &tag, Time(0))
        .expect("cached");
    println!(
        "second query cost: {} expansions",
        prover.stats().expansions - before
    );
}
