//! Audit trail walkthrough: attach a tamper-evident decision log to a
//! protected web server, drive a challenge, a grant, and a revocation,
//! then play the auditor — query the trail, re-verify the chain offline,
//! and watch every tamper class get caught.
//!
//! Run with `cargo run --example audit_trail`.

use snowflake::audit::{
    verify_chain, AuditLog, AuditQuery, AuditSink, FileBackend, LogEntry,
};
use snowflake::core::audit::AuditEmitter;
use snowflake::core::{Delegation, HashAlg, Principal, Proof, Tag, Time, Validity};
use snowflake::crypto::{rand_bytes, Group, KeyPair};
use snowflake::http::{HttpRequest, HttpServer, MacSessionStore};
use snowflake::apps::{ProtectedWebService, Vfs};
use snowflake::prover::Prover;
use snowflake::revocation::{AuditedBus, RevocationBus};
use std::sync::Arc;

fn main() {
    // --- The log: an append-only file, hash-chained, signed every 4
    // records by the log key.  The auditor needs only the *public* half
    // (and, for truncation detection, the latest head) to verify a copy.
    let path = std::env::temp_dir().join(format!("snowflake-audit-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let log_key = KeyPair::generate_os(Group::test512());
    let auditor_key = log_key.public.clone();
    let log = AuditLog::with_rng(
        log_key,
        Box::new(FileBackend::open(&path).expect("temp file")),
        4,
        Box::new(rand_bytes),
    )
    .expect("fresh log file");
    let sink = AuditSink::start(Arc::clone(&log));
    let emitter: Arc<dyn AuditEmitter> = Arc::clone(&sink) as Arc<dyn AuditEmitter>;
    println!("audit log at {}", path.display());

    // --- A protected web server with the emitter attached.
    let server = HttpServer::new();
    let vfs = Arc::new(Vfs::new());
    vfs.write("/docs/plan.txt", b"launch at dawn".to_vec());
    let servlet = ProtectedWebService::new(Principal::message(b"owner"), "docs", vfs).mount(
        &server,
        "/docs",
        Arc::new(MacSessionStore::new()),
        Time::now,
        Box::new(rand_bytes),
    );
    servlet.set_audit_emitter(Arc::clone(&emitter));

    // --- A challenge (deny), then a proven request (grant).
    let challenged = server.respond(&HttpRequest::get("/docs/plan.txt"));
    println!("\nno proof     -> {}", challenged.status);
    let mut req = HttpRequest::get("/docs/plan.txt");
    let stmt = Delegation {
        subject: snowflake::http::request_principal(&req, HashAlg::Sha256),
        issuer: Principal::message(b"owner"),
        tag: Tag::Star,
        validity: Validity::until(Time::now().plus(300)),
        delegable: false,
    };
    servlet.base_ctx().assume(&stmt);
    snowflake::http::auth::attach_proof(
        &mut req,
        &Proof::Assumption {
            stmt,
            authority: "walkthrough".into(),
        },
    );
    let granted = server.respond(&req);
    println!("with proof   -> {}", granted.status);

    // --- A revocation push, recorded as a first-class event.
    let prover = Arc::new(Prover::new());
    let bus = AuditedBus::new(prover as Arc<dyn RevocationBus>, Arc::clone(&emitter));
    let dead_cert = snowflake::crypto::HashVal::of(b"some revoked certificate");
    bus.certificate_revoked(&dead_cert);
    println!("revoked cert -> {}", dead_cert.short_hex());
    // Replayed requests after the (unrelated) revocation: records four
    // and five, sealing the first checkpoint interval with records on
    // both sides of it.
    for _ in 0..2 {
        let replay = server.respond(&req);
        assert_eq!(replay.status, 200);
    }
    println!("replayed x2  -> 200 (identical-request cache)");

    // --- The auditor: query the trail.
    sink.flush();
    println!("\ntrail ({} records):", log.records_appended());
    for record in log.query(&AuditQuery::all()).unwrap() {
        let ev = &record.event;
        println!(
            "  #{} [{}] {} {} {} — {}",
            record.seq, ev.surface, ev.decision, ev.action, ev.object, ev.detail
        );
    }

    // --- Offline verification from the file copy alone.
    let entries: Vec<LogEntry> = log.entries().unwrap();
    let head = log.head().unwrap();
    let summary = verify_chain(&entries, &auditor_key, 4, Some(&head)).unwrap();
    println!(
        "\nchain verifies: {} records, {} signed checkpoints",
        summary.records, summary.checkpoints
    );

    // --- Every tamper class is caught.
    let mut truncated = entries.clone();
    // Drop the last record *and* its sealing checkpoint — the remaining
    // stream is internally consistent, but not against the trusted head.
    truncated.truncate(entries.len() - 2);
    println!("truncation  -> {}", verify_chain(&truncated, &auditor_key, 4, Some(&head)).unwrap_err());
    let mut reordered = entries.clone();
    reordered.swap(0, 1);
    println!("reorder     -> {}", verify_chain(&reordered, &auditor_key, 4, Some(&head)).unwrap_err());
    let mut edited = entries.clone();
    if let LogEntry::Record(r) = &mut edited[0] {
        r.event.detail = "nothing to see here".into();
    }
    println!("bit-flip    -> {}", verify_chain(&edited, &auditor_key, 4, Some(&head)).unwrap_err());
    let stripped = snowflake::audit::strip_checkpoints(&entries);
    println!("no sigs     -> {}", verify_chain(&stripped, &auditor_key, 4, Some(&head)).unwrap_err());

    sink.shutdown();
    let _ = std::fs::remove_file(&path);
}
