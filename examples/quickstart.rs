//! Quickstart: restricted delegation and self-verifying proofs in a dozen
//! lines.
//!
//! Alice shares read access to her inbox with Bob, across any
//! administrative boundary — no accounts, no shared passwords, no gateway
//! ACLs.  Run with `cargo run --example quickstart`.

use snowflake_core::{Certificate, Delegation, Principal, Proof, Tag, Time, Validity, VerifyCtx};
use snowflake_crypto::{rand_bytes, Group, KeyPair};
use snowflake_sexpr::Sexp;

fn main() {
    // Two principals in different administrative domains.
    let alice = KeyPair::generate_os(Group::test512());
    let bob = KeyPair::generate_os(Group::test512());
    println!("alice = {}", Principal::key(&alice.public).describe());
    println!("bob   = {}", Principal::key(&bob.public).describe());

    // Alice delegates: "Bob speaks for me regarding GET on /inbox/**,
    // until t = 2_000_000, and may not re-delegate."
    let tag = Tag::parse(
        &Sexp::parse(b"(tag (web (method GET) (resourcePath (* prefix /inbox/))))").unwrap(),
    )
    .unwrap();
    let delegation = Delegation {
        subject: Principal::key(&bob.public),
        issuer: Principal::key(&alice.public),
        tag,
        validity: Validity::until(Time(2_000_000)),
        delegable: false,
    };
    let cert = Certificate::issue(&alice, delegation, &mut rand_bytes);
    let proof = Proof::signed_cert(cert);

    // The proof travels as an S-expression — here is its wire form.
    println!(
        "\nwire form (advanced encoding):\n{}",
        proof.to_sexp().advanced_pretty()
    );

    // Any server can verify it with no prior knowledge of Bob.
    let ctx = VerifyCtx::at(Time(1_000_000));
    let request =
        Tag::parse(&Sexp::parse(b"(tag (web (method GET) (resourcePath /inbox/42)))").unwrap())
            .unwrap();
    proof
        .authorizes(
            &Principal::key(&bob.public),
            &Principal::key(&alice.public),
            &request,
            &ctx,
        )
        .expect("Bob is authorized for GET /inbox/42");
    println!("✓ GET /inbox/42 authorized");

    // The restriction is enforced…
    let outside =
        Tag::parse(&Sexp::parse(b"(tag (web (method DELETE) (resourcePath /inbox/42)))").unwrap())
            .unwrap();
    let denied = proof.authorizes(
        &Principal::key(&bob.public),
        &Principal::key(&alice.public),
        &outside,
        &ctx,
    );
    println!("✗ DELETE /inbox/42 rejected: {}", denied.unwrap_err());

    // …and so is the expiry, which lives *inside* the restriction.
    let late = VerifyCtx::at(Time(3_000_000));
    let expired = proof.authorizes(
        &Principal::key(&bob.public),
        &Principal::key(&alice.public),
        &request,
        &late,
    );
    println!("✗ after expiry rejected: {}", expired.unwrap_err());

    // Every proof is its own audit trail.
    println!("\naudit trail:\n{}", proof.audit_trail());
}
