//! Figure 1, reconstructed: the structured proof that document D is the
//! object client C associates with the name N — and the lemma reuse that
//! structured proofs make possible.
//!
//! ```text
//! transitivity              H_D ⇒ K_C·N
//! ├─ signed-certificate     H_D ⇒ K_S          (short-lived!)
//! └─ transitivity           K_S ⇒ K_C·N
//!    ├─ signed-certificate  K_S ⇒ H_{K_C}·N
//!    └─ name-monotonicity   H_{K_C}·N ⇒ K_C·N
//!       └─ hash-identity    H_{K_C} ⇒ K_C
//! ```
//!
//! Run with `cargo run --example structured_proof`.

use snowflake_core::{
    Certificate, Delegation, HashAlg, Principal, Proof, Tag, Time, Validity, VerifyCtx,
};
use snowflake_crypto::{rand_bytes, Group, KeyPair};

fn main() {
    let server = KeyPair::generate_os(Group::test512()); // K_S
    let client = KeyPair::generate_os(Group::test512()); // K_C
    let document = b"# The document D\nSnowflake makes sharing safe.\n";

    // H_D: the document embodied as a principal — "the binary
    // representation of a statement itself, that says only what it says."
    let h_d = Principal::message(document);

    // signed-certificate: H_D ⇒ K_S, short-lived (content changes often).
    let cert_doc = Certificate::issue(
        &server,
        Delegation {
            subject: h_d.clone(),
            issuer: Principal::key(&server.public),
            tag: Tag::Star,
            validity: Validity::until(Time(1_000)),
            delegable: true,
        },
        &mut rand_bytes,
    );

    // signed-certificate: K_S ⇒ H_{K_C}·N — the client's name binding,
    // issued under the hash of the client's own key.
    let name_under_hash = Principal::name(Principal::key_hash(&client.public), "N");
    let cert_name = Certificate::issue(
        &client,
        Delegation {
            subject: Principal::key(&server.public),
            issuer: name_under_hash,
            tag: Tag::Star,
            validity: Validity::always(),
            delegable: true,
        },
        &mut rand_bytes,
    );

    // hash-identity (H_{K_C} ⇒ K_C) lifted by name-monotonicity to
    // H_{K_C}·N ⇒ K_C·N.
    let lift = Proof::NameMono {
        inner: Box::new(Proof::HashIdent {
            key: Box::new(client.public.clone()),
            alg: HashAlg::Sha256,
            hash_to_key: true,
        }),
        name: "N".into(),
    };

    // Assemble Figure 1.
    let lemma = Proof::signed_cert(cert_name).then(lift); // K_S ⇒ K_C·N
    let full = Proof::signed_cert(cert_doc).then(lemma.clone()); // H_D ⇒ K_C·N

    println!("the Figure 1 proof ({} nodes):\n", full.size());
    println!("{}", full.audit_trail());

    let ctx = VerifyCtx::at(Time(500));
    full.verify(&ctx).expect("valid at t=500");
    println!(
        "✓ verifies at t=500: {} ⇒ {}",
        full.conclusion().subject.describe(),
        full.conclusion().issuer.describe()
    );

    // The topmost statement expires with the short-lived H_D ⇒ K_S…
    let late = VerifyCtx::at(Time(5_000));
    let err = full
        .authorizes(
            &full.conclusion().subject,
            &full.conclusion().issuer,
            &Tag::Star,
            &late,
        )
        .unwrap_err();
    println!("\n✗ at t=5000 the full proof no longer authorizes: {err}");

    // …but "the still-useful proof of K_S ⇒ K_C·N may be extracted and
    // reused in future proofs."
    lemma.verify(&late).expect("lemma outlives the composite");
    println!(
        "✓ extracted lemma still valid: {} ⇒ {}",
        lemma.conclusion().subject.describe(),
        lemma.conclusion().issuer.describe()
    );

    // Structured proofs enumerate their lemmas mechanically.
    println!("\nall {} lemmas:", full.lemmas().len());
    for l in full.lemmas() {
        let c = l.conclusion();
        println!("  {} ⇒ {}", c.subject.describe(), c.issuer.describe());
    }
}
